"""The resequencer: restore timestamp order within a bounded window.

The streaming solvers assume arrivals in non-decreasing dimension order
(the ``s``-bound of StreamScan is meaningless otherwise), but competing
consumers draining a log deliver in claim order, and producers racing on
the log append in wall-clock order — both mildly shuffled.  This is the
Enterprise Integration *Resequencer*: buffer out-of-order messages,
release them in order, bound the buffer so a lost message cannot stall
the stream forever.

Ordering here is by **dimension value** (timestamp), with the WAL
sequence number as the tie-break, so equal-timestamp records release in
append order and replay is deterministic.  Two knobs bound the buffer:

* ``window`` — maximum records held; when full, the oldest releases
  even if a gap might still fill (same semantics as the supervisor's
  reorder buffer).
* ``gap_timeout`` — maximum *stream-time* spread the buffer may hold:
  once ``newest - oldest > gap_timeout`` the oldest releases, on the
  argument that a record delayed further than that is lost, not late.
  Each such forced release emits ``ingest.resequencer_gap_timeout``.

Records older than the already-released frontier are *late* — reordering
beyond the window's power to repair — and are routed to the dead-letter
channel rather than violating the order gate downstream.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..errors import IngestError
from ..observability import facade as _obs
from ..observability import structlog

__all__ = ["Resequencer", "SequencedItem"]

# (value, seq, key, data)
SequencedItem = Tuple[float, int, str, Any]


class Resequencer:
    """Bounded-window timestamp resequencer.

    Parameters
    ----------
    window:
        Maximum buffered records; ``0`` disables buffering (records
        release immediately — only useful when the log is written in
        order).
    gap_timeout:
        Maximum stream-time spread buffered at once; ``None`` disables
        the timeout (the window alone bounds the buffer).
    late_sink:
        Called with ``(value, seq, key, data, frontier)`` for a record
        that regresses behind the released frontier.
    """

    def __init__(
        self,
        window: int = 0,
        gap_timeout: Optional[float] = None,
        late_sink: Optional[Callable[..., None]] = None,
    ):
        if window < 0:
            raise IngestError(f"window must be non-negative: {window}")
        if gap_timeout is not None and gap_timeout < 0:
            raise IngestError(
                f"gap_timeout must be non-negative: {gap_timeout}"
            )
        self.window = window
        self.gap_timeout = gap_timeout
        self._late_sink = late_sink
        self._heap: List[SequencedItem] = []
        self.frontier = float("-inf")
        self.released = 0
        self.late = 0
        self.gap_timeouts = 0

    # -- state -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._heap)

    def pending(self) -> List[SequencedItem]:
        """Buffered items in release order (for commit snapshots)."""
        return sorted(self._heap)

    def restore(
        self, frontier: float, pending: List[SequencedItem]
    ) -> None:
        """Adopt a committed snapshot: frontier plus buffered items."""
        self.frontier = frontier
        self._heap = list(pending)
        heapq.heapify(self._heap)

    # -- event flow --------------------------------------------------------

    def _release_one(self) -> SequencedItem:
        item = heapq.heappop(self._heap)
        self.frontier = max(self.frontier, item[0])
        self.released += 1
        return item

    def push(
        self, value: float, seq: int, key: str, data: Any
    ) -> List[SequencedItem]:
        """Offer one record; returns the records released in order."""
        if value < self.frontier:
            self.late += 1
            _obs.count("ingest.resequencer.late")
            if self._late_sink is not None:
                self._late_sink(value, seq, key, data, self.frontier)
            return []
        heapq.heappush(self._heap, (value, seq, key, data))
        out: List[SequencedItem] = []
        while len(self._heap) > self.window:
            out.append(self._release_one())
        if self.gap_timeout is not None:
            newest = max(item[0] for item in self._heap) if self._heap \
                else value
            while self._heap and \
                    newest - self._heap[0][0] > self.gap_timeout:
                stale = self._release_one()
                self.gap_timeouts += 1
                _obs.count("ingest.resequencer.gap_timeouts")
                structlog.emit(
                    "ingest.resequencer_gap_timeout",
                    key=stale[2],
                    seq=stale[1],
                    value=stale[0],
                    gap=newest - stale[0],
                )
                out.append(stale)
        return out

    def flush(self) -> List[SequencedItem]:
        """Release everything buffered, in order."""
        out: List[SequencedItem] = []
        while self._heap:
            out.append(self._release_one())
        return out
