"""Durable exactly-once ingest for the diversification corpus.

The streaming theory (Sec 5) assumes posts arrive in timestamp order,
exactly once.  In-memory, that guarantee is the order gate's job and
dies with the process; this package makes it survive ``kill -9``:

* :mod:`~repro.ingest.wal` — the append-only **write-ahead log**:
  CRC-framed records in rotated segments, fsync batching, torn-tail
  repair (the transactional outbox);
* :mod:`~repro.ingest.resequencer` — bounded-window timestamp
  **resequencer** with gap timeouts (out-of-order arrival repair);
* :mod:`~repro.ingest.deadletter` — the **dead-letter channel** for
  late/duplicate/corrupt records, feeding the supervisor quarantine;
* :mod:`~repro.ingest.pipeline` — :class:`IngestPipeline`, the
  idempotent receiver + atomic offset commit that makes
  crash-restart-replay reproduce a byte-identical corpus;
* :mod:`~repro.ingest.consumers` — **competing consumers** with
  redelivery over the shared log.

See ``docs/robustness.md`` for the recovery model and
``benchmarks/test_ingest.py`` (``BENCH_ingest.json``) for what
durability costs.
"""

from .consumers import ConsumerGroup
from .deadletter import DeadLetter, DeadLetterChannel
from .pipeline import IngestConfig, IngestPipeline, IngestTarget, \
    corpus_digest
from .resequencer import Resequencer
from .wal import CorruptRecord, WalRecord, WriteAheadLog

__all__ = [
    "ConsumerGroup",
    "CorruptRecord",
    "DeadLetter",
    "DeadLetterChannel",
    "IngestConfig",
    "IngestPipeline",
    "IngestTarget",
    "Resequencer",
    "WalRecord",
    "WriteAheadLog",
    "corpus_digest",
]
