"""The dead-letter channel: where records the pipeline refuses end up.

Every record the durable ingest path cannot apply — late beyond the
reorder window, a duplicate idempotency key, a corrupt WAL frame —
lands here as a :class:`DeadLetter`, with a counter and a structured
event carrying the idempotency key, so refusal is never silent and an
operator can replay or discard the channel deliberately.

The channel also *feeds the supervisor quarantine*: when attached to a
:class:`~repro.resilience.supervisor.StreamSupervisor`, each dead letter
whose payload still parses as a post is appended to the supervisor's
quarantine list as a :class:`~repro.resilience.policies.QuarantineRecord`
(action ``"dead-letter"``), so the one quarantine surface an operator
already watches covers the durable path too.  Frames too damaged to
parse stay channel-only — there is no honest ``Post`` to quarantine.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..core.post import Post
from ..observability import facade as _obs
from ..observability import structlog
from ..resilience.policies import QuarantineRecord
from ..resilience.supervisor import StreamSupervisor

__all__ = ["DeadLetter", "DeadLetterChannel", "DEAD_LETTER_ACTION"]

DEAD_LETTER_ACTION = "dead-letter"


@dataclass(frozen=True)
class DeadLetter:
    """One refused record: the key, why, and what could be salvaged."""

    key: str
    reason: str
    seq: int = -1
    data: Optional[Dict[str, Any]] = field(default=None)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "reason": self.reason,
            "seq": self.seq,
            "data": self.data,
        }


class DeadLetterChannel:
    """Bounded in-memory dead-letter store with quarantine forwarding.

    ``capacity`` bounds the retained letters (oldest evicted first, with
    a counter — the *count* of refusals is never lost even when the
    letters themselves age out).
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self.letters: List[DeadLetter] = []
        self.total = 0
        self.evicted = 0
        self._keys: set = set()
        self._supervisor: Optional[StreamSupervisor] = None

    def attach_supervisor(self, supervisor: StreamSupervisor) -> None:
        """Forward future (parseable) dead letters into this
        supervisor's quarantine list."""
        self._supervisor = supervisor

    def seen(self, key: str) -> bool:
        """True when this key was already dead-lettered (replay dedup)."""
        return key in self._keys

    def offer(
        self,
        key: str,
        reason: str,
        *,
        seq: int = -1,
        data: Optional[Dict[str, Any]] = None,
    ) -> Optional[DeadLetter]:
        """Admit one dead letter; returns it, or ``None`` when the key
        was already channelled (a replayed refusal is not a new one)."""
        if key in self._keys:
            return None
        self._keys.add(key)
        letter = DeadLetter(key=key, reason=reason, seq=seq, data=data)
        self.letters.append(letter)
        self.total += 1
        if len(self.letters) > self.capacity:
            self.letters.pop(0)
            self.evicted += 1
        _obs.count("ingest.dead_letters")
        structlog.emit(
            "ingest.dead_letter",
            level=logging.WARNING,
            key=key,
            reason=reason,
            seq=seq,
        )
        if self._supervisor is not None and data is not None:
            post = self._as_post(data)
            if post is not None:
                self._supervisor.quarantine.append(QuarantineRecord(
                    post=post, reason=f"dead-letter: {reason}",
                    action=DEAD_LETTER_ACTION,
                ))
        return letter

    @staticmethod
    def _as_post(data: Dict[str, Any]) -> Optional[Post]:
        """Best-effort projection of a WAL payload onto a Post."""
        try:
            return Post(
                uid=int(data["doc_id"]),
                value=float(data["timestamp"]),
                labels=frozenset(data.get("labels", ())),
                text=str(data.get("text", "")),
            )
        except (KeyError, TypeError, ValueError):
            return None

    def snapshot(self) -> List[Dict[str, Any]]:
        """JSON-safe view of the retained letters (for commits and
        introspection)."""
        return [letter.to_dict() for letter in self.letters]

    def restore(self, letters: List[Dict[str, Any]], *,
                total: int = 0, evicted: int = 0) -> None:
        """Adopt a committed snapshot of the channel."""
        self.letters = [
            DeadLetter(
                key=str(entry["key"]),
                reason=str(entry["reason"]),
                seq=int(entry.get("seq", -1)),
                data=entry.get("data"),
            )
            for entry in letters
        ]
        self._keys = {letter.key for letter in self.letters}
        self.total = max(total, len(self.letters))
        self.evicted = evicted

    def __len__(self) -> int:
        return len(self.letters)
