"""The append-only write-ahead log: segments, CRC frames, fsync batching.

The WAL is the transactional outbox of the ingest pipeline: producers
append ``(idempotency key, payload)`` records and the append is the
commit point — once :meth:`WriteAheadLog.append` returns after a
:meth:`~WriteAheadLog.sync`, the record survives ``kill -9`` and power
loss, and the apply workers will eventually deliver it exactly once.

**Record framing.**  Each record is one self-describing frame::

    +-------+----------+---------+------------------+
    | magic | length   | crc32   | payload          |
    | 2 B   | u32 BE   | u32 BE  | ``length`` bytes |
    +-------+----------+---------+------------------+

The payload is one JSON object ``{"seq": n, "key": k, "data": {...}}``;
the CRC covers the payload bytes, so a flipped bit anywhere in the body
is detected.  Sequence numbers are global across segments, strictly
increasing, and never reused — they are the replayable offsets the
consumer commits.

**Torn tails vs corruption.**  A crash mid-append leaves a partial frame
at the end of the *last* segment; that is expected, carries no
acknowledged data (append never returned), and is repaired by truncation
when the log reopens.  A bad CRC on a *complete* frame is genuine
corruption: the frame is skippable (its length field still stands), so
the scan yields a :class:`CorruptRecord` for the dead-letter channel and
continues.  A mangled magic marker destroys framing itself and raises
:class:`~repro.errors.WalCorruptionError` — replay from that byte
onward would be fiction.

**Fsync batching.**  ``fsync_interval=k`` fsyncs every ``k`` appends
(and on segment rotation / explicit ``sync()``), trading the tail of
unsynced records for throughput; ``BENCH_ingest.json`` measures the
trade.  ``fsync_interval=None`` leaves durability to the OS page cache.

**Segment rotation.**  When the active segment exceeds
``segment_max_bytes`` the log fsyncs and closes it, opens
``wal-<next_seq>.log`` and fsyncs the directory, so the rotation itself
is crash-atomic: recovery either sees the old tail or the new (empty)
segment, both valid.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Mapping, \
    Optional, Tuple, Union

from ..errors import IngestError, WalCorruptionError
from ..ioutil import fsync_directory
from ..observability import facade as _obs
from ..observability import structlog

__all__ = ["CorruptRecord", "WalRecord", "WriteAheadLog"]

_MAGIC = b"WR"
_HEADER = struct.Struct(">2sII")  # magic, payload length, crc32
_SEGMENT_PREFIX = "wal-"
_SEGMENT_SUFFIX = ".log"

FaultHook = Callable[..., None]


@dataclass(frozen=True)
class WalRecord:
    """One durable ingest record, as written and as replayed."""

    seq: int
    key: str
    data: Dict[str, Any]
    segment: str = ""
    offset: int = -1


@dataclass(frozen=True)
class CorruptRecord:
    """A complete frame whose payload failed its CRC (dead-letter food).

    ``seq`` is unknown (the payload is untrusted), so consumers key the
    dead letter off the position instead.
    """

    segment: str
    offset: int
    length: int
    reason: str

    @property
    def key(self) -> str:
        return f"corrupt:{self.segment}@{self.offset}"


def _segment_name(first_seq: int) -> str:
    return f"{_SEGMENT_PREFIX}{first_seq:012d}{_SEGMENT_SUFFIX}"


def _segment_first_seq(name: str) -> int:
    stem = name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
    try:
        return int(stem)
    except ValueError:
        raise IngestError(f"not a WAL segment name: {name!r}")


def _encode(seq: int, key: str, data: Mapping[str, Any]) -> bytes:
    payload = json.dumps(
        {"seq": seq, "key": key, "data": dict(data)},
        sort_keys=True, separators=(",", ":"),
    ).encode("utf-8")
    return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


class WriteAheadLog:
    """Durable, segmented, replayable record log.

    Parameters
    ----------
    directory:
        Where segments live; created if missing.  Reopening a directory
        resumes the existing log: the last segment's tail is scanned,
        a torn final frame is truncated away, and appends continue from
        the next sequence number.
    segment_max_bytes:
        Rotation threshold for the active segment.
    fsync_interval:
        Fsync every this-many appends (``1`` = every append, the
        durability default); ``None`` disables explicit fsync.
    fault_hook:
        Test-only crash injection: called with a site name (and
        site-specific context) at the instants a real process could die.
        See :class:`repro.resilience.faults.CrashSchedule`.
    """

    def __init__(
        self,
        directory: Union[str, "os.PathLike[str]"],
        *,
        segment_max_bytes: int = 4 * 1024 * 1024,
        fsync_interval: Optional[int] = 1,
        fault_hook: Optional[FaultHook] = None,
    ):
        if segment_max_bytes < len(_HEADER.pack(_MAGIC, 0, 0)) + 2:
            raise IngestError(
                f"segment_max_bytes too small: {segment_max_bytes}"
            )
        if fsync_interval is not None and fsync_interval < 1:
            raise IngestError(
                f"fsync_interval must be >= 1 or None: {fsync_interval}"
            )
        self.directory = os.fspath(directory)
        self.segment_max_bytes = segment_max_bytes
        self.fsync_interval = fsync_interval
        self._fault_hook = fault_hook
        self._unsynced = 0
        self.appended = 0
        self.rotations = 0
        os.makedirs(self.directory, exist_ok=True)
        self._segments: List[str] = sorted(
            name for name in os.listdir(self.directory)
            if name.startswith(_SEGMENT_PREFIX)
            and name.endswith(_SEGMENT_SUFFIX)
        )
        self._next_seq = self._recover_tail()
        if not self._segments:
            self._open_segment(self._next_seq, fresh_log=True)
        else:
            active = os.path.join(self.directory, self._segments[-1])
            self._handle = open(active, "ab")

    # -- construction / recovery -------------------------------------------

    def _recover_tail(self) -> int:
        """Scan existing segments for the next sequence number, repairing
        a torn final frame by truncation."""
        if not self._segments:
            return 0
        # Earlier segments were finalized by rotation; only the last one
        # can have a torn tail.  The next seq still has to come from the
        # last *complete* frame of the last non-empty segment.
        last_seq = -1
        for name in self._segments[:-1]:
            last = self._last_complete_seq(name, repair=False)
            if last is not None:
                last_seq = max(last_seq, last)
        tail = self._last_complete_seq(self._segments[-1], repair=True)
        if tail is not None:
            last_seq = max(last_seq, tail)
        if last_seq < 0:
            return _segment_first_seq(self._segments[-1])
        return last_seq + 1

    def _last_complete_seq(
        self, name: str, *, repair: bool
    ) -> Optional[int]:
        path = os.path.join(self.directory, name)
        last_seq: Optional[int] = None
        good_end = 0
        with open(path, "rb") as handle:
            blob = handle.read()
        offset = 0
        while offset < len(blob):
            frame = self._parse_frame(blob, offset, name, tail_ok=True)
            if frame is None:  # torn tail
                break
            record, consumed = frame
            if isinstance(record, WalRecord):
                last_seq = record.seq
            good_end = offset + consumed
            offset = good_end
        if repair and good_end < len(blob):
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
            structlog.emit(
                "ingest.wal_torn_tail_repaired",
                segment=name,
                kept_bytes=good_end,
                dropped_bytes=len(blob) - good_end,
            )
            _obs.count("ingest.wal.torn_tails_repaired")
        return last_seq

    def _parse_frame(
        self, blob: bytes, offset: int, segment: str, *, tail_ok: bool
    ) -> Optional[Tuple[Union[WalRecord, CorruptRecord], int]]:
        """Decode one frame at ``offset``; ``None`` means torn tail.

        ``tail_ok`` governs whether an incomplete frame at the end of
        the buffer is a repairable tail (last segment) or corruption
        (an interior segment, which rotation should have finalized).
        """
        remaining = len(blob) - offset
        if remaining < _HEADER.size:
            if tail_ok:
                return None
            raise WalCorruptionError(
                f"{segment}: truncated header at offset {offset}"
            )
        magic, length, crc = _HEADER.unpack_from(blob, offset)
        if magic != _MAGIC:
            raise WalCorruptionError(
                f"{segment}: bad magic {magic!r} at offset {offset} — "
                "framing lost"
            )
        body_start = offset + _HEADER.size
        if len(blob) - body_start < length:
            if tail_ok:
                return None
            raise WalCorruptionError(
                f"{segment}: truncated payload at offset {offset}"
            )
        payload = blob[body_start:body_start + length]
        consumed = _HEADER.size + length
        if zlib.crc32(payload) != crc:
            return CorruptRecord(
                segment=segment, offset=offset, length=length,
                reason="crc mismatch",
            ), consumed
        try:
            decoded = json.loads(payload.decode("utf-8"))
            record = WalRecord(
                seq=int(decoded["seq"]),
                key=str(decoded["key"]),
                data=dict(decoded["data"]),
                segment=segment,
                offset=offset,
            )
        except (ValueError, KeyError, TypeError):
            # CRC passed but the payload is not ours — treat as
            # corruption rather than guessing.
            return CorruptRecord(
                segment=segment, offset=offset, length=length,
                reason="undecodable payload",
            ), consumed
        return record, consumed

    def _open_segment(self, first_seq: int, *,
                      fresh_log: bool = False) -> None:
        name = _segment_name(first_seq)
        path = os.path.join(self.directory, name)
        self._handle = open(path, "ab")
        self._segments.append(name)
        fsync_directory(self.directory)
        if not fresh_log:
            self.rotations += 1
            _obs.count("ingest.wal.rotations")
            structlog.emit(
                "ingest.wal_rotated",
                segment=name,
                segments=len(self._segments),
                first_seq=first_seq,
            )

    # -- fault-injection plumbing ------------------------------------------

    def _fault(self, site: str, **context: Any) -> None:
        if self._fault_hook is not None:
            self._fault_hook(site, **context)

    # -- write path --------------------------------------------------------

    @property
    def next_seq(self) -> int:
        return self._next_seq

    @property
    def segments(self) -> Tuple[str, ...]:
        return tuple(self._segments)

    def size_bytes(self) -> int:
        """Total bytes across all segments (observability)."""
        total = 0
        for name in self._segments:
            try:
                total += os.path.getsize(
                    os.path.join(self.directory, name)
                )
            except OSError:
                pass
        return total

    def append(self, key: str, data: Mapping[str, Any]) -> int:
        """Append one record; returns its sequence number.

        Durability of the returned sequence follows the fsync policy:
        with ``fsync_interval=1`` the record is on disk before this
        returns; with batching, call :meth:`sync` to harden the tail.
        """
        seq = self._next_seq
        frame = _encode(seq, key, data)
        # A crash inside the hook models dying mid-write: the hook may
        # itself write a torn prefix of the frame (see CrashSchedule).
        self._fault("wal.append", handle=self._handle, frame=frame)
        self._handle.write(frame)
        self._handle.flush()
        self._next_seq = seq + 1
        self.appended += 1
        self._unsynced += 1
        if (
            self.fsync_interval is not None
            and self._unsynced >= self.fsync_interval
        ):
            self.sync()
        if self._handle.tell() >= self.segment_max_bytes:
            self._rotate()
        return seq

    def sync(self) -> None:
        """Fsync the active segment; after this, every appended record
        survives power loss."""
        self._fault("wal.sync")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._unsynced = 0

    def _rotate(self) -> None:
        self._fault("wal.rotate")
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._handle.close()
        self._unsynced = 0
        self._open_segment(self._next_seq)

    def close(self) -> None:
        if getattr(self, "_handle", None) is not None \
                and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # -- read path ---------------------------------------------------------

    def replay(
        self, from_seq: int = 0
    ) -> Iterator[Union[WalRecord, CorruptRecord]]:
        """Yield records with ``seq >= from_seq`` in append order.

        Complete-but-corrupt frames are yielded as
        :class:`CorruptRecord` (position-keyed, payload untrusted) for
        the caller to dead-letter; an unframeable byte stream raises
        :class:`~repro.errors.WalCorruptionError`.  The torn tail of the
        final segment, if any, is silently ignored — those bytes were
        never acknowledged.
        """
        # Read through the filesystem, not internal state: replay must
        # see exactly what a post-crash process would.
        self._handle.flush()
        for index, name in enumerate(self._segments):
            last = index == len(self._segments) - 1
            path = os.path.join(self.directory, name)
            with open(path, "rb") as handle:
                blob = handle.read()
            offset = 0
            while offset < len(blob):
                frame = self._parse_frame(
                    blob, offset, name, tail_ok=last
                )
                if frame is None:
                    break
                record, consumed = frame
                offset += consumed
                if isinstance(record, CorruptRecord):
                    yield record
                elif record.seq >= from_seq:
                    yield record
