"""Competing consumers over the ingest log, with redelivery.

The Enterprise Integration *Competing Consumers* pattern: several
workers claim records from one channel so ingest keeps up with bursts;
the price is that claim order is not timestamp order and a worker can
die mid-record, forcing redelivery.  Both hazards are exactly what the
rest of the durable pipeline absorbs — the
:class:`~repro.ingest.resequencer.Resequencer` repairs the bounded
shuffle competition introduces, and the idempotent receiver suppresses
the duplicate delivery a redelivered claim becomes — so the
:class:`ConsumerGroup` needs no ordering discipline of its own.

The *apply* section stays serialized under one lock (the order gate is
inherently single-writer; competition parallelizes claim/decode, not
the final apply), which mirrors how a partitioned deployment would pin
one applier per corpus shard.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple, Union

from ..errors import IngestError
from ..observability import facade as _obs
from ..observability import structlog
from .pipeline import IngestPipeline
from .wal import CorruptRecord, WalRecord

__all__ = ["ConsumerGroup"]

# (kill worker before or after the apply, leaving the claim unacked)
CRASH_BEFORE = "before"
CRASH_AFTER = "after"


class ConsumerGroup:
    """N competing workers draining one :class:`IngestPipeline`.

    Parameters
    ----------
    pipeline:
        The durable ingest pipeline whose WAL tail is consumed.
    workers:
        Number of competing claim threads.
    crashes:
        Test-only redelivery injection: ``{seq: "before" | "after"}``
        makes the first worker that claims that record "die" before or
        after applying it — the claim is never acknowledged, so the
        record is redelivered to a surviving worker.  ``"after"`` is the
        at-least-once hazard (applied twice without idempotence);
        ``"before"`` is a plain retry.
    """

    def __init__(
        self,
        pipeline: IngestPipeline,
        workers: int = 2,
        *,
        crashes: Optional[Dict[int, str]] = None,
    ):
        if workers < 1:
            raise IngestError(f"workers must be >= 1: {workers}")
        for seq, mode in (crashes or {}).items():
            if mode not in (CRASH_BEFORE, CRASH_AFTER):
                raise IngestError(
                    f"crash mode for seq {seq} must be "
                    f"'{CRASH_BEFORE}' or '{CRASH_AFTER}': {mode!r}"
                )
        self.pipeline = pipeline
        self.workers = workers
        self._crashes: Dict[int, str] = dict(crashes or {})
        self._lock = threading.Lock()
        self.redeliveries = 0
        self.claims = 0

    def drain(self, *, commit: bool = True) -> int:
        """Fetch the WAL tail and apply it with competing workers.

        Returns the number of records taken responsibility for.  The
        final commit happens once the queue is drained and every worker
        has parked.
        """
        queue: Deque[Union[WalRecord, CorruptRecord]] = deque()
        with self._lock:
            for record in self.pipeline.wal.replay(
                self.pipeline.consumed_seq + 1
            ):
                if isinstance(record, CorruptRecord):
                    if not self.pipeline.dead_letters.seen(record.key):
                        self.pipeline.dead_letters.offer(
                            record.key,
                            f"corrupt WAL frame: {record.reason}",
                        )
                    continue
                if record.seq > self.pipeline.consumed_seq:
                    queue.append(record)
        fetched = len(queue)

        def worker() -> None:
            while True:
                with self._lock:
                    if not queue:
                        return
                    record = queue.popleft()
                    self.claims += 1
                    crash = self._crashes.pop(record.seq, None)
                    if crash == CRASH_BEFORE:
                        # died between claim and apply: the record goes
                        # back on the channel untouched, at the front —
                        # redelivery preserves log position, so it
                        # cannot fall behind the resequencer frontier
                        queue.appendleft(record)
                        self.redeliveries += 1
                        _obs.count("ingest.redeliveries")
                        structlog.emit(
                            "ingest.redelivery",
                            key=record.key, seq=record.seq,
                            mode=CRASH_BEFORE,
                        )
                        continue
                    self.pipeline._consume(record)
                    if crash == CRASH_AFTER:
                        # died between apply and ack: the transport
                        # redelivers what was already applied — the
                        # idempotent receiver must eat it
                        queue.appendleft(record)
                        self.redeliveries += 1
                        _obs.count("ingest.redeliveries")
                        structlog.emit(
                            "ingest.redelivery",
                            key=record.key, seq=record.seq,
                            mode=CRASH_AFTER,
                        )

        threads = [
            threading.Thread(target=worker, name=f"ingest-consumer-{i}")
            for i in range(self.workers)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        if commit and fetched:
            with self._lock:
                self.pipeline.commit()
        return fetched
