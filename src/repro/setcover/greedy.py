"""Greedy set cover.

The classical rule: repeatedly pick the set covering the most still-uncovered
elements.  Feige [12 in the paper] shows this is a ``ln k`` approximation
(``k`` the largest set size) and that no polynomial algorithm does better in
general.

Two candidate-maintenance strategies are provided because the paper's
Section 7.3 explicitly discusses the choice:

* ``strategy="rescan"`` — each round linearly scans all sets for the largest
  residual one.  This is what the authors report using, after finding the
  heap's delete/re-insert churn slower on bursty data.
* ``strategy="lazy_heap"`` — a max-heap with lazily re-validated stale
  entries (the standard "lazy deletion" trick).

Both return identical covers when ties are broken the same way; the ablation
benchmark :mod:`benchmarks.test_ablation_greedy_heap` compares their speed.
"""

from __future__ import annotations

import heapq
from typing import Hashable, Iterable, List, Optional, Sequence, Set, Tuple

from ..observability import facade as _obs

__all__ = ["greedy_set_cover"]


def _normalise(
    sets: Sequence[Iterable[Hashable]],
) -> Tuple[List[Set[Hashable]], Set[Hashable]]:
    families = [set(s) for s in sets]
    universe: Set[Hashable] = set()
    for family in families:
        universe |= family
    return families, universe


def greedy_set_cover(
    sets: Sequence[Iterable[Hashable]],
    universe: Optional[Iterable[Hashable]] = None,
    strategy: str = "rescan",
) -> List[int]:
    """Greedily cover ``universe`` with the given family of sets.

    Parameters
    ----------
    sets:
        The family; element ``i`` of the result indexes into this sequence.
    universe:
        Elements that must be covered.  Defaults to the union of ``sets``.
        Must be coverable (a subset of the union) or ``ValueError`` is
        raised.
    strategy:
        ``"rescan"`` (paper's implementation) or ``"lazy_heap"``.

    Returns
    -------
    list of int
        Indices of the chosen sets, in pick order.  Ties are broken by the
        lowest index, making the output deterministic.
    """
    families, implied = _normalise(sets)
    if universe is None:
        remaining = implied
    else:
        remaining = set(universe)
        if not remaining <= implied:
            missing = sorted(remaining - implied)[:5]
            raise ValueError(f"universe has uncoverable elements: {missing}")

    if strategy == "rescan":
        return _greedy_rescan(families, remaining)
    if strategy == "lazy_heap":
        return _greedy_lazy_heap(families, remaining)
    raise ValueError(f"unknown strategy {strategy!r}")


def _greedy_rescan(
    families: List[Set[Hashable]], remaining: Set[Hashable]
) -> List[int]:
    chosen: List[int] = []
    residual = [family & remaining for family in families]
    rounds = 0
    scanned = 0
    updates = 0
    while remaining:
        rounds += 1
        best_idx = -1
        best_gain = 0
        for idx, family in enumerate(residual):
            gain = len(family)
            if gain > best_gain:
                best_gain = gain
                best_idx = idx
        scanned += len(residual)
        if best_idx < 0:
            break  # nothing left can make progress (already validated above)
        chosen.append(best_idx)
        # Copy before subtracting: residual[best_idx] is aliased by `newly`
        # and would otherwise be emptied mid-loop, leaving later sets stale.
        newly = set(residual[best_idx])
        remaining -= newly
        for family in residual:
            if family:
                family -= newly
                updates += 1
    if _obs.enabled():
        _obs.count("setcover.rescan.rounds", rounds)
        _obs.count("setcover.rescan.sets_scanned", scanned)
        _obs.count("setcover.rescan.residual_updates", updates)
    return chosen


def _greedy_lazy_heap(
    families: List[Set[Hashable]], remaining: Set[Hashable]
) -> List[int]:
    residual = [family & remaining for family in families]
    # Max-heap via negated gains; entries go stale as elements get covered
    # and are re-validated on pop.
    heap: List[Tuple[int, int]] = [
        (-len(family), idx) for idx, family in enumerate(residual) if family
    ]
    heapq.heapify(heap)
    chosen: List[int] = []
    pops = 0
    revalidations = 0
    while remaining and heap:
        pops += 1
        neg_gain, idx = heapq.heappop(heap)
        residual[idx] &= remaining
        actual = len(residual[idx])
        if actual == 0:
            continue
        if -neg_gain != actual:
            revalidations += 1
            heapq.heappush(heap, (-actual, idx))
            continue
        # To match the rescan tie-break (lowest index wins among equal
        # gains), drain equal-gain entries with smaller indices first: the
        # heap orders by (gain, idx) already since tuples compare
        # lexicographically and gains are negated.
        chosen.append(idx)
        remaining -= residual[idx]
    if _obs.enabled():
        _obs.count("setcover.lazy_heap.pops", pops)
        _obs.count("setcover.lazy_heap.revalidations", revalidations)
        _obs.count("setcover.lazy_heap.picks", len(chosen))
    return chosen
