"""Generic set-cover machinery.

MQDP reduces to (weighted-cardinality) set cover — every post induces the set
of ``(post, label)`` pairs it lambda-covers — and both the GreedySC algorithm
(Section 4.2) and our exact cross-checking baseline are expressed on top of
the solvers in this package:

* :func:`repro.setcover.greedy.greedy_set_cover` — the classical
  ``ln(k)``-approximate greedy rule, with the paper's linear-rescan candidate
  maintenance and an alternative lazy-heap implementation for the ablation
  study.
* :func:`repro.setcover.exact.exact_set_cover` — a branch-and-bound exact
  solver for small universes, used to validate approximation bounds.
"""

from .exact import exact_set_cover
from .greedy import greedy_set_cover

__all__ = ["greedy_set_cover", "exact_set_cover"]
