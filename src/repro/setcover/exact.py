"""Exact minimum set cover via branch and bound.

Used as ground truth for small instances: validating the GreedySC ``ln k``
bound, cross-checking the MQDP dynamic program, and computing the "optimal"
reference in the effectiveness experiments when the DP's state space would be
too large.

The solver branches on the lowest-indexed uncovered element, trying only sets
that contain it (a classic reduction of the branching factor), prunes with a
greedy upper bound and a max-set-size lower bound, and memoises nothing — the
frontier is small for the instance sizes we target (universe up to a few
hundred elements when structure is favourable).
"""

from __future__ import annotations

from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set

from ..errors import AlgorithmBudgetExceeded
from .greedy import greedy_set_cover

__all__ = ["exact_set_cover"]


def exact_set_cover(
    sets: Sequence[Iterable[Hashable]],
    universe: Optional[Iterable[Hashable]] = None,
    node_budget: int = 2_000_000,
) -> List[int]:
    """Compute a minimum-cardinality cover of ``universe``.

    Parameters
    ----------
    sets:
        The family of candidate sets.
    universe:
        Elements to cover; defaults to the union of the family.
    node_budget:
        Upper bound on search-tree nodes; exceeding it raises
        :class:`~repro.errors.AlgorithmBudgetExceeded` instead of hanging.

    Returns
    -------
    list of int
        Indices of an optimal cover, sorted ascending.
    """
    families = [frozenset(s) for s in sets]
    implied: Set[Hashable] = set()
    for family in families:
        implied |= family
    target: Set[Hashable] = implied if universe is None else set(universe)
    if not target <= implied:
        missing = sorted(target - implied)[:5]
        raise ValueError(f"universe has uncoverable elements: {missing}")

    # Drop dominated sets: if family[i] ∩ target ⊆ family[j] ∩ target for
    # i != j, set i never helps more than j.  An O(m^2) filter that slashes
    # the branching factor on MQDP-derived instances, where nearby posts
    # cover nested pair ranges.
    effective = [family & target for family in families]
    order = sorted(range(len(effective)), key=lambda i: -len(effective[i]))
    kept: List[int] = []
    for idx in order:
        if not effective[idx]:
            continue
        if any(effective[idx] <= effective[other] and
               (len(effective[idx]) < len(effective[other]) or other < idx)
               for other in kept):
            continue
        kept.append(idx)

    element_to_sets: Dict[Hashable, List[int]] = {}
    for idx in kept:
        for element in effective[idx]:
            element_to_sets.setdefault(element, []).append(idx)

    # Greedy warm start gives the initial upper bound.
    greedy_pick = greedy_set_cover(sets, universe=target)
    best: List[int] = list(greedy_pick)
    best_size = len(best)

    max_set_size = max((len(effective[idx]) for idx in kept), default=0)
    nodes = [0]

    ordered_elements = sorted(target, key=lambda e: len(element_to_sets[e]))

    def branch(remaining: Set[Hashable], chosen: List[int]) -> None:
        nonlocal best, best_size
        nodes[0] += 1
        if nodes[0] > node_budget:
            raise AlgorithmBudgetExceeded(
                f"exact set cover exceeded {node_budget} nodes"
            )
        if not remaining:
            if len(chosen) < best_size:
                best = list(chosen)
                best_size = len(chosen)
            return
        if max_set_size:
            lower = (len(remaining) + max_set_size - 1) // max_set_size
            if len(chosen) + lower >= best_size:
                return
        # Branch on the uncovered element with the fewest candidate sets.
        pivot = None
        for element in ordered_elements:
            if element in remaining:
                pivot = element
                break
        candidates = [
            idx for idx in element_to_sets[pivot]
            if effective[idx] & remaining
        ]
        candidates.sort(key=lambda idx: -len(effective[idx] & remaining))
        for idx in candidates:
            chosen.append(idx)
            branch(remaining - effective[idx], chosen)
            chosen.pop()

    branch(set(target), [])
    return sorted(best)
