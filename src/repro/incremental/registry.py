"""The view registry: epoch-committed, LRU-bounded cover views.

Holds every live :class:`~repro.incremental.view.CoverView`, keyed by
``(labels, λ, algorithm, dimension)`` — the same identity (minus epoch)
the result cache keys on.  The registry is the single point where the
service applies write-path deltas and where the read path asks for a
materialized digest.

**Epoch discipline.**  A view is servable only when its epoch equals
both the registry's committed epoch *and* the epoch embedded in the
caller's cache key.  The service's write path applies deltas first, then
bumps the cache epoch, then :meth:`commit`\\ s the registry at the new
epoch — so between the bump and the commit a concurrent read misses the
view and falls through to the batch engine.  Stale views can be read
*never*; at worst a fresh view is missed.  Seeding follows the result
cache's dead-epoch rule: a solve that straddled an invalidation is
refused (``stale_seeds``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, NamedTuple, Optional, Sequence, \
    Tuple

from ..core.post import Post
from ..observability import facade as _obs
from .store import PostStore
from .view import CoverView

__all__ = ["ViewKey", "ViewRegistry"]


class ViewKey(NamedTuple):
    """Identity of one maintained view (epoch-free: views roll forward
    through epochs; servability is checked against the committed one)."""

    labels: Tuple[str, ...]
    lam: float
    algorithm: str
    dimension: str


class ViewRegistry:
    """All maintained cover views over one shared :class:`PostStore`."""

    def __init__(
        self,
        store: PostStore,
        *,
        rebuild_ratio: float = 3.0,
        rebuild_slack: int = 8,
        max_views: int = 32,
        default_window: Optional[float] = None,
    ):
        if max_views < 1:
            raise ValueError(f"max_views must be >= 1, got {max_views}")
        self.store = store
        self.rebuild_ratio = rebuild_ratio
        self.rebuild_slack = rebuild_slack
        self.max_views = max_views
        # sliding windows: the service-wide default plus per-label-set
        # overrides.  The *store* physically expires at the widest of
        # them (retention()); narrower windows are per-view horizons.
        self.default_window = default_window
        self._windows: Dict[Tuple[str, ...], float] = {}
        self._lock = threading.RLock()
        self._views: "OrderedDict[ViewKey, CoverView]" = OrderedDict()
        self.epoch = 0
        # lifetime counters
        self.hits = 0
        self.misses = 0
        self.stale_reads = 0
        self.rebuild_reads = 0
        self.seeds = 0
        self.stale_seeds = 0
        self.evictions = 0
        self.invalidations = 0

    @staticmethod
    def key_for(
        labels: Iterable[str],
        lam: float,
        algorithm: str,
        dimension: str,
    ) -> ViewKey:
        return ViewKey(
            labels=tuple(sorted(set(labels))),
            lam=float(lam),
            algorithm=algorithm,
            dimension=dimension,
        )

    # -- per-label-set windows ---------------------------------------------

    def set_window(
        self, labels: Iterable[str], window: Optional[float]
    ) -> int:
        """Override the sliding window for one label set.

        ``None`` clears the override (the label set falls back to the
        default window).  Views materialized for exactly this label set
        are invalidated — their cover was maintained against the old
        horizon — and re-seed from the next batch solve.  Returns the
        number of views invalidated.
        """
        key = tuple(sorted(set(labels)))
        with self._lock:
            if window is None:
                self._windows.pop(key, None)
            else:
                self._windows[key] = float(window)
            invalidated = 0
            for view_key, view in self._views.items():
                if view_key.labels == key:
                    view.invalidate()
                    view.window = self.window_for(key)
                    invalidated += 1
            self.invalidations += invalidated
        if invalidated:
            _obs.count("service.views.invalidations", invalidated)
        return invalidated

    def window_for(
        self, labels: Iterable[str]
    ) -> Optional[float]:
        """The effective window for a label set: its override, else the
        default."""
        return self._windows.get(
            tuple(sorted(set(labels))), self.default_window
        )

    def windows(self) -> Dict[Tuple[str, ...], float]:
        with self._lock:
            return dict(self._windows)

    def retention(self) -> Optional[float]:
        """How long the *store* must physically keep posts: the widest
        of the default window and every override.  ``None`` (keep
        everything) when the default is unbounded — an override can
        narrow a view below the default, never widen physical retention
        past an unbounded one."""
        if self.default_window is None:
            return None
        with self._lock:
            if not self._windows:
                return self.default_window
            return max(self.default_window, max(self._windows.values()))

    def advance(self, max_value: Optional[float]) -> set:
        """Slide every windowed view's own horizon to
        ``max_value - window``.  Returns the labels of views whose
        horizon actually moved — their cached digests must not be
        carried forward across the epoch bump, even when the arriving
        batch touched none of their labels."""
        if max_value is None:
            return set()
        affected: set = set()
        with self._lock:
            store_horizon = self.store.horizon
            for key, view in self._views.items():
                window = self.window_for(key.labels)
                if window is None:
                    continue
                cutoff = max_value - window
                if view.advance_horizon(cutoff) is None:
                    continue
                # a horizon at or below the store's physical one drops
                # nothing the expiry pass did not already report — only
                # a *narrower* window invalidates on its own
                if store_horizon is None or cutoff > store_horizon:
                    affected.update(key.labels)
        return affected

    # -- write path --------------------------------------------------------

    def seed(self, key: ViewKey, posts: Sequence[Post],
             baseline_size: int, epoch: int) -> Optional[CoverView]:
        """Adopt a batch cover for ``key``, computed at ``epoch``.

        Refused when ``epoch`` is no longer the committed one — the
        solve straddled an invalidation and its cover may not match the
        current corpus.  Returns the seeded view, or ``None``.
        """
        with self._lock:
            if epoch != self.epoch:
                self.stale_seeds += 1
                _obs.count("service.views.stale_seeds")
                return None
            view = self._views.get(key)
            if view is None:
                view = CoverView(
                    self.store, key.labels, key.lam,
                    algorithm=key.algorithm, dimension=key.dimension,
                    rebuild_ratio=self.rebuild_ratio,
                    rebuild_slack=self.rebuild_slack,
                )
                self._views[key] = view
            window = self.window_for(key.labels)
            view.window = window
            if window is not None and self.store.max_value is not None:
                # the seeding solve was clipped at this horizon; record
                # it so reads and future deltas clip identically
                view.horizon = self.store.max_value - window
            elif window is None:
                view.horizon = None
            view.seed(posts, baseline_size, epoch)
            self._views.move_to_end(key)
            while len(self._views) > self.max_views:
                self._views.popitem(last=False)
                self.evictions += 1
                _obs.count("service.views.evictions")
            self.seeds += 1
            _obs.count("service.views.seeds")
            return view

    def apply_insert(self, post: Post) -> int:
        """Fan one arrival out to every view; returns selection count."""
        with self._lock:
            selected = 0
            for view in self._views.values():
                if view.apply_insert(post):
                    selected += 1
            return selected

    def apply_expire(self, removed: Sequence[Post]) -> int:
        """Fan window expiries out; returns total evicted members."""
        if not removed:
            return 0
        with self._lock:
            evicted = 0
            for view in self._views.values():
                evicted += view.apply_expire(removed)
            return evicted

    def commit(self, epoch: int) -> None:
        """Mark every maintained view current at ``epoch``.

        Call *after* the deltas for the epoch bump have been applied;
        stale/needs-rebuild views stay unservable regardless."""
        with self._lock:
            self.epoch = epoch
            for view in self._views.values():
                if not view.stale:
                    view.epoch = epoch
        _obs.count("service.views.commits")

    def rebind(self, store: PostStore) -> None:
        """Swap in a freshly rebuilt store; every view is invalidated
        (its cover was maintained against the old projection)."""
        with self._lock:
            self.store = store
            for view in self._views.values():
                view.store = store
                view.invalidate()
            self.invalidations += len(self._views)
        _obs.count("service.views.rebinds")

    def invalidate_all(self, reason: str = "") -> int:
        """Drop every view's maintained state (e.g. restore, reorder)."""
        with self._lock:
            for view in self._views.values():
                view.invalidate()
            count = len(self._views)
            self.invalidations += count
        if count:
            _obs.count("service.views.invalidations", count)
        return count

    # -- read path ---------------------------------------------------------

    def get(self, key: ViewKey) -> Optional[CoverView]:
        with self._lock:
            return self._views.get(key)

    def read(self, key: ViewKey, epoch: int) -> Optional[CoverView]:
        """The servable view for ``key`` at ``epoch``, or ``None``.

        Misses are classified: absent (``misses``), wrong epoch or
        unseeded (``stale_reads``), drifted past the ratio bound
        (``rebuild_reads`` — the caller should batch-solve and re-seed).
        """
        with self._lock:
            view = self._views.get(key)
            if view is None:
                self.misses += 1
                _obs.count("service.views.misses")
                return None
            if view.needs_rebuild:
                self.rebuild_reads += 1
                _obs.count("service.views.rebuild_reads")
                return None
            if epoch != self.epoch or not view.fresh(epoch):
                self.stale_reads += 1
                _obs.count("service.views.stale_reads")
                return None
            self._views.move_to_end(key)
            self.hits += 1
            _obs.count("service.views.hits")
            return view

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._views)

    def views(self) -> List[CoverView]:
        with self._lock:
            return list(self._views.values())

    def hit_rate(self) -> float:
        total = self.hits + self.misses + self.stale_reads \
            + self.rebuild_reads
        return self.hits / total if total else 0.0

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe registry + per-view stats for ``introspect()``."""
        with self._lock:
            return {
                "epoch": self.epoch,
                "count": len(self._views),
                "max_views": self.max_views,
                "hits": self.hits,
                "misses": self.misses,
                "stale_reads": self.stale_reads,
                "rebuild_reads": self.rebuild_reads,
                "hit_rate": self.hit_rate(),
                "seeds": self.seeds,
                "stale_seeds": self.stale_seeds,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "default_window": self.default_window,
                "window_overrides": {
                    ",".join(labels): window
                    for labels, window in sorted(self._windows.items())
                },
                "retention": self.retention(),
                "store": self.store.stats(),
                "views": [
                    view.snapshot() for view in self._views.values()
                ],
            }
