"""The write side of the incremental read path: projection + post store.

The batch pipeline recomputes the whole document → post projection on
every solve: SimHash dedup over the corpus in arrival order, keyword
matching, value extraction, then an :class:`~repro.core.instance.Instance`
sort.  At serving scale that projection *is* repeated work — the corpus
only ever changes by appends (and, with a sliding window, expiries at the
old end), so the projected post set can be maintained once and shared by
every materialized cover view.

Two pieces:

* :class:`DocumentProjector` — the incremental twin of
  ``DiversificationPipeline.digest``'s preprocessing.  One document in,
  at most one post out, with the same SimHash kept-set semantics (a
  dropped near-twin never registers its fingerprint, so later arrivals
  dedup against exactly the posts the batch path would keep) and the
  same matcher/value extraction.  Because SimHash kept-sets depend on
  arrival order, the projector is only equivalent to the batch path when
  it sees documents in the batch corpus order — the service falls back
  to a full reprojection when that order diverges (ingest after stream).
* :class:`PostStore` — the projected posts in ``(value, uid)`` order
  with per-label key indexes, supporting append, window expiry at the
  old end, ±λ neighborhood queries (for bounded view repair) and O(n)
  relabeled materialization into a trusted
  :meth:`~repro.core.instance.Instance.from_sorted` instance — no
  re-sort, no re-validation on the read path.

The store also tracks the values of *unmatched* kept documents, so a
view can report exact ``unmatched_dropped`` counters even after window
expiry removed some of them.
"""

from __future__ import annotations

import bisect
import threading
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, \
    Sequence, Set, Tuple

from ..core.instance import Instance
from ..core.post import Post
from ..errors import ReproError
from ..index.inverted_index import Document
from ..index.query import LabelMatcher, TopicQuery
from ..index.simhash import SimHashIndex, simhash

__all__ = ["DocumentProjector", "PostStore"]


class DocumentProjector:
    """Incremental document → post projection (dedup, match, value).

    Mirrors the preprocessing of ``DiversificationPipeline.digest`` one
    document at a time: a document is dropped as a near-duplicate iff a
    previously *kept* document's fingerprint is within ``dedup_distance``
    (kept-set semantics — dropped documents never register), then matched
    against the full query set; label-less documents are dropped.
    """

    def __init__(
        self,
        queries: Sequence[TopicQuery],
        *,
        dedup_distance: Optional[int] = None,
        value_of: Optional[Callable[[Document], float]] = None,
    ):
        self.matcher = LabelMatcher(queries)
        self.dedup_distance = dedup_distance
        self._dedup: Optional[SimHashIndex] = (
            None if dedup_distance is None
            else SimHashIndex(max_distance=dedup_distance)
        )
        self._value_of = (
            value_of if value_of is not None
            else (lambda document: document.timestamp)
        )
        self.documents = 0
        self.duplicates_dropped = 0
        self.unmatched = 0

    def project(self, document: Document) -> Optional[Post]:
        """Project one document; ``None`` when deduped or unmatched."""
        self.documents += 1
        if self._dedup is not None:
            fingerprint = simhash(document.text)
            if self._dedup.query(fingerprint):
                self.duplicates_dropped += 1
                return None
            self._dedup.add(document.doc_id, fingerprint)
        labels = self.matcher.match(document.text)
        if not labels:
            self.unmatched += 1
            return None
        return Post(
            uid=document.doc_id,
            value=float(self._value_of(document)),
            labels=labels,
            text=document.text,
        )


class PostStore:
    """Projected posts in ``(value, uid)`` order, shared by all views.

    Thread-safe: the write path appends from ingest/feed (possibly WAL
    consumer threads) while views materialize reads under the same lock.
    """

    def __init__(self, projector: Optional[DocumentProjector] = None):
        self.projector = projector
        self._lock = threading.RLock()
        self._keys: List[Tuple[float, int]] = []
        self._posts: List[Post] = []
        self._by_label: Dict[str, List[Tuple[float, int]]] = {}
        self._by_uid: Dict[int, Post] = {}
        # values of kept-but-unmatched documents, sorted — expired with
        # the window so views report exact unmatched_dropped counters
        self._unmatched_values: List[float] = []
        self._max_value: Optional[float] = None
        self.version = 0
        self.expired = 0
        self.horizon: Optional[float] = None

    # -- write path --------------------------------------------------------

    def add(self, post: Post) -> None:
        """Insert one projected post (uids must be unique)."""
        with self._lock:
            if post.uid in self._by_uid:
                raise ReproError(
                    f"duplicate post uid {post.uid} in view store"
                )
            if not post.labels:
                raise ReproError(
                    f"post {post.uid} has an empty label set"
                )
            key = (post.value, post.uid)
            idx = bisect.bisect_left(self._keys, key)
            self._keys.insert(idx, key)
            self._posts.insert(idx, post)
            for label in post.labels:
                bisect.insort(self._by_label.setdefault(label, []), key)
            self._by_uid[post.uid] = post
            self._note_value(post.value)
            self.version += 1

    def ingest_document(self, document: Document) -> Optional[Post]:
        """Project and store one document.

        Returns the stored post, or ``None`` when the projector dropped
        it (duplicate / unmatched).  Requires a projector.
        """
        if self.projector is None:
            raise ReproError("this store has no projector attached")
        with self._lock:
            unmatched_before = self.projector.unmatched
            post = self.projector.project(document)
            if post is None:
                if self.projector.unmatched > unmatched_before:
                    # kept but label-less: it still counts against the
                    # batch path's document tally, so track its value —
                    # windowed unmatched_dropped counters stay exact
                    value = float(self.projector._value_of(document))
                    bisect.insort(self._unmatched_values, value)
                    self._note_value(value)
                return None
            self.add(post)
            return post

    def _note_value(self, value: float) -> None:
        if self._max_value is None or value > self._max_value:
            self._max_value = value

    def expire(self, cutoff: float) -> List[Post]:
        """Drop every post with ``value < cutoff``; returns them.

        Also trims the unmatched-value ledger and records ``cutoff`` as
        the store horizon — the service uses the same horizon to filter
        the batch path's corpus, so both paths see one window.
        """
        with self._lock:
            self.horizon = cutoff if self.horizon is None \
                else max(self.horizon, cutoff)
            idx = bisect.bisect_left(self._keys, (cutoff,))
            removed: List[Post] = []
            if idx > 0:
                removed = self._posts[:idx]
                del self._keys[:idx]
                del self._posts[:idx]
                affected: Set[str] = set()
                for post in removed:
                    del self._by_uid[post.uid]
                    affected |= post.labels
                for label in affected:
                    entries = self._by_label[label]
                    del entries[:bisect.bisect_left(entries, (cutoff, -1))]
                self.expired += len(removed)
                self.version += 1
            dead = bisect.bisect_left(self._unmatched_values, cutoff)
            if dead:
                del self._unmatched_values[:dead]
            return removed

    # -- read path ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._posts)

    @property
    def max_value(self) -> Optional[float]:
        """Largest value of any kept document ever seen (incl. expired)."""
        return self._max_value

    @property
    def live_documents(self) -> int:
        """Kept documents inside the window (matched + unmatched)."""
        return len(self._posts) + len(self._unmatched_values)

    def live_documents_since(self, min_value: Optional[float]) -> int:
        """Kept documents with value ``>= min_value`` — the corpus size
        a view with its own (narrower) horizon reports counters against.
        ``None`` counts the whole physical window."""
        if min_value is None:
            return self.live_documents
        with self._lock:
            posts = len(self._keys) - bisect.bisect_left(
                self._keys, (min_value,)
            )
            unmatched = len(self._unmatched_values) - bisect.bisect_left(
                self._unmatched_values, min_value
            )
            return posts + unmatched

    def post(self, uid: int) -> Optional[Post]:
        return self._by_uid.get(uid)

    def posts_near(
        self, label: str, center: float, lam: float
    ) -> List[Post]:
        """Live posts carrying ``label`` with value within ``lam`` of
        ``center``.  Boundary-widened bisect plus an exact ``abs()``
        re-check, arithmetically identical to the coverage verifier."""
        with self._lock:
            entries = self._by_label.get(label)
            if not entries:
                return []
            lo = max(0, bisect.bisect_left(entries, (center - lam,)) - 1)
            hi = min(
                len(entries),
                bisect.bisect_right(
                    entries, (center + lam, float("inf"))
                ) + 1,
            )
            return [
                self._by_uid[uid]
                for value, uid in entries[lo:hi]
                if abs(value - center) <= lam
            ]

    def materialize(
        self,
        labels: Iterable[str],
        lam: float,
        min_value: Optional[float] = None,
    ) -> Instance:
        """The instance a batch solve over ``labels`` would see.

        Posts are relabeled to the requested subset (per-query matching
        is independent, so subset matching equals full matching
        intersected with the subset) and handed to the trusted
        constructor — already sorted, already validated.  ``min_value``
        additionally clips the old end — how a view with a narrower
        per-label-set window reads a store whose physical retention is
        the widest window of any view.
        """
        universe: FrozenSet[str] = frozenset(labels)
        with self._lock:
            selected: List[Post] = []
            start = 0 if min_value is None else bisect.bisect_left(
                self._keys, (min_value,)
            )
            for post in self._posts[start:]:
                inter = post.labels & universe
                if not inter:
                    continue
                if inter == post.labels:
                    selected.append(post)
                else:
                    selected.append(Post(
                        uid=post.uid, value=post.value,
                        labels=inter, text=post.text,
                    ))
            return Instance.from_sorted(selected, lam, universe)

    def stats(self) -> Dict[str, object]:
        """JSON-safe store vitals for ``service.introspect()``."""
        with self._lock:
            projector = self.projector
            return {
                "posts": len(self._posts),
                "labels": len(self._by_label),
                "unmatched_live": len(self._unmatched_values),
                "version": self.version,
                "expired": self.expired,
                "horizon": self.horizon,
                "documents": None if projector is None
                else projector.documents,
                "duplicates_dropped": None if projector is None
                else projector.duplicates_dropped,
            }
