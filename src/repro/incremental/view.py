"""Materialized λ-cover views with delta maintenance and bounded repair.

A :class:`CoverView` keeps a λ-cover for one ``(label-set, λ)`` pair
alive as the corpus changes, so ``digest()`` can read it instead of
re-running a batch solver.  The maintenance rules come straight from the
paper's Section 5 streaming theory:

* **insertion** is the instant-decision algorithm (``tau = 0``, bound
  ``2s``): an arriving post joins the cover iff one of its labels has no
  cover member within λ.  A post covers itself at distance 0, so the
  cover stays verifier-valid by construction;
* **window expiry** evicts cover members at the old end.  Evicting a
  member can only orphan (post, label) pairs within ±λ of it —
  StreamScan's locality argument — so repair is a *bounded local
  re-scan*: enumerate live posts in that neighborhood, re-select any
  whose labels went uncovered, in value order.  Each repair pick covers
  itself, so validity again holds by construction;
* **quality** is watched by a ledger.  Instant decisions guarantee
  ``2s``-competitiveness against the stream, not against batch OPT on
  the current window; when the maintained cover drifts past
  ``rebuild_ratio × baseline + rebuild_slack`` (baseline = last batch
  solve's size), the view flags ``needs_rebuild`` and the service routes
  the next read through the batch engine, which re-seeds the view.

Views never invent coverage state: they are *seeded* from a batch
solver's digest and only grow/shrink through the two delta rules above.
Freshness is epoch-disciplined exactly like the result cache — a view
is servable only when its epoch equals the registry's committed epoch.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..core.coverage import uncovered_pairs
from ..core.instance import Instance
from ..core.post import Post
from ..core.solution import Solution
from ..errors import ReproError
from .store import PostStore

__all__ = ["CoverView", "ViewLedger"]


@dataclass
class ViewLedger:
    """Monotone counters describing one view's maintenance history."""

    cold_builds: int = 0
    inserts: int = 0
    selected_inserts: int = 0
    expiries: int = 0
    expired_members: int = 0
    repairs: int = 0
    repaired_pairs: int = 0
    repair_candidates: int = 0
    rebuild_flags: int = 0
    reads: int = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "cold_builds": self.cold_builds,
            "inserts": self.inserts,
            "selected_inserts": self.selected_inserts,
            "expiries": self.expiries,
            "expired_members": self.expired_members,
            "repairs": self.repairs,
            "repaired_pairs": self.repaired_pairs,
            "repair_candidates": self.repair_candidates,
            "rebuild_flags": self.rebuild_flags,
            "reads": self.reads,
        }


class CoverView:
    """One maintained λ-cover over a label subset of a :class:`PostStore`.

    Parameters
    ----------
    store:
        The shared projected-post store (the view's source of truth for
        materialization and repair scans).
    labels:
        The view's label subset.  Cover members are relabeled to it.
    lam:
        The λ threshold.
    algorithm:
        The batch algorithm family this view stands in for — cold builds
        and rebuilds run it; reads advertise ``view:<algorithm>``.
    rebuild_ratio / rebuild_slack:
        Drift bound: the view flags ``needs_rebuild`` once its cover
        exceeds ``rebuild_ratio * baseline + rebuild_slack`` members,
        where baseline is the seeding batch solve's size.
    """

    def __init__(
        self,
        store: PostStore,
        labels: Iterable[str],
        lam: float,
        *,
        algorithm: str = "greedy_sc",
        dimension: str = "time",
        rebuild_ratio: float = 3.0,
        rebuild_slack: int = 8,
    ):
        if lam < 0:
            raise ReproError(f"lambda must be >= 0, got {lam}")
        if rebuild_ratio < 1.0:
            raise ReproError(
                f"rebuild_ratio must be >= 1, got {rebuild_ratio}"
            )
        if rebuild_slack < 0:
            raise ReproError(
                f"rebuild_slack must be >= 0, got {rebuild_slack}"
            )
        self.store = store
        self.labels: FrozenSet[str] = frozenset(labels)
        self.lam = float(lam)
        self.algorithm = algorithm
        self.dimension = dimension
        self.rebuild_ratio = float(rebuild_ratio)
        self.rebuild_slack = int(rebuild_slack)
        # the maintained cover: uid -> relabeled member, plus per-label
        # sorted (value, uid) indexes for O(log) coverage probes
        self._members: Dict[int, Post] = {}
        self._index: Dict[str, List[Tuple[float, int]]] = {}
        # read memoization: (store.version, mutation count) -> the last
        # materialized answer.  A read against an unchanged store and an
        # unchanged cover is a tuple compare — the near-O(1) hot path.
        self._mutations = 0
        self._materialized: Optional[
            Tuple[Tuple[int, int], Instance, Solution]
        ] = None
        self.baseline_size: Optional[int] = None
        self.epoch = -1
        self.stale = True
        self.needs_rebuild = False
        # per-view window: the registry attaches the (label-set
        # specific) window at seed time; ``horizon`` is this view's own
        # old-end cutoff, which may sit *above* the store's physical
        # horizon when another view retains a wider window
        self.window: Optional[float] = None
        self.horizon: Optional[float] = None
        self.ledger = ViewLedger()

    # -- coverage probes ---------------------------------------------------

    def _covered(self, label: str, value: float) -> bool:
        entries = self._index.get(label)
        if not entries:
            return False
        # boundary-widened bisect + exact abs() re-check, arithmetically
        # identical to the coverage verifier (see _SelectedIndex)
        idx = max(0, bisect.bisect_left(entries, (value - self.lam,)) - 1)
        return any(
            abs(member_value - value) <= self.lam
            for member_value, _ in entries[idx:idx + 3]
        )

    def _select(self, post: Post) -> Post:
        relevant = post.labels & self.labels
        member = post if relevant == post.labels else Post(
            uid=post.uid, value=post.value,
            labels=relevant, text=post.text,
        )
        self._members[member.uid] = member
        key = (member.value, member.uid)
        for label in member.labels:
            bisect.insort(self._index.setdefault(label, []), key)
        self._mutations += 1
        return member

    def _deselect(self, member: Post) -> None:
        key = (member.value, member.uid)
        for label in member.labels:
            entries = self._index.get(label, [])
            idx = bisect.bisect_left(entries, key)
            if idx < len(entries) and entries[idx] == key:
                del entries[idx]
        self._mutations += 1

    # -- seeding -----------------------------------------------------------

    def seed(
        self,
        posts: Iterable[Post],
        baseline_size: int,
        epoch: int,
    ) -> None:
        """Adopt a batch solve's cover as the view state.

        ``posts`` must cover the store's current materialization of this
        view's labels (they come from a batch digest over the same
        corpus version).  Resets the drift baseline.
        """
        self._members = {}
        self._index = {}
        self._materialized = None
        for post in posts:
            self._select(post)
        self.baseline_size = max(1, int(baseline_size))
        self.epoch = epoch
        self.stale = False
        self.needs_rebuild = False
        self.ledger.cold_builds += 1

    def invalidate(self) -> None:
        """Drop the maintained state; the next read must re-seed."""
        self._members = {}
        self._index = {}
        self._materialized = None
        self._mutations += 1
        self.stale = True
        self.needs_rebuild = False

    # -- delta maintenance -------------------------------------------------

    def apply_insert(self, post: Post) -> bool:
        """One post arrived in the store.  Instant decision: select it
        iff one of its (view-relevant) labels went uncovered.  Returns
        True when the post joined the cover."""
        relevant = post.labels & self.labels
        if not relevant or self.stale:
            return False
        if self.horizon is not None and post.value < self.horizon:
            return False  # already behind this view's own window
        self.ledger.inserts += 1
        if all(self._covered(a, post.value) for a in relevant):
            return False
        self._select(post)
        self.ledger.selected_inserts += 1
        self._check_drift()
        return True

    def apply_expire(self, removed: Iterable[Post]) -> int:
        """Posts left the window (already removed from the store).

        Evicts expired cover members and repairs locally: only pairs
        within ±λ of an evicted member can have lost coverage, so the
        re-scan is bounded by the neighborhood's live posts.  Returns
        the number of evicted members.
        """
        if self.stale:
            return 0
        evicted: List[Post] = []
        relevant = False
        for post in removed:
            if post.labels & self.labels:
                relevant = True
            member = self._members.pop(post.uid, None)
            if member is not None:
                evicted.append(member)
        if not relevant:
            return 0
        self.ledger.expiries += 1
        if not evicted:
            return 0
        for member in evicted:
            self._deselect(member)
        self.ledger.expired_members += len(evicted)
        # orphan scan: live posts within lambda of an evicted member,
        # restricted to the labels that member carried
        self._repair_around(evicted)
        self._check_drift()
        return len(evicted)

    def _repair_around(self, evicted: Iterable[Post]) -> int:
        """Bounded local repair after evictions: only pairs within ±λ of
        an evicted member can have lost coverage.  Candidates behind the
        view's own horizon are skipped — they are no longer part of this
        view's instance even when the store still holds them."""
        orphans: Dict[Tuple[float, int], Post] = {}
        for member in evicted:
            for label in member.labels:
                for post in self.store.posts_near(
                    label, member.value, self.lam
                ):
                    if self.horizon is not None \
                            and post.value < self.horizon:
                        continue
                    self.ledger.repair_candidates += 1
                    orphans.setdefault((post.value, post.uid), post)
        repaired = 0
        for key in sorted(orphans):
            post = orphans[key]
            relevant_labels = post.labels & self.labels
            lost = [
                a for a in relevant_labels
                if not self._covered(a, post.value)
            ]
            if lost:
                self._select(post)
                repaired += len(lost)
        if repaired:
            self.ledger.repairs += 1
            self.ledger.repaired_pairs += repaired
        return repaired

    def advance_horizon(self, cutoff: float) -> Optional[int]:
        """Slide this view's own window edge up to ``cutoff``.

        The store may retain older posts (another view's window is
        wider); this view stops *seeing* them: members below the cutoff
        are evicted with the usual bounded repair, and materialization
        clips the instance at the horizon.  Returns the number of
        evicted members, or ``None`` when the horizon did not move (the
        no-op fast path — the memoized read stays valid).
        """
        if self.horizon is not None and cutoff <= self.horizon:
            return None
        self.horizon = cutoff
        # the horizon itself changes the materialized instance even
        # when no member falls — always invalidate the memo
        self._mutations += 1
        if self.stale:
            return 0
        evicted = [
            member for member in self._members.values()
            if member.value < cutoff
        ]
        for member in evicted:
            del self._members[member.uid]
            self._deselect(member)
        if evicted:
            self.ledger.expiries += 1
            self.ledger.expired_members += len(evicted)
            self._repair_around(evicted)
        self._check_drift()
        return len(evicted)

    def _check_drift(self) -> None:
        if self.baseline_size is None:
            return
        bound = self.rebuild_ratio * self.baseline_size \
            + self.rebuild_slack
        if len(self._members) > bound and not self.needs_rebuild:
            self.needs_rebuild = True
            self.ledger.rebuild_flags += 1

    # -- read path ---------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._members)

    def drift_ratio(self) -> Optional[float]:
        if self.baseline_size is None:
            return None
        return len(self._members) / self.baseline_size

    def fresh(self, epoch: int) -> bool:
        """Servable at ``epoch``: seeded, not drifted, right version."""
        return not self.stale and not self.needs_rebuild \
            and self.epoch == epoch

    def cover_posts(self) -> Tuple[Post, ...]:
        """The maintained cover, in canonical ``(value, uid)`` order."""
        return tuple(sorted(
            self._members.values(), key=lambda p: (p.value, p.uid)
        ))

    def materialize(self) -> Tuple[Instance, Solution]:
        """The view's answer: the store's current instance for these
        labels plus the maintained cover as a solution.  Memoized on
        (store version, cover mutations) — repeated reads against an
        unchanged corpus cost a tuple compare."""
        self.ledger.reads += 1
        state = (self.store.version, self._mutations)
        memo = self._materialized
        if memo is not None and memo[0] == state:
            return memo[1], memo[2]
        instance = self.store.materialize(
            self.labels, self.lam, min_value=self.horizon
        )
        solution = Solution.from_posts(
            f"view:{self.algorithm}", list(self.cover_posts()),
            elapsed=0.0,
        )
        self._materialized = (state, instance, solution)
        return instance, solution

    def verify(self) -> List[Tuple[int, str]]:
        """Uncovered (uid, label) pairs of the maintained cover against
        the store's current state — empty iff the view is λ-valid."""
        instance = self.store.materialize(
            self.labels, self.lam, min_value=self.horizon
        )
        return uncovered_pairs(instance, self.cover_posts())

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe per-view stats for ``service.introspect()``."""
        return {
            "labels": sorted(self.labels),
            "lam": self.lam,
            "algorithm": self.algorithm,
            "dimension": self.dimension,
            "size": len(self._members),
            "baseline_size": self.baseline_size,
            "drift_ratio": self.drift_ratio(),
            "epoch": self.epoch,
            "stale": self.stale,
            "needs_rebuild": self.needs_rebuild,
            "window": self.window,
            "horizon": self.horizon,
            "ledger": self.ledger.as_dict(),
        }
