"""Incremental cover maintenance — materialized λ-cover views.

The CQRS split of ROADMAP item 2: the write path (ingest, stream feed,
durable replay) applies *deltas* to a shared projected-post store and to
per-(label-set, λ, algorithm) cover views; the read path serves the
maintained cover in near-O(1), with the batch solvers demoted to
cold-build / drift-repair / audit duty.  See ``docs/serving.md``
("Incremental read path") and ``docs/performance.md`` for the
maintenance rules and their paper grounding (Section 5 instant-decision
cache, StreamScan locality).
"""

from .registry import ViewKey, ViewRegistry
from .store import DocumentProjector, PostStore
from .view import CoverView, ViewLedger

__all__ = [
    "CoverView",
    "DocumentProjector",
    "PostStore",
    "ViewKey",
    "ViewLedger",
    "ViewRegistry",
]
