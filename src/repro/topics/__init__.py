"""Synthetic topic model and user profiles.

Stands in for the paper's query-generation pipeline (Section 7.1): LDA via
Mallet over ~1M news articles -> 300 topics -> manual grouping into 10
broad topics, discarding ambiguous ones (215 survive) -> label sets drawn
as ``|L|`` topics within one randomly chosen broad topic.

* :mod:`~repro.topics.lda_sim` — Dirichlet-sampled topics over the broad
  word pools of :mod:`repro.text.vocab`; reproduces the *structure* the
  real pipeline yields (top-40 weighted keywords, heavy intra-broad-topic
  keyword overlap, near-zero cross-broad overlap);
* :mod:`~repro.topics.profiles` — broad-topic grouping, ambiguity
  filtering, and label-set (user profile) sampling.
"""

from .lda_sim import SyntheticTopicModel
from .profiles import discard_ambiguous, make_label_set, make_label_sets

__all__ = [
    "SyntheticTopicModel",
    "discard_ambiguous",
    "make_label_set",
    "make_label_sets",
]
