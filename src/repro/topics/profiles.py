"""User profiles (label sets) over a topic model.

Reproduces Section 7.1's protocol: "to generate a label set L, we first
randomly pick a broad topic and then randomly pick |L| topics within the
broad topic", preceded by the ambiguity filter that trims 300 trained
topics down to 215.
"""

from __future__ import annotations

import random
from typing import List

from ..index.query import TopicQuery
from .lda_sim import SyntheticTopicModel

__all__ = ["discard_ambiguous", "make_label_set", "make_label_sets"]


def discard_ambiguous(
    rng: random.Random,
    model: SyntheticTopicModel,
    keep: int = 215,
) -> SyntheticTopicModel:
    """Drop topics a human rater would call ambiguous.

    The paper's three raters kept 215 of 300 topics.  We model ambiguity as
    topical diffuseness: topics whose keyword weight mass is least
    concentrated (flattest head) are the ones discarded, with the rng
    breaking near-ties — a deterministic, explainable stand-in for human
    judgement.
    """
    if keep >= len(model.topics):
        return model

    def head_mass(topic: TopicQuery) -> float:
        if not topic.weights:
            return 0.0
        ranked = sorted((w for _, w in topic.weights), reverse=True)
        return sum(ranked[:10])

    jittered = sorted(
        model.topics,
        key=lambda t: (-(head_mass(t) + rng.uniform(0, 0.02)), t.label),
    )
    kept = sorted(jittered[:keep], key=lambda t: t.label)
    broad_of = {t.label: model.broad_of[t.label] for t in kept}
    return SyntheticTopicModel(topics=tuple(kept), broad_of=broad_of)


def make_label_set(
    rng: random.Random, model: SyntheticTopicModel, size: int
) -> List[TopicQuery]:
    """One user profile: ``size`` topics from one random broad topic."""
    groups = model.by_broad()
    eligible = [broad for broad, topics in groups.items()
                if len(topics) >= size]
    if not eligible:
        raise ValueError(
            f"no broad topic has {size} topics (max is "
            f"{max(len(t) for t in groups.values())})"
        )
    broad = rng.choice(sorted(eligible))
    return rng.sample(groups[broad], size)


def make_label_sets(
    rng: random.Random,
    model: SyntheticTopicModel,
    size: int,
    count: int = 100,
) -> List[List[TopicQuery]]:
    """``count`` independent profiles of ``size`` topics each.

    The paper evaluates over 100 label sets per ``|L|``; experiments with a
    smaller budget pass a smaller ``count``.
    """
    return [make_label_set(rng, model, size) for _ in range(count)]
