"""A synthetic stand-in for the paper's Mallet LDA topic training.

The real pipeline trains 300 LDA topics on a million news articles and
keeps the top-40 weighted keywords per topic.  Without that corpus we
sample topics *as if* they came from LDA:

* each topic belongs to one broad topic and draws its keywords from that
  broad topic's vocabulary (plus a pinch of cross-pool leakage, as real
  LDA topics exhibit);
* keyword weights are a Dirichlet draw, sorted descending — the same shape
  as an LDA topic-word distribution restricted to its head.

A broad topic's vocabulary has two strata, mirroring real news vocabulary:
~60 curated *base* words (hot terms shared across that beat's topics) and
a few hundred derived *compound* tokens — hashtag-style pairings of base
words ("tigergolf", "senatevote") — that act as each topic's distinctive
tail.  Each topic keeps 40 keywords, mostly compounds with a handful of
base words, so same-broad topics overlap on the hot words (a post can
match several of one user's queries — the paper's multi-label overlap)
while still being distinguishable (matching volume grows near-linearly
with ``|L|``, as in Table 2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..index.query import TopicQuery
from ..text.vocab import BROAD_TOPICS, broad_topic_names

__all__ = ["SyntheticTopicModel"]


@dataclass(frozen=True)
class SyntheticTopicModel:
    """A trained (synthesised) topic model.

    Attributes
    ----------
    topics:
        Every topic, as a :class:`~repro.index.query.TopicQuery` whose
        ``weights`` carry the sampled keyword distribution.
    broad_of:
        Topic label -> broad topic name.
    """

    topics: Tuple[TopicQuery, ...]
    broad_of: Dict[str, str]

    @classmethod
    def train(
        cls,
        rng: random.Random,
        topics_per_broad: int = 30,
        keywords_per_topic: int = 40,
        base_keywords: int = 1,
        leakage: float = 0.005,
        concentration: float = 0.3,
    ) -> "SyntheticTopicModel":
        """Sample a model (default 10 x 30 = 300 topics, as in the paper).

        Parameters
        ----------
        rng:
            Seeded random source — training is fully reproducible.
        topics_per_broad:
            Topics sampled per broad topic.
        keywords_per_topic:
            Keywords kept per topic (the paper keeps the top 40).
        base_keywords:
            How many of those come from the shared base pool; the rest are
            compound tokens, mostly unique to the topic.  This knob sets
            the intra-broad-topic match overlap.
        leakage:
            Probability that a keyword slot is filled from a *different*
            broad pool, modelling LDA's imperfect separation.
        concentration:
            Dirichlet concentration for keyword weights; small values give
            the heavy-headed distributions LDA produces.
        """
        names = broad_topic_names()
        compound_pools = {
            broad: _compound_pool(BROAD_TOPICS[broad])
            for broad in names
        }
        topics: List[TopicQuery] = []
        broad_of: Dict[str, str] = {}
        for broad in names:
            pool = list(BROAD_TOPICS[broad])
            compounds = compound_pools[broad]
            other_pools = [
                word
                for name in names
                if name != broad
                for word in BROAD_TOPICS[name]
            ]
            for k in range(topics_per_broad):
                base_count = min(base_keywords, len(pool))
                tail_count = min(
                    keywords_per_topic - base_count, len(compounds)
                )
                chosen = rng.sample(pool, base_count)
                chosen += rng.sample(compounds, tail_count)
                for slot in range(len(chosen)):
                    if rng.random() < leakage:
                        chosen[slot] = rng.choice(other_pools)
                chosen = list(dict.fromkeys(chosen))  # dedupe, keep order
                weights = _dirichlet(rng, len(chosen), concentration)
                ranked = sorted(
                    zip(chosen, weights), key=lambda kw: -kw[1]
                )
                label = f"{broad}-{k:02d}"
                topics.append(
                    TopicQuery(
                        label=label,
                        keywords=frozenset(chosen),
                        weights=tuple(ranked),
                    )
                )
                broad_of[label] = broad
        return cls(topics=tuple(topics), broad_of=broad_of)

    def by_broad(self) -> Dict[str, List[TopicQuery]]:
        """Topics grouped by broad topic."""
        groups: Dict[str, List[TopicQuery]] = {}
        for topic in self.topics:
            groups.setdefault(self.broad_of[topic.label], []).append(topic)
        return groups

    def topic(self, label: str) -> TopicQuery:
        """Look a topic up by label."""
        for candidate in self.topics:
            if candidate.label == label:
                return candidate
        raise KeyError(label)

    def subset(self, labels: Sequence[str]) -> List[TopicQuery]:
        """The topics for an ordered list of labels."""
        wanted = {label: None for label in labels}
        found = {t.label: t for t in self.topics if t.label in wanted}
        missing = [label for label in labels if label not in found]
        if missing:
            raise KeyError(f"unknown topic labels: {missing}")
        return [found[label] for label in labels]


def _compound_pool(words: Sequence[str]) -> List[str]:
    """Hashtag-style compound tokens derived from a base pool.

    Pairs nearby base words ("tiger" + "golf" -> "tigergolf"), giving each
    broad topic a few hundred distinctive tail tokens without hand-curating
    thousands of words.  Deterministic, so training stays reproducible.
    """
    compounds: List[str] = []
    n = len(words)
    for i in range(n):
        for j in range(i + 1, n):
            compounds.append(words[i] + words[j])
    return compounds


def _dirichlet(
    rng: random.Random, size: int, concentration: float
) -> List[float]:
    """A symmetric Dirichlet draw via normalised Gamma variates."""
    draws = [rng.gammavariate(concentration, 1.0) for _ in range(size)]
    total = sum(draws) or 1.0
    return [d / total for d in draws]
