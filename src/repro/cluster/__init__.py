"""repro.cluster — sharded multi-node serving for the digest tier.

The cluster partitions the *label space* with consistent hashing:
each :class:`~repro.cluster.worker.WorkerNode` wraps one ordinary
:class:`~repro.service.DiversificationService` holding the documents
for its labels, and the :class:`~repro.cluster.router.ClusterRouter`
scatter-gathers multi-label digests and stitches the partial covers
back together — byte-identical to a single process when no post spans
shards, verifier-backed always.  See ``docs/cluster.md``.
"""

from .frames import (
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    MAX_FRAME,
    TruncatedFrameError,
    encode_frame,
    read_frame,
)
from .harness import LocalCluster
from .hashring import HashRing
from .membership import DOWN, Membership, NodeState, UP
from .protocol import (
    ClusterError,
    NodeUnavailableError,
    ShardTimeoutError,
    WorkerFaultError,
    canonical_fingerprint,
    document_from_dict,
    document_to_dict,
)
from .router import ClusterConfig, ClusterResponse, ClusterRouter, \
    NodeClient
from .worker import WorkerNode, default_worker_config

__all__ = [
    "ClusterConfig",
    "ClusterError",
    "ClusterResponse",
    "ClusterRouter",
    "DOWN",
    "FrameDecoder",
    "FrameError",
    "FrameTooLargeError",
    "HashRing",
    "LocalCluster",
    "MAX_FRAME",
    "Membership",
    "NodeClient",
    "NodeState",
    "NodeUnavailableError",
    "ShardTimeoutError",
    "TruncatedFrameError",
    "UP",
    "WorkerFaultError",
    "WorkerNode",
    "canonical_fingerprint",
    "default_worker_config",
    "document_from_dict",
    "document_to_dict",
    "encode_frame",
    "read_frame",
]
