"""Consistent hashing for the label space.

The cluster partitions the corpus *by label*: every topic label hashes
onto a ring, every node contributes ``virtual_nodes`` points, and a
label belongs to the first node clockwise from its hash.  Virtual nodes
smooth the partition (a physical node's share concentrates around
``1/N`` instead of the high-variance single-point split), and make
rebalancing on join/leave proportional: only the labels between the new
node's points and their predecessors move.

Placement is fully deterministic — SHA-1 of ``"{node}#{replica}"`` and
of the label itself, no process-seeded randomness — so tests (and
operators) can compute ownership offline, and every router instance
over the same node set derives the same placement.

:meth:`HashRing.owners` walks clockwise collecting *distinct* nodes,
which is the N-way replication rule: the first owner is the primary,
the next ``n - 1`` distinct successors hold replicas.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import Dict, Iterable, List, Tuple

from ..errors import ReproError

__all__ = ["HashRing"]


def _point(key: str) -> int:
    """A stable 64-bit ring position for ``key``."""
    digest = hashlib.sha1(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class HashRing:
    """A consistent-hash ring with virtual nodes."""

    def __init__(
        self,
        nodes: Iterable[str] = (),
        *,
        virtual_nodes: int = 32,
    ):
        if virtual_nodes < 1:
            raise ReproError(
                f"virtual_nodes must be >= 1, got {virtual_nodes}"
            )
        self.virtual_nodes = virtual_nodes
        self._points: List[Tuple[int, str]] = []
        self._nodes: Dict[str, bool] = {}
        for node in nodes:
            self.add(node)

    # -- membership --------------------------------------------------------

    @property
    def nodes(self) -> Tuple[str, ...]:
        return tuple(sorted(self._nodes))

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node: str) -> bool:
        return node in self._nodes

    def add(self, node: str) -> None:
        if node in self._nodes:
            raise ReproError(f"node {node!r} is already on the ring")
        for replica in range(self.virtual_nodes):
            bisect.insort(
                self._points, (_point(f"{node}#{replica}"), node)
            )
        self._nodes[node] = True

    def remove(self, node: str) -> None:
        if node not in self._nodes:
            raise ReproError(f"node {node!r} is not on the ring")
        self._points = [
            entry for entry in self._points if entry[1] != node
        ]
        del self._nodes[node]

    # -- placement ---------------------------------------------------------

    def owner(self, key: str) -> str:
        """The primary owner of ``key``."""
        return self.owners(key, 1)[0]

    def owners(self, key: str, n: int = 1) -> List[str]:
        """The first ``n`` *distinct* nodes clockwise from ``key``.

        Fewer than ``n`` come back when the ring holds fewer nodes —
        replication degrades gracefully on small clusters.
        """
        if not self._points:
            raise ReproError("the hash ring has no nodes")
        if n < 1:
            raise ReproError(f"owners() needs n >= 1, got {n}")
        start = bisect.bisect_right(self._points, (_point(key), ""))
        found: List[str] = []
        for offset in range(len(self._points)):
            node = self._points[(start + offset) % len(self._points)][1]
            if node not in found:
                found.append(node)
                if len(found) == n:
                    break
        return found

    def ownership(
        self, keys: Iterable[str], n: int = 1
    ) -> Dict[str, List[str]]:
        """``node -> sorted keys`` it owns (primary or replica) among
        ``keys`` — the ring summary health endpoints expose."""
        owned: Dict[str, List[str]] = {node: [] for node in self._nodes}
        for key in sorted(set(keys)):
            for node in self.owners(key, n):
                owned[node].append(key)
        return owned

    def moved_keys(
        self, keys: Iterable[str], other: "HashRing", n: int = 1
    ) -> Dict[str, List[str]]:
        """Keys whose owner set changes between ``self`` and ``other``:
        ``node -> keys`` that node *gains* under ``other``.  This is the
        rebalance work list for a join/leave."""
        gained: Dict[str, List[str]] = {}
        for key in sorted(set(keys)):
            before = set(self.owners(key, n)) if len(self) else set()
            for node in other.owners(key, n):
                if node not in before:
                    gained.setdefault(node, []).append(key)
        return gained
