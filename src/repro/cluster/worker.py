"""A cluster worker: one :class:`DiversificationService` behind frames.

Each worker owns a consistent-hash partition of the label space (the
router decides placement; the worker just serves what it is sent) and
speaks the length-prefixed JSON frame protocol over an asyncio stream
server.  Requests on one connection are handled *concurrently* — a slow
digest never blocks a heartbeat — and responses are correlated back by
``rid``, not by order.

The wrapped service is a completely ordinary single-process service:
the worker's corpus is exactly the documents the router forwarded to it
(those matching its owned/replicated labels), and digests over label
subsets of that partition are byte-identical to what a single-process
service would answer for the same labels — the parity the router's
merge step builds on.  Dedup must be off (``dedup_distance=None``):
SimHash kept-sets are computed over the *whole* corpus in arrival order
and cannot be reproduced on per-node partial corpora.

**Durable mode**: constructed with ``wal_dir``, the worker routes
ingest through :meth:`DiversificationService.durable_ingest` — its WAL
and its ``ViewRegistry`` epochs both live on the node that owns the
data, which is the cluster-aware-ingest design: recovery is local, no
cross-node replay coordination.

**Trace propagation**: a request frame carrying a ``trace`` context and
the ``spans`` flag gets a per-request private tracer; the worker's
spans come back in the response frame and the router grafts them into
its own trace via the existing ``Tracer.adopt`` path.
"""

from __future__ import annotations

import asyncio
import logging
import time as _time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ReproError
from ..index.inverted_index import Document
from ..index.query import TopicQuery
from ..observability import facade as _obs
from ..observability import structlog
from ..observability.profiling import MAX_CAPTURE_SECONDS, Profiler
from ..observability.tracing import TraceContext, Tracer
from ..service import DigestRequest, DiversificationService, \
    ServiceConfig
from .frames import FrameError, MAX_FRAME, encode_frame, read_frame
from .protocol import (
    ClusterError,
    OP_DIGEST,
    OP_EXPORT,
    OP_HEALTH,
    OP_HEARTBEAT,
    OP_INGEST,
    OP_INTROSPECT,
    OP_PROFILE,
    OP_SCRAPE,
    OP_SET_WINDOW,
    OP_WARM,
    document_from_dict,
    document_to_dict,
    error_frame,
    ok_frame,
)

__all__ = ["WorkerNode", "default_worker_config"]


def default_worker_config(**overrides: Any) -> ServiceConfig:
    """A service config suitable for a cluster worker.

    Dedup is off (partition parity requires it) and views are on; any
    knob can still be overridden.
    """
    overrides.setdefault("dedup_distance", None)
    return ServiceConfig(**overrides)


class WorkerNode:
    """One shard server: frames in, service calls out.

    Parameters
    ----------
    name:
        The node's cluster identity (its position on the hash ring).
    queries:
        The *full* topic universe.  The router decides which labels'
        documents reach this node; knowing every query lets the worker
        serve any label subset its corpus actually holds — including
        replicated labels during failover.
    config:
        Service config; ``dedup_distance`` must be ``None``.
    wal_dir:
        When given, ingest batches run through the durable WAL pipeline
        rooted there (local exactly-once, local recovery).
    """

    def __init__(
        self,
        name: str,
        queries: Sequence[TopicQuery],
        config: Optional[ServiceConfig] = None,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        max_frame: int = MAX_FRAME,
        wal_dir: Optional[Any] = None,
        ingest_config: Optional[Any] = None,
    ):
        self.name = name
        self.host = host
        self.port = port
        self.max_frame = max_frame
        config = config if config is not None \
            else default_worker_config()
        if config.dedup_distance is not None:
            raise ClusterError(
                "cluster workers require dedup_distance=None: SimHash "
                "kept-sets depend on the full corpus in arrival order "
                "and cannot be reproduced on a label partition"
            )
        self.service = DiversificationService(queries, config)
        self.service.cluster_info = self._cluster_info
        # Every document this node holds, by id — the idempotency gate
        # for rebalance handoffs (the same doc may arrive again when a
        # label moves or a replica resyncs) and the export source.
        self._documents: Dict[int, Document] = {}
        # Last piggybacked cluster picture (membership + ring summary).
        self._peers: Dict[str, Any] = {}
        self._owned_labels: Tuple[str, ...] = ()
        self._server: Optional[asyncio.AbstractServer] = None
        self._connections: set = set()
        self.address: Optional[Tuple[str, int]] = None
        self._inflight = 0
        self.requests_served = 0
        self.heartbeats_seen = 0
        self.frames_rejected = 0
        self.ingest_skipped = 0
        self._ingest_pipeline = None
        self._wal_dir = wal_dir
        if wal_dir is not None:
            self._ingest_pipeline = self.service.durable_ingest(
                wal_dir, ingest_config
            )
            # crash-recovery path: restore committed state, replay the
            # tail, then flush the resequencer window — the node must
            # serve its full corpus the moment it is back
            self._ingest_pipeline.recover()
            self._ingest_pipeline.drain()
            self._ingest_pipeline.flush()
            for document in self.service.corpus():
                self._documents[document.doc_id] = document

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and serve; returns the bound ``(host, port)``.

        Always request port 0 in tests and read this back — the worker
        itself never assumes a port.
        """
        if self._server is not None:
            raise ClusterError(f"worker {self.name!r} already started")
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        sockname = self._server.sockets[0].getsockname()
        self.address = (sockname[0], sockname[1])
        structlog.emit(
            "cluster.worker_started", node=self.name,
            host=self.address[0], port=self.address[1],
        )
        return self.address

    async def stop(self) -> None:
        """Stop serving (existing in-flight requests are abandoned —
        from the router's side this is indistinguishable from a crash,
        which is exactly what the failover tests exploit)."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # sever established connections too — closing only the listener
        # would leave connected clients being served by a "dead" node
        for writer in list(self._connections):
            writer.close()
        # let the severed handlers unwind before the caller's loop can
        # go away — an abandoned handler would be cancelled at loop
        # shutdown and logged by the asyncio streams machinery
        for _ in range(20):
            if not self._connections:
                break
            await asyncio.sleep(0)
        self._connections.clear()
        self.service.close()
        if self._ingest_pipeline is not None:
            self._ingest_pipeline.close()

    @property
    def running(self) -> bool:
        return self._server is not None

    @property
    def durable(self) -> bool:
        return self._ingest_pipeline is not None

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        write_lock = asyncio.Lock()
        tasks: set = set()
        self._connections.add(writer)
        try:
            while True:
                try:
                    frame = await read_frame(reader, self.max_frame)
                except FrameError as error:
                    # oversized or truncated: the stream cannot be
                    # resynchronised — reject and drop the connection
                    # instead of hanging on a partial read
                    self.frames_rejected += 1
                    _obs.count("cluster.worker.frames_rejected")
                    structlog.emit(
                        "cluster.frame_rejected",
                        level=logging.WARNING,
                        node=self.name, reason=repr(error),
                    )
                    break
                if frame is None:
                    break
                task = asyncio.ensure_future(
                    self._serve_frame(frame, writer, write_lock)
                )
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        finally:
            self._connections.discard(writer)
            for task in tasks:
                task.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    async def _serve_frame(
        self,
        frame: Dict[str, Any],
        writer: asyncio.StreamWriter,
        write_lock: asyncio.Lock,
    ) -> None:
        rid = frame.get("rid", -1)
        op = frame.get("op", "")
        payload = frame.get("payload") or {}
        trace = frame.get("trace")
        want_spans = bool(frame.get("spans"))
        self._inflight += 1
        self.requests_served += 1
        spans: Optional[List[dict]] = None
        try:
            if trace is not None and want_spans:
                # a per-request private tracer: its spans ship back in
                # the response and the router adopts them — identical
                # in-process and across real process boundaries
                tracer = Tracer(clock=_time.perf_counter)
                context = TraceContext.from_dict(trace)
                with tracer.activate(context):
                    with tracer.span(
                        f"cluster.worker.{op}", node=self.name,
                    ) as worker_span:
                        result = await self._dispatch(op, payload)
                if op == OP_DIGEST:
                    # link the worker span to the service-side trace:
                    # the router's assembled tree follows it, so the
                    # persisted cross-node tree reaches down to the
                    # worker's service.solve spans
                    linked = (
                        (result.get("response") or {}).get("trace_id")
                    )
                    if linked:
                        worker_span.set_attribute(
                            "link_trace_id", linked
                        )
                spans = tracer.as_dicts()
                # the worker root's parent is the *router's* span id —
                # an id from a different allocator that can collide
                # with this tracer's own ids.  Null it out: the router
                # re-parents foreign roots onto its span on adoption.
                for entry in spans:
                    if entry["span_id"] == worker_span.span_id:
                        entry["parent_id"] = None
            else:
                result = await self._dispatch(op, payload)
            response = ok_frame(rid, result, spans=spans)
        except Exception as error:  # remote faults become error frames
            _obs.count("cluster.worker.errors")
            response = error_frame(rid, repr(error))
        finally:
            self._inflight -= 1
        try:
            body = encode_frame(response, self.max_frame)
        except FrameError as error:
            body = encode_frame(
                error_frame(rid, repr(error)), self.max_frame
            )
        async with write_lock:
            writer.write(body)
            try:
                await writer.drain()
            except (ConnectionError, OSError):  # peer went away
                pass

    # -- op dispatch -------------------------------------------------------

    async def _dispatch(
        self, op: str, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        if op == OP_DIGEST:
            return await self._op_digest(payload)
        if op == OP_INGEST:
            return self._op_ingest(payload)
        if op == OP_HEARTBEAT:
            return self._op_heartbeat(payload)
        if op == OP_EXPORT:
            return self._op_export(payload)
        if op == OP_WARM:
            return await self._op_warm(payload)
        if op == OP_SET_WINDOW:
            return self._op_set_window(payload)
        if op == OP_SCRAPE:
            return self._op_scrape(payload)
        if op == OP_PROFILE:
            return await self._op_profile(payload)
        if op == OP_HEALTH:
            return self.service.health()
        if op == OP_INTROSPECT:
            return self.service.introspect()
        raise ClusterError(f"unknown op {op!r}")

    async def _op_digest(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        request = DigestRequest.from_dict(payload["request"])
        response = await self.service.digest(request)
        return {"response": response.to_dict()}

    def _op_ingest(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        documents = [
            document_from_dict(entry)
            for entry in payload.get("documents", ())
        ]
        fresh: List[Document] = []
        skipped = 0
        for document in documents:
            if document.doc_id in self._documents:
                skipped += 1  # handoff overlap / replica resync
                continue
            self._documents[document.doc_id] = document
            fresh.append(document)
        self.ingest_skipped += skipped
        if fresh:
            if self._ingest_pipeline is not None:
                for document in fresh:
                    self._ingest_pipeline.append(document)
                self._ingest_pipeline.drain()
                # quiesce the resequencer window: the response's epoch
                # and corpus count must reflect the whole batch
                self._ingest_pipeline.flush()
            else:
                self.service.ingest(fresh)
        return {
            "node": self.name,
            "epoch": self.service.epoch,
            "accepted": len(fresh),
            "skipped": skipped,
            "corpus": self.service.corpus_size(),
            "durable": self.durable,
        }

    def _op_heartbeat(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        self.heartbeats_seen += 1
        membership = payload.get("membership")
        if membership is not None:
            self._peers = membership
        ring = payload.get("ring") or {}
        self._owned_labels = tuple(ring.get(self.name, ()))
        return {
            "node": self.name,
            "status": "alive",
            "epoch": self.service.epoch,
            "corpus": self.service.corpus_size(),
            "inflight": self._inflight,
        }

    def _op_export(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The rebalance source: this node's documents matching any of
        the requested labels, each exported once."""
        labels = set(payload.get("labels", ()))
        matcher = self.service._matcher
        out = []
        for doc_id in sorted(self._documents):
            document = self._documents[doc_id]
            if matcher.match(document.text) & labels:
                out.append(document_to_dict(document))
        return {"node": self.name, "documents": out}

    async def _op_warm(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """Re-seed cover views after a rebalance: run the router's hot
        digest keys so the new owner's cache and views are populated
        before it takes reads."""
        warmed = 0
        for entry in payload.get("requests", ()):
            request = DigestRequest.from_dict(entry)
            response = await self.service.digest(request)
            if response.status in ("ok", "degraded"):
                warmed += 1
        return {"node": self.name, "warmed": warmed}

    def _op_scrape(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """The federation pull: this node's telemetry as a versioned
        delta against the collector's cursor (see
        :meth:`DiversificationService.scrape`)."""
        cursor = payload.get("cursor")
        out = self.service.scrape(
            None if cursor is None else int(cursor)
        )
        out["node"] = self.name
        # exclude this scrape request from the inflight count
        out["service"]["inflight"] = self._inflight - 1
        return out

    async def _op_profile(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        """On-demand continuous-profiling capture: sample this node's
        threads for a bounded number of seconds and return collapsed
        stacks plus the speedscope document.  The worker keeps serving
        while the sampler runs — that is the point."""
        seconds = min(
            float(payload.get("seconds", 1.0)), MAX_CAPTURE_SECONDS
        )
        if seconds <= 0:
            raise ClusterError(
                f"profile capture needs seconds > 0, got {seconds}"
            )
        hz = int(payload.get("hz", 100))
        profiler = Profiler(hz=hz)
        profiler.start()
        try:
            await asyncio.sleep(seconds)
        finally:
            profiler.stop()
        return {
            "node": self.name,
            "seconds": seconds,
            "hz": profiler.hz,
            "samples": profiler.sample_count,
            "overflowed": profiler.overflowed,
            "collapsed": profiler.collapsed(),
            "speedscope": profiler.speedscope(
                name=f"{self.name} profile"
            ),
        }

    def _op_set_window(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        labels = tuple(payload["labels"])
        window = payload.get("window")
        self.service.set_view_window(
            labels, None if window is None else float(window)
        )
        return {"node": self.name, "labels": sorted(labels),
                "window": window}

    # -- the service's cluster section (health/introspect) -----------------

    def _cluster_info(self) -> Dict[str, Any]:
        return {
            "role": "worker",
            "node": self.name,
            "address": None if self.address is None
            else list(self.address),
            "owned_labels": sorted(self._owned_labels),
            "peers": self._peers,
            "inflight": self._inflight,
            "requests_served": self.requests_served,
            "heartbeats_seen": self.heartbeats_seen,
            "frames_rejected": self.frames_rejected,
            "ingest_skipped": self.ingest_skipped,
            "documents": len(self._documents),
            "durable": self.durable,
        }
