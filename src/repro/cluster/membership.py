"""Heartbeat-based membership and failure detection.

The router is the membership authority: it heartbeats every registered
worker on an interval, counts consecutive misses, and flips a node to
``down`` after ``max_missed`` of them.  Request-path failures feed the
same counters — a node that times out under load is detected without
waiting for the next heartbeat tick.  A later successful heartbeat (or
request) flips the node back ``up``, which is the rejoin signal the
router uses to trigger a resync.

Every heartbeat *piggybacks* the full membership snapshot and the ring
ownership summary onto the probe, so each worker holds a recent picture
of its peers — ``health()`` on any node shows cluster state, which is
the operator's satellite requirement.

The clock is injectable; tests drive :class:`Membership` with a fake
clock and explicit probe calls, so failure detection is deterministic
rather than sleep-based.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from ..errors import ReproError

__all__ = ["Membership", "NodeState", "UP", "DOWN"]

UP = "up"
DOWN = "down"


@dataclass
class NodeState:
    """One worker as the membership table sees it."""

    name: str
    address: Tuple[str, int]
    status: str = UP
    missed: int = 0
    last_seen: Optional[float] = None
    transitions: int = 0

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "address": list(self.address),
            "status": self.status,
            "missed": self.missed,
            "last_seen": self.last_seen,
            "transitions": self.transitions,
        }


class Membership:
    """The router's view of who is alive."""

    def __init__(
        self,
        *,
        max_missed: int = 3,
        clock: Callable[[], float] = _time.monotonic,
    ):
        if max_missed < 1:
            raise ReproError(
                f"max_missed must be >= 1, got {max_missed}"
            )
        self.max_missed = max_missed
        self._clock = clock
        self._nodes: Dict[str, NodeState] = {}
        self.failures_detected = 0
        self.recoveries = 0

    # -- membership changes ------------------------------------------------

    def add(self, name: str, address: Tuple[str, int]) -> NodeState:
        if name in self._nodes:
            raise ReproError(f"node {name!r} is already a member")
        state = NodeState(
            name=name, address=tuple(address),
            last_seen=self._clock(),
        )
        self._nodes[name] = state
        return state

    def remove(self, name: str) -> None:
        if name not in self._nodes:
            raise ReproError(f"node {name!r} is not a member")
        del self._nodes[name]

    # -- probe results -----------------------------------------------------

    def record_success(self, name: str) -> bool:
        """A probe or request succeeded; True when the node *recovered*
        (flipped down -> up), which is the router's resync trigger."""
        state = self._nodes.get(name)
        if state is None:
            return False
        state.missed = 0
        state.last_seen = self._clock()
        if state.status == DOWN:
            state.status = UP
            state.transitions += 1
            self.recoveries += 1
            return True
        return False

    def record_failure(self, name: str) -> bool:
        """A probe or request failed; True when this miss crossed the
        threshold and the node flipped up -> down."""
        state = self._nodes.get(name)
        if state is None:
            return False
        state.missed += 1
        if state.status == UP and state.missed >= self.max_missed:
            state.status = DOWN
            state.transitions += 1
            self.failures_detected += 1
            return True
        return False

    # -- queries -----------------------------------------------------------

    def get(self, name: str) -> Optional[NodeState]:
        return self._nodes.get(name)

    def is_alive(self, name: str) -> bool:
        state = self._nodes.get(name)
        return state is not None and state.status == UP

    def alive(self) -> List[str]:
        return sorted(
            name for name, state in self._nodes.items()
            if state.status == UP
        )

    def members(self) -> List[str]:
        return sorted(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe table — piggybacked on every heartbeat."""
        return {
            "max_missed": self.max_missed,
            "failures_detected": self.failures_detected,
            "recoveries": self.recoveries,
            "nodes": {
                name: state.as_dict()
                for name, state in sorted(self._nodes.items())
            },
        }
