"""Length-prefixed JSON frames: the cluster's wire encoding.

Every message between the router and a worker is one *frame*: a 4-byte
big-endian length header followed by a UTF-8 JSON object.  The format is
deliberately boring — the interesting wire work was already done by the
``to_dict``/``from_dict`` methods on every domain object, and frames
just carry those dicts across an asyncio stream.

Two failure modes matter and both are rejected *before* any unbounded
read, so a hostile or corrupt peer can never hang a reader mid-frame:

* **oversized frames** — a header announcing more than ``max_frame``
  bytes raises :class:`FrameTooLargeError` immediately; the body is
  never read.  (After a length desync there is no way to resynchronise a
  length-prefixed stream, so callers must drop the connection.)
* **truncated frames** — EOF inside a header or body raises
  :class:`TruncatedFrameError`.  A clean EOF *between* frames returns
  ``None``, which is how a peer politely hangs up.

:class:`FrameDecoder` is the synchronous incremental twin of
:func:`read_frame` — same states, same rejections, byte-at-a-time
feedable — used by the wire-format fuzz tests to prove the codec never
accepts a frame the async reader would reject (and vice versa).
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Any, Dict, List, Optional

from ..errors import ReproError

__all__ = [
    "FrameDecoder",
    "FrameError",
    "FrameTooLargeError",
    "MAX_FRAME",
    "TruncatedFrameError",
    "encode_frame",
    "read_frame",
]

# Generous enough for a scatter leg carrying a full day-scale instance,
# small enough that a corrupt header can't trigger a multi-GiB read.
MAX_FRAME = 32 * 1024 * 1024

_HEADER = struct.Struct(">I")


class FrameError(ReproError):
    """A frame violated the wire protocol."""


class FrameTooLargeError(FrameError):
    """A header announced a body larger than the frame limit."""


class TruncatedFrameError(FrameError):
    """The stream ended inside a frame (header or body)."""


def encode_frame(
    payload: Dict[str, Any], max_frame: int = MAX_FRAME
) -> bytes:
    """One JSON object as a length-prefixed frame."""
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    if len(body) > max_frame:
        raise FrameTooLargeError(
            f"frame body is {len(body)} bytes; limit is {max_frame}"
        )
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> Dict[str, Any]:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise FrameError(f"undecodable frame body: {error}") from None
    if not isinstance(payload, dict):
        raise FrameError(
            f"frame payload must be a JSON object, got "
            f"{type(payload).__name__}"
        )
    return payload


async def read_frame(
    reader: "asyncio.StreamReader", max_frame: int = MAX_FRAME
) -> Optional[Dict[str, Any]]:
    """Read one frame; ``None`` on a clean EOF between frames.

    The length is validated before the body read starts, so a reader
    can never be left awaiting an announced-but-absurd byte count.
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None  # clean hangup between frames
        raise TruncatedFrameError(
            f"stream ended {len(error.partial)} bytes into a header"
        ) from None
    (length,) = _HEADER.unpack(header)
    if length > max_frame:
        raise FrameTooLargeError(
            f"peer announced a {length}-byte frame; limit is {max_frame}"
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as error:
        raise TruncatedFrameError(
            f"stream ended {len(error.partial)}/{length} bytes into "
            "a frame body"
        ) from None
    return _decode_body(body)


class FrameDecoder:
    """Incremental synchronous decoder (fuzz-test twin of the reader).

    Feed arbitrary byte chunks; complete frames come back as decoded
    payloads in order.  Oversized headers raise at the moment the header
    completes, exactly like :func:`read_frame`.  :meth:`close` asserts
    the stream ended on a frame boundary.
    """

    def __init__(self, max_frame: int = MAX_FRAME):
        self.max_frame = max_frame
        self._buffer = bytearray()
        self.frames = 0

    def feed(self, data: bytes) -> List[Dict[str, Any]]:
        self._buffer.extend(data)
        out: List[Dict[str, Any]] = []
        while True:
            if len(self._buffer) < _HEADER.size:
                return out
            (length,) = _HEADER.unpack_from(self._buffer)
            if length > self.max_frame:
                raise FrameTooLargeError(
                    f"peer announced a {length}-byte frame; limit is "
                    f"{self.max_frame}"
                )
            if len(self._buffer) < _HEADER.size + length:
                return out
            body = bytes(self._buffer[_HEADER.size:_HEADER.size + length])
            del self._buffer[:_HEADER.size + length]
            out.append(_decode_body(body))
            self.frames += 1

    def close(self) -> None:
        """Assert a clean end-of-stream (no partial frame buffered)."""
        if self._buffer:
            raise TruncatedFrameError(
                f"stream ended with {len(self._buffer)} buffered bytes "
                "of an incomplete frame"
            )
