"""The asyncio scatter-gather router: the cluster's front end.

One :class:`ClusterRouter` owns the hash ring, the membership table and
one multiplexed connection per worker.  A digest request resolves its
labels, groups them by live owner, and either

* **forwards whole** — every requested label lives on one node — or
* **scatter-gathers** — each owner group solves its label block, and
  the router merges the partial covers.

**Why the merge is exact.**  λ-coverage decomposes by label: post ``p``
with label ``ℓ`` is covered iff some selected post carries ``ℓ`` within
λ.  Partitioning labels across nodes therefore splits the set-cover
instance into blocks, and when no post spans blocks (no *seam* posts),
the blocks are fully independent — the same argument
:mod:`repro.engine.sharding` proves for gap cuts: GreedySC's global
pick set restricted to a block equals the block-local pick set (picks
in one block never change gains in another), and Scan/Scan+ decisions
read only the post's own labels' coverage state.  So the union of the
shard picks *is* the single-process solution.  Seam posts (labels on
two nodes) break independence; the router detects them on merge — a
uid in more than one sub-instance — and in ``stitch_mode="exact"``
re-solves the merged instance locally (byte-identical by construction,
the label analogue of the engine's halo fallback).  In
``stitch_mode="stitch"`` it instead repairs the union with
:func:`repro.engine.sharding.stitch_repair` — bounded extra picks,
verifier-guaranteed valid.  Either way the merged cover passes through
the verifier before it is served; an invalid stitched cover cannot
escape.

**Failure semantics**: per-shard deadlines, hedged retries to replicas
after ``hedge_delay``, request-path failures feeding the same detector
as heartbeats.  A label whose owners are all down degrades the
response explicitly (``missing_labels``) rather than failing it —
partial answers with honest labels beat outages.
"""

from __future__ import annotations

import asyncio
import contextlib
import logging
import time as _time
from collections import OrderedDict
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, \
    Optional, Sequence, Set, Tuple

from ..core.instance import Instance
from ..core.post import Post
from ..core.registry import solve
from ..core.solution import Solution
from ..engine.sharding import stitch_repair
from ..errors import ReproError
from ..index.inverted_index import Document
from ..index.query import LabelMatcher, TopicQuery
from ..observability import facade as _obs
from ..observability import structlog
from ..observability.collector import Collector
from ..observability.traces import TracePipeline, head_sample
from ..observability.tracing import TraceContext
from ..pipeline import DigestResult
from ..service import DigestRequest, ServiceResponse
from .frames import MAX_FRAME, encode_frame, read_frame
from .hashring import HashRing
from .membership import Membership
from .protocol import (
    ClusterError,
    NodeUnavailableError,
    OP_DIGEST,
    OP_EXPORT,
    OP_HEALTH,
    OP_HEARTBEAT,
    OP_INGEST,
    OP_INTROSPECT,
    OP_PROFILE,
    OP_SCRAPE,
    OP_SET_WINDOW,
    OP_WARM,
    ShardTimeoutError,
    WorkerFaultError,
    document_to_dict,
    request_frame,
)

__all__ = ["ClusterConfig", "ClusterResponse", "ClusterRouter",
           "NodeClient"]

OK = "ok"
DEGRADED = "degraded"
ERROR = "error"


class _NoSpan:
    """Inert span stand-in for unsampled requests."""

    __slots__ = ()

    def set_attribute(self, key: str, value: Any) -> None:
        pass


_NO_SPAN = _NoSpan()


@dataclass(frozen=True)
class ClusterConfig:
    """Tuning knobs for one :class:`ClusterRouter`."""

    # placement
    replication: int = 1
    virtual_nodes: int = 32
    # scatter behaviour
    request_timeout: float = 5.0
    hedge_delay: float = 0.25
    stitch_mode: str = "exact"  # "exact" re-solves seams; "stitch" repairs
    # membership
    heartbeat_interval: float = 1.0
    heartbeat_timeout: float = 1.0
    max_missed: int = 3
    # wire
    max_frame: int = MAX_FRAME
    # rebalance warm-up: how many hot digest keys the router remembers
    warm_keys: int = 128
    clock: Callable[[], float] = _time.perf_counter

    def __post_init__(self) -> None:
        if self.replication < 1:
            raise ClusterError(
                f"replication must be >= 1, got {self.replication}"
            )
        if self.stitch_mode not in ("exact", "stitch"):
            raise ClusterError(
                "stitch_mode must be 'exact' or 'stitch', got "
                f"{self.stitch_mode!r}"
            )
        if self.request_timeout <= 0 or self.hedge_delay < 0:
            raise ClusterError(
                "request_timeout must be > 0 and hedge_delay >= 0"
            )


@dataclass(frozen=True)
class ClusterResponse:
    """Outcome of one routed digest.

    ``status`` mirrors the service tier (``ok`` / ``degraded`` /
    ``error``); ``missing_labels`` names label blocks no live shard
    could serve; ``stitched``/``stitch_repairs``/``resolves`` describe
    how the partial covers were merged.
    """

    status: str
    result: Optional[DigestResult]
    algorithm: str
    latency_s: float = 0.0
    trace_id: str = ""
    shards: Tuple[str, ...] = ()
    missing_labels: Tuple[str, ...] = ()
    seam_posts: int = 0
    stitched: bool = False
    stitch_repairs: int = 0
    resolves: int = 0
    hedges: int = 0
    reason: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return {
            "status": self.status,
            "result": None if self.result is None
            else self.result.to_dict(),
            "algorithm": self.algorithm,
            "latency_s": self.latency_s,
            "trace_id": self.trace_id,
            "shards": list(self.shards),
            "missing_labels": list(self.missing_labels),
            "seam_posts": self.seam_posts,
            "stitched": self.stitched,
            "stitch_repairs": self.stitch_repairs,
            "resolves": self.resolves,
            "hedges": self.hedges,
            "reason": self.reason,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ClusterResponse":
        result = payload.get("result")
        return cls(
            status=str(payload["status"]),
            result=None if result is None
            else DigestResult.from_dict(result),
            algorithm=str(payload.get("algorithm", "")),
            latency_s=float(payload.get("latency_s", 0.0)),
            trace_id=str(payload.get("trace_id", "")),
            shards=tuple(payload.get("shards", ())),
            missing_labels=tuple(payload.get("missing_labels", ())),
            seam_posts=int(payload.get("seam_posts", 0)),
            stitched=bool(payload.get("stitched", False)),
            stitch_repairs=int(payload.get("stitch_repairs", 0)),
            resolves=int(payload.get("resolves", 0)),
            hedges=int(payload.get("hedges", 0)),
            reason=str(payload.get("reason", "")),
        )


class NodeClient:
    """One multiplexed frame connection to a worker.

    Requests carry a per-connection ``rid``; a single reader task
    resolves pending futures as responses arrive in any order.  A dead
    connection fails every pending call with
    :class:`NodeUnavailableError` and the next call reconnects.
    """

    def __init__(
        self,
        name: str,
        address: Tuple[str, int],
        *,
        max_frame: int = MAX_FRAME,
    ):
        self.name = name
        self.address = tuple(address)
        self.max_frame = max_frame
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._reader_task: Optional["asyncio.Task"] = None
        self._pending: Dict[int, "asyncio.Future"] = {}
        self._next_rid = 1
        self._connect_lock: Optional[asyncio.Lock] = None
        self.calls = 0
        self.failures = 0

    async def _ensure_connected(self) -> None:
        if self._connect_lock is None:
            self._connect_lock = asyncio.Lock()
        async with self._connect_lock:
            if self._writer is not None and \
                    not self._writer.is_closing():
                return
            try:
                reader, writer = await asyncio.open_connection(
                    self.address[0], self.address[1]
                )
            except (ConnectionError, OSError) as error:
                raise NodeUnavailableError(
                    f"cannot connect to {self.name} at "
                    f"{self.address}: {error}"
                ) from None
            self._reader, self._writer = reader, writer
            self._reader_task = asyncio.ensure_future(self._read_loop())

    async def _read_loop(self) -> None:
        reader = self._reader
        try:
            while reader is not None:
                frame = await read_frame(reader, self.max_frame)
                if frame is None:
                    break
                future = self._pending.pop(frame.get("rid"), None)
                if future is not None and not future.done():
                    future.set_result(frame)
        except Exception:  # frame error / connection reset
            pass
        self._fail_pending()

    def _fail_pending(self) -> None:
        self._writer = None
        self._reader = None
        pending, self._pending = self._pending, {}
        for future in pending.values():
            if not future.done():
                future.set_exception(NodeUnavailableError(
                    f"connection to {self.name} died mid-request"
                ))

    async def call(
        self,
        op: str,
        payload: Dict[str, Any],
        *,
        trace: Optional[Mapping[str, Any]] = None,
        want_spans: bool = False,
        timeout: Optional[float] = None,
    ) -> Dict[str, Any]:
        """One request/response round trip; returns the response frame."""
        await self._ensure_connected()
        assert self._writer is not None
        rid = self._next_rid
        self._next_rid += 1
        future: "asyncio.Future" = \
            asyncio.get_running_loop().create_future()
        self._pending[rid] = future
        frame = request_frame(
            op, rid, payload, trace=trace, want_spans=want_spans
        )
        self.calls += 1
        try:
            self._writer.write(encode_frame(frame, self.max_frame))
            await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(rid, None)
            self._fail_pending()
            self.failures += 1
            raise NodeUnavailableError(
                f"write to {self.name} failed: {error}"
            ) from None
        try:
            if timeout is not None:
                response = await asyncio.wait_for(future, timeout)
            else:
                response = await future
        except asyncio.TimeoutError:
            self.failures += 1
            raise ShardTimeoutError(
                f"{self.name} missed its {timeout}s deadline"
            ) from None
        except NodeUnavailableError:
            self.failures += 1
            raise
        finally:
            self._pending.pop(rid, None)
        if response.get("status") != "ok":
            raise WorkerFaultError(
                f"{self.name}: {response.get('error', 'unknown fault')}"
            )
        return response

    async def close(self) -> None:
        writer, self._writer = self._writer, None
        self._reader = None
        if self._reader_task is not None:
            self._reader_task.cancel()
            self._reader_task = None
        if writer is not None:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        self._fail_pending()


class ClusterRouter:
    """Scatter-gather front end over a set of :class:`WorkerNode`\\ s."""

    def __init__(
        self,
        queries: Sequence[TopicQuery],
        config: Optional[ClusterConfig] = None,
    ):
        self.config = config if config is not None else ClusterConfig()
        self.queries: Tuple[TopicQuery, ...] = tuple(queries)
        self._matcher = LabelMatcher(self.queries)
        self.labels: Tuple[str, ...] = tuple(sorted(
            q.label for q in self.queries
        ))
        self.ring = HashRing(virtual_nodes=self.config.virtual_nodes)
        self.membership = Membership(max_missed=self.config.max_missed)
        self._clients: Dict[str, NodeClient] = {}
        # labels being handed to a joining node: ingest dual-writes to
        # both old and new owners during the window, so the cutover
        # loses nothing (readers keep seeing old owners until the swap)
        self._joining: Dict[str, Set[str]] = {}
        # recently served digest identities, per label — the rebalance
        # warm list (the keys re-issued to a new owner to seed views)
        self._hot: "OrderedDict[Tuple, None]" = OrderedDict()
        self._clock = self.config.clock
        self._heartbeat_task: Optional["asyncio.Task"] = None
        # observability control plane (optional, attached post-init)
        self._collector: Optional[Collector] = None
        self._collector_task: Optional["asyncio.Task"] = None
        self._trace_pipeline: Optional[TracePipeline] = None
        # counters
        self.requests = 0
        self.errors = 0
        self.documents_ingested = 0
        self.documents_unrouted = 0
        self.scatter_legs = 0
        self.hedges = 0
        self.resolves = 0
        self.stitch_repairs = 0
        self.seam_requests = 0
        self.degraded_responses = 0
        self.failovers = 0
        self.rebalances = 0
        self._inflight = 0
        self._node_epochs: Dict[str, int] = {}

    # -- membership / topology --------------------------------------------

    def _client(self, name: str) -> NodeClient:
        try:
            return self._clients[name]
        except KeyError:
            raise ClusterError(f"unknown node {name!r}") from None

    async def add_worker(
        self, name: str, address: Tuple[str, int]
    ) -> Dict[str, Any]:
        """Join a node: register, rebalance its labels onto it, warm it.

        Readers keep hitting the old owners until the ring swap at the
        end; ingest dual-writes to the joining node during the handoff,
        so the cutover is lossless (see ``docs/cluster.md``).
        """
        if name in self._clients:
            raise ClusterError(f"node {name!r} already joined")
        self.membership.add(name, address)
        self._clients[name] = NodeClient(
            name, address, max_frame=self.config.max_frame
        )
        if len(self.ring) == 0:
            self.ring.add(name)
            structlog.emit("cluster.node_joined", node=name, moved=0)
            return {"node": name, "moved_labels": []}
        target = HashRing(
            list(self.ring.nodes) + [name],
            virtual_nodes=self.config.virtual_nodes,
        )
        gained = self.ring.moved_keys(
            self.labels, target, self.config.replication
        ).get(name, [])
        moved = await self._handoff(name, gained, source_ring=self.ring)
        self.ring = target
        self._joining.pop(name, None)
        self.rebalances += 1
        _obs.count("cluster.router.rebalances")
        structlog.emit(
            "cluster.node_joined", node=name, moved=len(moved),
        )
        await self._warm(name, moved)
        return {"node": name, "moved_labels": sorted(moved)}

    async def remove_worker(self, name: str) -> Dict[str, Any]:
        """Graceful leave: hand the node's labels to their new owners,
        then drop it from the ring and the membership table."""
        if name not in self._clients:
            raise ClusterError(f"unknown node {name!r}")
        if len(self.ring) <= 1:
            raise ClusterError(
                "cannot remove the last node of the cluster"
            )
        remaining = [n for n in self.ring.nodes if n != name]
        target = HashRing(
            remaining, virtual_nodes=self.config.virtual_nodes
        )
        gains = self.ring.moved_keys(
            self.labels, target, self.config.replication
        )
        moved_total: List[str] = []
        for gainer, labels in sorted(gains.items()):
            if gainer == name:
                continue
            moved = await self._handoff(
                gainer, labels, source_ring=self.ring,
                prefer_source=name,
            )
            moved_total.extend(moved)
        self.ring = target
        client = self._clients.pop(name)
        await client.close()
        self.membership.remove(name)
        self._node_epochs.pop(name, None)
        self.rebalances += 1
        _obs.count("cluster.router.rebalances")
        structlog.emit(
            "cluster.node_left", node=name, moved=len(moved_total),
        )
        for gainer, labels in sorted(gains.items()):
            if gainer != name:
                await self._warm(gainer, labels)
        return {"node": name, "moved_labels": sorted(set(moved_total))}

    async def _handoff(
        self,
        target: str,
        labels: Sequence[str],
        *,
        source_ring: HashRing,
        prefer_source: Optional[str] = None,
    ) -> List[str]:
        """Copy the documents for ``labels`` onto ``target`` from their
        current live holders.  Returns the labels actually moved."""
        if not labels:
            return []
        self._joining.setdefault(target, set()).update(labels)
        by_source: Dict[str, List[str]] = {}
        moved: List[str] = []
        for label in sorted(set(labels)):
            holders = [
                node
                for node in source_ring.owners(
                    label, self.config.replication
                )
                if node != target and self.membership.is_alive(node)
            ]
            if prefer_source is not None and prefer_source in holders:
                holders = [prefer_source] + [
                    node for node in holders if node != prefer_source
                ]
            if not holders:
                # no live holder: nothing to copy (the label was
                # already dark); the new owner starts it empty
                continue
            by_source.setdefault(holders[0], []).append(label)
            moved.append(label)
        for source, source_labels in sorted(by_source.items()):
            response = await self._client(source).call(
                OP_EXPORT, {"labels": source_labels},
                timeout=self.config.request_timeout,
            )
            documents = response["payload"]["documents"]
            if documents:
                await self._client(target).call(
                    OP_INGEST, {"documents": documents},
                    timeout=self.config.request_timeout,
                )
        return moved

    async def _warm(
        self, name: str, labels: Iterable[str]
    ) -> int:
        """Re-issue the hot digest keys touching ``labels`` on the new
        owner, re-seeding its result cache and cover views."""
        wanted = set(labels)
        if not wanted:
            return 0
        requests = [
            {
                "lam": lam, "labels": list(key_labels),
                "algorithm": algorithm, "dimension": dimension,
                "session": "cluster-warm",
            }
            for (key_labels, lam, algorithm, dimension) in self._hot
            if wanted & set(key_labels)
        ]
        if not requests:
            return 0
        try:
            response = await self._client(name).call(
                OP_WARM, {"requests": requests},
                timeout=self.config.request_timeout,
            )
        except ClusterError:
            return 0  # warming is best-effort
        warmed = int(response["payload"].get("warmed", 0))
        _obs.count("cluster.router.warmed", warmed)
        return warmed

    async def _resync(self, name: str) -> None:
        """A crashed node came back: its corpus missed every ingest
        while it was down, so re-copy its owned labels from the live
        replicas (the worker's doc-id gate dedups the overlap)."""
        owned = [
            label for label in self.labels
            if name in self.ring.owners(label, self.config.replication)
        ]
        moved = await self._handoff(name, owned, source_ring=self.ring)
        self._joining.pop(name, None)
        structlog.emit(
            "cluster.node_resynced", node=name, labels=len(moved),
        )
        await self._warm(name, moved)

    # -- heartbeats --------------------------------------------------------

    async def heartbeat_once(self) -> Dict[str, str]:
        """Probe every member once; returns ``node -> up/down``.

        Piggybacks the membership snapshot and ring ownership summary
        so every worker can answer for cluster state.  Deterministic
        and directly callable — tests drive probes explicitly instead
        of sleeping through the background interval.
        """
        ring_summary = {
            node: labels for node, labels in self.ring.ownership(
                self.labels, self.config.replication
            ).items()
        } if len(self.ring) else {}
        snapshot = self.membership.snapshot()
        statuses: Dict[str, str] = {}
        for name in self.membership.members():
            try:
                response = await self._client(name).call(
                    OP_HEARTBEAT,
                    {"membership": snapshot, "ring": ring_summary},
                    timeout=self.config.heartbeat_timeout,
                )
                self._node_epochs[name] = int(
                    response["payload"].get("epoch", 0)
                )
                recovered = self.membership.record_success(name)
                if recovered:
                    structlog.emit(
                        "cluster.node_recovered", node=name,
                    )
                    _obs.count("cluster.router.recoveries")
                    await self._resync(name)
            except ClusterError:
                went_down = self.membership.record_failure(name)
                if went_down:
                    structlog.emit(
                        "cluster.node_down",
                        level=logging.WARNING, node=name,
                    )
                    _obs.count("cluster.router.nodes_down")
            state = self.membership.get(name)
            statuses[name] = state.status if state else "unknown"
        return statuses

    async def start_heartbeats(self) -> None:
        """Run :meth:`heartbeat_once` on the configured interval until
        :meth:`close`."""
        if self._heartbeat_task is not None:
            return

        async def beat() -> None:
            while True:
                await asyncio.sleep(self.config.heartbeat_interval)
                await self.heartbeat_once()

        self._heartbeat_task = asyncio.ensure_future(beat())

    async def close(self) -> None:
        if self._heartbeat_task is not None:
            self._heartbeat_task.cancel()
            self._heartbeat_task = None
        if self._collector_task is not None:
            self._collector_task.cancel()
            self._collector_task = None
        if self._trace_pipeline is not None:
            self._trace_pipeline.close()
        for client in self._clients.values():
            await client.close()

    # -- note request-path outcomes into the failure detector --------------

    def _note_failure(self, name: str) -> None:
        if self.membership.record_failure(name):
            structlog.emit(
                "cluster.node_down", level=logging.WARNING,
                node=name, via="request-path",
            )
            _obs.count("cluster.router.nodes_down")

    def _note_success(self, name: str) -> None:
        # request-path recovery only resets the miss counter; the full
        # down -> up flip (with resync) stays a heartbeat decision
        state = self.membership.get(name)
        if state is not None and state.status == "up":
            state.missed = 0

    # -- observability control plane ---------------------------------------

    def attach_trace_pipeline(self, pipeline: TracePipeline) -> None:
        """Route every finished digest through ``pipeline``.

        Attaching also turns on router-level head sampling: a request
        that loses the pipeline policy's coin flip creates no spans at
        all (here or on the workers) — the cheap path the p50 gate in
        ``BENCH_observability.json`` measures."""
        self._trace_pipeline = pipeline

    def enable_collector(
        self,
        *,
        interval: float = 1.0,
        engine: Optional[Any] = None,
    ) -> Collector:
        """Build the fleet collector over the ``scrape`` op.

        The collector pulls every *live* member each cycle with a
        versioned cursor, feeds scrape outcomes into the same failure
        detector as the request path, and (with an ``engine``) raises
        anomaly alerts against the merged fleet state.  The caller owns
        the cadence: drive :meth:`collect_once` explicitly (tests) or
        :meth:`start_collector` for the background loop."""

        async def scrape(
            name: str, cursor: Optional[int]
        ) -> Dict[str, Any]:
            try:
                response = await self._client(name).call(
                    OP_SCRAPE, {"cursor": cursor},
                    timeout=self.config.request_timeout,
                )
            except ClusterError:
                self._note_failure(name)
                raise
            self._note_success(name)
            return response["payload"]

        self._collector = Collector(
            nodes=lambda: self.membership.alive(),
            scrape=scrape,
            interval=interval,
            engine=engine,
            fleet_state=lambda: {"dark_labels": self._dark_labels()},
        )
        return self._collector

    def _dark_labels(self) -> List[str]:
        """Labels whose every replica is down — requests for them are
        already degrading; the ``dark_shard`` rule alerts on this."""
        if len(self.ring) == 0:
            return list(self.labels)
        return [
            label for label in self.labels
            if not any(
                self.membership.is_alive(node)
                for node in self.ring.owners(
                    label, self.config.replication
                )
            )
        ]

    async def collect_once(self) -> Dict[str, Any]:
        """One explicit collector cycle (tests drive this directly)."""
        if self._collector is None:
            raise ClusterError(
                "no collector enabled; call enable_collector() first"
            )
        return await self._collector.collect_once()

    async def start_collector(self) -> None:
        """Run :meth:`collect_once` on the collector's interval until
        :meth:`close`."""
        if self._collector is None:
            raise ClusterError(
                "no collector enabled; call enable_collector() first"
            )
        if self._collector_task is not None:
            return

        async def pull() -> None:
            while True:
                await asyncio.sleep(self._collector.interval)
                try:
                    await self._collector.collect_once()
                except Exception:  # pragma: no cover - defensive
                    logging.getLogger(__name__).exception(
                        "collector cycle failed"
                    )

        self._collector_task = asyncio.ensure_future(pull())

    def federated_prometheus(self) -> str:
        """The fleet's one Prometheus page (collector required)."""
        if self._collector is None:
            raise ClusterError(
                "no collector enabled; call enable_collector() first"
            )
        return self._collector.to_prometheus()

    async def profile_node(
        self, name: str, *, seconds: float = 2.0, hz: int = 100
    ) -> Dict[str, Any]:
        """Capture ``seconds`` of wall-clock stack samples from a live
        node via the ``profile`` op."""
        response = await self._client(name).call(
            OP_PROFILE, {"seconds": seconds, "hz": hz},
            timeout=max(
                self.config.request_timeout, seconds + 5.0
            ),
        )
        return response["payload"]

    # -- ingest ------------------------------------------------------------

    async def ingest(
        self, documents: Iterable[Document]
    ) -> Dict[str, Any]:
        """Route a document batch to the owning shards.

        Every document goes to *all* live owners of each label it
        matches (replicas stay byte-identical for their labels), plus
        any joining node currently receiving those labels (the
        dual-write that makes rebalance lossless).  Unmatched documents
        are counted but shipped nowhere — no node needs them, and the
        router's tally keeps cluster digest counters identical to a
        single process that did see them.
        """
        batches: Dict[str, List[Dict[str, Any]]] = {}
        unrouted = 0
        total = 0
        for document in documents:
            total += 1
            labels = self._matcher.match(document.text)
            if not labels:
                unrouted += 1
                continue
            targets: Set[str] = set()
            for label in labels:
                for node in self.ring.owners(
                    label, self.config.replication
                ):
                    if self.membership.is_alive(node):
                        targets.add(node)
                for joiner, moving in self._joining.items():
                    if label in moving:
                        targets.add(joiner)
            payload = document_to_dict(document)
            for node in sorted(targets):
                batches.setdefault(node, []).append(payload)
        self.documents_ingested += total
        self.documents_unrouted += unrouted
        _obs.count("cluster.router.ingested", total)
        results: Dict[str, Any] = {}
        failed: List[str] = []
        for node in sorted(batches):
            try:
                response = await self._client(node).call(
                    OP_INGEST, {"documents": batches[node]},
                    timeout=self.config.request_timeout,
                )
                self._note_success(node)
                payload = response["payload"]
                self._node_epochs[node] = int(payload.get("epoch", 0))
                results[node] = {
                    "accepted": payload.get("accepted", 0),
                    "skipped": payload.get("skipped", 0),
                    "epoch": payload.get("epoch", 0),
                }
            except ClusterError as error:
                self._note_failure(node)
                failed.append(node)
                results[node] = {"error": repr(error)}
        return {
            "documents": total,
            "unrouted": unrouted,
            "routed": results,
            "failed": failed,
        }

    # -- digest ------------------------------------------------------------

    def _resolve_labels(
        self, requested: Optional[Tuple[str, ...]]
    ) -> Tuple[str, ...]:
        if requested is None:
            return self.labels
        unknown = [
            label for label in requested if label not in self.labels
        ]
        if unknown:
            raise ClusterError(
                f"unknown labels {unknown}; this cluster answers over "
                f"{list(self.labels)}"
            )
        if not requested:
            raise ClusterError(
                "a digest request needs at least one label"
            )
        return requested

    def _live_owners(self, label: str) -> List[str]:
        """Replica-ordered live owners for ``label`` (primary first).

        A dead primary simply drops out — reads fail over to the next
        replica without any ownership change."""
        owners = self.ring.owners(label, self.config.replication)
        alive = [n for n in owners if self.membership.is_alive(n)]
        if len(alive) < len(owners):
            self.failovers += 1
            _obs.count("cluster.router.failovers")
        return alive

    def _remember_hot(self, request: DigestRequest,
                      labels: Tuple[str, ...]) -> None:
        key = (
            labels, float(request.lam),
            request.algorithm, request.dimension,
        )
        self._hot[key] = None
        self._hot.move_to_end(key)
        while len(self._hot) > self.config.warm_keys:
            self._hot.popitem(last=False)

    async def digest(self, request: DigestRequest) -> ClusterResponse:
        """Serve one digest request across the cluster."""
        started = self._clock()
        ctx = TraceContext.mint(tenant=request.session)
        self.requests += 1
        _obs.count("cluster.router.requests")
        # router-level head sampling: with a trace pipeline attached,
        # the policy's deterministic coin flip decides *before* the
        # request runs whether this trace records spans anywhere
        traced = _obs.enabled() and (
            self._trace_pipeline is None
            or head_sample(
                ctx.trace_id, self._trace_pipeline.policy.rate
            )
        )
        if traced:
            with _obs.activate(ctx):
                with _obs.span(
                    "cluster.request", tenant=request.session,
                    lam=request.lam,
                ) as root:
                    response = await self._serve(
                        request,
                        ctx.at(getattr(root, "span_id", None)),
                        started,
                    )
        else:
            if _obs.enabled():
                _obs.count("cluster.router.trace_unsampled")
            response = await self._serve(
                request, ctx, started, traced=False
            )
        if response.status == ERROR:
            self.errors += 1
            _obs.count("cluster.router.errors")
        elif response.status == DEGRADED:
            self.degraded_responses += 1
            _obs.count("cluster.router.degraded")
            structlog.emit(
                "cluster.degraded_response",
                level=logging.WARNING,
                trace_id=ctx.trace_id,
                tenant=request.session,
                missing_labels=list(response.missing_labels),
                dark_labels=self._dark_labels(),
            )
        if self._trace_pipeline is not None:
            bundle = _obs.active()
            self._trace_pipeline.offer(
                trace_id=ctx.trace_id,
                status=response.status,
                latency_s=response.latency_s,
                tracer=(
                    bundle.tracer
                    if traced and bundle is not None else None
                ),
                attributes={
                    "tenant": request.session,
                    "shards": list(response.shards),
                    "missing_labels": list(response.missing_labels),
                },
            )
        structlog.emit(
            f"cluster.{response.status}",
            level=logging.INFO if response.status == OK
            else logging.WARNING,
            trace_id=ctx.trace_id,
            tenant=request.session,
            shards=list(response.shards),
            missing=list(response.missing_labels),
            latency_s=response.latency_s,
        )
        return response

    async def _serve(
        self,
        request: DigestRequest,
        ctx: TraceContext,
        started: float,
        *,
        traced: bool = True,
    ) -> ClusterResponse:
        try:
            labels = self._resolve_labels(request.labels)
        except ClusterError as error:
            return ClusterResponse(
                status=ERROR, result=None, algorithm="",
                latency_s=self._clock() - started,
                trace_id=ctx.trace_id or "", reason=str(error),
            )
        if len(self.ring) == 0:
            return ClusterResponse(
                status=ERROR, result=None, algorithm="",
                latency_s=self._clock() - started,
                trace_id=ctx.trace_id or "",
                reason="the cluster has no nodes",
            )
        self._remember_hot(request, labels)
        # group the requested labels by their live owner list: labels
        # sharing owners ride one scatter leg (and hedge together)
        groups: "OrderedDict[Tuple[str, ...], List[str]]" = OrderedDict()
        missing: List[str] = []
        for label in labels:
            owners = tuple(self._live_owners(label))
            if not owners:
                missing.append(label)
                continue
            groups.setdefault(owners, []).append(label)
        if not groups:
            return ClusterResponse(
                status=ERROR, result=None,
                algorithm=request.algorithm or "",
                latency_s=self._clock() - started,
                trace_id=ctx.trace_id or "",
                missing_labels=tuple(sorted(missing)),
                reason="no live shard owns any requested label",
            )
        self._inflight += 1
        if _obs.enabled():
            _obs.set_gauge("cluster.router.inflight", self._inflight)
        try:
            legs = await self._scatter(
                request, groups, ctx, traced=traced
            )
        finally:
            self._inflight -= 1
            if _obs.enabled():
                _obs.set_gauge(
                    "cluster.router.inflight", self._inflight
                )
        hedges = sum(leg["hedges"] for leg in legs)
        failed_labels = [
            label
            for leg in legs if leg["response"] is None
            for label in leg["labels"]
        ]
        missing.extend(failed_labels)
        served = [leg for leg in legs if leg["response"] is not None]
        if not served:
            return ClusterResponse(
                status=ERROR, result=None,
                algorithm=request.algorithm or "",
                latency_s=self._clock() - started,
                trace_id=ctx.trace_id or "",
                missing_labels=tuple(sorted(missing)),
                hedges=hedges,
                reason="every scatter leg failed",
            )
        return self._merge(
            request, ctx, started, served,
            missing=tuple(sorted(missing)), hedges=hedges,
            traced=traced,
        )

    async def _scatter(
        self,
        request: DigestRequest,
        groups: "OrderedDict[Tuple[str, ...], List[str]]",
        ctx: TraceContext,
        *,
        traced: bool = True,
    ) -> List[Dict[str, Any]]:
        """Fan the label groups out; every leg resolves to a dict with
        its labels, serving node, hedge count and response (or None)."""

        async def leg(
            owners: Tuple[str, ...], leg_labels: List[str]
        ) -> Dict[str, Any]:
            self.scatter_legs += 1
            _obs.count("cluster.router.scatter_legs")
            sub = DigestRequest(
                lam=request.lam, labels=tuple(leg_labels),
                algorithm=request.algorithm,
                dimension=request.dimension,
                session=request.session,
            )
            try:
                node, frame, hedges = await self._call_with_failover(
                    owners, OP_DIGEST, {"request": sub.to_dict()}, ctx,
                    traced=traced,
                )
            except ClusterError as error:
                structlog.emit(
                    "cluster.leg_failed", level=logging.WARNING,
                    trace_id=ctx.trace_id, labels=leg_labels,
                    reason=repr(error),
                )
                return {"labels": leg_labels, "node": None,
                        "hedges": 0, "response": None}
            spans = frame.get("spans")
            if spans:
                bundle = _obs.active()
                if bundle is not None:
                    # graft the worker's spans into this request's
                    # trace — the existing Tracer.adopt path.  No
                    # trace_id override: the worker span already
                    # carries this trace, and the service-side spans
                    # riding along keep their own trace so the
                    # link_trace_id hop stays resolvable
                    bundle.tracer.adopt(spans, parent_id=ctx.span_id)
            response = ServiceResponse.from_dict(
                frame["payload"]["response"]
            )
            if response.result is None:
                structlog.emit(
                    "cluster.leg_empty", level=logging.WARNING,
                    trace_id=ctx.trace_id, node=node,
                    labels=leg_labels, reason=response.reason,
                )
                return {"labels": leg_labels, "node": node,
                        "hedges": hedges, "response": None}
            return {"labels": leg_labels, "node": node,
                    "hedges": hedges, "response": response}

        return list(await asyncio.gather(*(
            leg(owners, leg_labels)
            for owners, leg_labels in groups.items()
        )))

    async def _call_with_failover(
        self,
        owners: Sequence[str],
        op: str,
        payload: Dict[str, Any],
        ctx: TraceContext,
        *,
        traced: bool = True,
    ) -> Tuple[str, Dict[str, Any], int]:
        """Hedged replica fan-out: start the primary, start the next
        replica after ``hedge_delay`` (or on failure), first success
        wins.  The per-shard ``request_timeout`` bounds the whole leg.
        """
        loop = asyncio.get_running_loop()
        deadline = loop.time() + self.config.request_timeout
        want_spans = _obs.enabled() and traced
        trace = ctx.to_dict() if want_spans else None
        pending: Dict["asyncio.Future", str] = {}
        errors: List[str] = []
        hedges = 0
        index = 0
        try:
            while True:
                now = loop.time()
                if now >= deadline:
                    for task in pending:
                        task.cancel()
                    for node in pending.values():
                        self._note_failure(node)
                    tried = errors or list(owners)
                    raise ShardTimeoutError(
                        f"shard deadline exhausted after {tried}"
                    )
                if index < len(owners) and (
                    not pending or index > 0
                ):
                    # launch the next replica: immediately when nothing
                    # is in flight, as a hedge otherwise
                    node = owners[index]
                    index += 1
                    if pending:
                        hedges += 1
                        self.hedges += 1
                        _obs.count("cluster.router.hedges")
                        structlog.emit(
                            "cluster.hedged_retry",
                            trace_id=ctx.trace_id,
                            node=node,
                            attempt=index,
                            op=op,
                            hedge_delay_s=self.config.hedge_delay,
                        )
                    task = asyncio.ensure_future(self._client(node).call(
                        op, payload, trace=trace,
                        want_spans=want_spans,
                    ))
                    pending[task] = node
                wait_for = deadline - now
                if index < len(owners):
                    wait_for = min(
                        wait_for, self.config.hedge_delay or 0.001
                    )
                done, _ = await asyncio.wait(
                    set(pending), timeout=wait_for,
                    return_when=asyncio.FIRST_COMPLETED,
                )
                for task in done:
                    node = pending.pop(task)
                    try:
                        frame = task.result()
                    except Exception as error:
                        errors.append(f"{node}: {error!r}")
                        self._note_failure(node)
                        structlog.emit(
                            "cluster.inline_failover",
                            level=logging.WARNING,
                            trace_id=ctx.trace_id,
                            node=node,
                            op=op,
                            reason=repr(error),
                            remaining=len(pending)
                            + max(0, len(owners) - index),
                        )
                        continue
                    self._note_success(node)
                    return node, frame, hedges
                if not pending and index >= len(owners):
                    raise NodeUnavailableError(
                        "every replica failed: " + "; ".join(errors)
                    )
        finally:
            for task in pending:
                task.cancel()

    # -- merge -------------------------------------------------------------

    def _merge(
        self,
        request: DigestRequest,
        ctx: TraceContext,
        started: float,
        legs: List[Dict[str, Any]],
        *,
        missing: Tuple[str, ...],
        hedges: int,
        traced: bool = True,
    ) -> ClusterResponse:
        algorithm = legs[0]["response"].algorithm
        served_labels = tuple(sorted(
            label for leg in legs for label in leg["labels"]
        ))
        shards = tuple(sorted({leg["node"] for leg in legs}))
        degraded = bool(missing) or any(
            leg["response"].status == DEGRADED for leg in legs
        )
        merge_span = (
            _obs.span(
                "cluster.merge", legs=len(legs),
                labels=len(served_labels),
            )
            if traced else contextlib.nullcontext(_NO_SPAN)
        )
        with merge_span as span:
            if len(legs) == 1 and not missing:
                # single-owner fast path: the worker's digest IS the
                # answer; only the cluster-wide counters are rewritten
                response: ServiceResponse = legs[0]["response"]
                result = response.result
                assert result is not None
                result = _dc_replace(
                    result,
                    duplicates_dropped=0,
                    unmatched_dropped=max(
                        0,
                        self.documents_ingested
                        - len(result.instance.posts),
                    ),
                    trace_id=ctx.trace_id,
                )
                return ClusterResponse(
                    status=DEGRADED if degraded
                    or result.downgrades else OK,
                    result=result, algorithm=algorithm,
                    latency_s=self._clock() - started,
                    trace_id=ctx.trace_id or "",
                    shards=shards, missing_labels=missing,
                    hedges=hedges,
                    reason=legs[0]["response"].reason,
                )
            # merge the sub-instances by uid; a seam post appears in
            # more than one leg (its labels span owners) with partial
            # label sets whose union is its true requested label set
            merged: Dict[int, Post] = {}
            appearances: Dict[int, int] = {}
            for leg in legs:
                for post in leg["response"].result.instance.posts:
                    appearances[post.uid] = \
                        appearances.get(post.uid, 0) + 1
                    known = merged.get(post.uid)
                    if known is None:
                        merged[post.uid] = post
                    else:
                        merged[post.uid] = Post(
                            uid=post.uid, value=post.value,
                            labels=known.labels | post.labels,
                            text=post.text,
                        )
            seam_uids = {
                uid for uid, count in appearances.items() if count > 1
            }
            instance = Instance(
                list(merged.values()), float(request.lam),
                labels=served_labels,
            )
            resolves = 0
            repairs = 0
            stitched = False
            if seam_uids:
                self.seam_requests += 1
                _obs.count("cluster.router.seam_requests")
            if seam_uids and self.config.stitch_mode == "exact" \
                    and not missing:
                # the label analogue of the engine's halo fallback:
                # seams break block independence, so re-solve the
                # merged instance — byte-identical by construction
                solution = solve(algorithm, instance)
                resolves = 1
                self.resolves += 1
                _obs.count("cluster.router.resolves")
            else:
                # union of the shard picks (block-independent, hence
                # byte-identical, when seam-free — see module docstring)
                # repaired and verified by the existing seam machinery
                pick_uids = sorted({
                    post.uid
                    for leg in legs
                    for post in leg["response"].result.solution.posts
                })
                picks = [merged[uid] for uid in pick_uids
                         if uid in merged]
                picks, repairs = stitch_repair(instance, picks)
                stitched = True
                if repairs:
                    self.stitch_repairs += repairs
                    _obs.count(
                        "cluster.router.stitch_repairs", repairs
                    )
                solution = Solution.from_posts(
                    algorithm, picks, elapsed=0.0
                )
            span.set_attribute("seams", len(seam_uids))
            span.set_attribute("repairs", repairs)
            downgrades: Tuple = ()
            for leg in legs:
                downgrades = downgrades + tuple(
                    leg["response"].result.downgrades
                )
            result = DigestResult(
                solution=solution,
                instance=instance,
                matched=len(instance.posts),
                duplicates_dropped=0,
                unmatched_dropped=max(
                    0, self.documents_ingested - len(instance.posts)
                ),
                downgrades=downgrades,
                trace_id=ctx.trace_id,
            )
        return ClusterResponse(
            status=DEGRADED if degraded or downgrades else OK,
            result=result, algorithm=algorithm,
            latency_s=self._clock() - started,
            trace_id=ctx.trace_id or "",
            shards=shards, missing_labels=missing,
            seam_posts=len(seam_uids),
            stitched=stitched, stitch_repairs=repairs,
            resolves=resolves, hedges=hedges,
            reason="partial cover: some labels have no live shard"
            if missing else "",
        )

    # -- per-view windows across the cluster --------------------------------

    async def set_view_window(
        self,
        labels: Iterable[str],
        window: Optional[float],
    ) -> Dict[str, Any]:
        """Pin a view horizon for one label set on every owning shard
        (the per-tenant-partition window override)."""
        labels = tuple(sorted(set(labels)))
        unknown = [l for l in labels if l not in self.labels]
        if unknown:
            raise ClusterError(f"unknown labels {unknown}")
        targets: Set[str] = set()
        for label in labels:
            targets.update(self._live_owners(label))
        acks: Dict[str, Any] = {}
        for node in sorted(targets):
            response = await self._client(node).call(
                OP_SET_WINDOW,
                {"labels": list(labels), "window": window},
                timeout=self.config.request_timeout,
            )
            acks[node] = response["payload"]
        return {"labels": list(labels), "window": window,
                "nodes": acks}

    # -- remote health -----------------------------------------------------

    async def node_health(self, name: str) -> Dict[str, Any]:
        response = await self._client(name).call(
            OP_HEALTH, {}, timeout=self.config.request_timeout
        )
        return response["payload"]

    async def node_introspect(self, name: str) -> Dict[str, Any]:
        response = await self._client(name).call(
            OP_INTROSPECT, {}, timeout=self.config.request_timeout
        )
        return response["payload"]

    # -- local health ------------------------------------------------------

    def health(self) -> Dict[str, Any]:
        """The router's vitals: role, ring, liveness, scatter state."""
        return {
            "cluster": {
                "role": "router",
                "nodes": list(self.ring.nodes),
                "alive": self.membership.alive(),
                "replication": self.config.replication,
                "ring": {
                    node: len(labels)
                    for node, labels in self.ring.ownership(
                        self.labels, self.config.replication
                    ).items()
                } if len(self.ring) else {},
                "inflight_scatters": self._inflight,
                "node_epochs": dict(self._node_epochs),
            },
            "requests": self.requests,
            "errors": self.errors,
            "degraded": self.degraded_responses,
            "documents": self.documents_ingested,
            "unrouted": self.documents_unrouted,
            "fleet": (
                self._collector.fleet()
                if self._collector is not None else None
            ),
        }

    def introspect(self) -> Dict[str, Any]:
        """Everything an operator asks a router first."""
        return {
            "role": "router",
            "labels": list(self.labels),
            "ring": {
                "virtual_nodes": self.config.virtual_nodes,
                "replication": self.config.replication,
                "ownership": self.ring.ownership(
                    self.labels, self.config.replication
                ) if len(self.ring) else {},
            },
            "membership": self.membership.snapshot(),
            "queues": {
                "inflight_scatters": self._inflight,
            },
            "counters": {
                "requests": self.requests,
                "errors": self.errors,
                "degraded_responses": self.degraded_responses,
                "scatter_legs": self.scatter_legs,
                "hedges": self.hedges,
                "resolves": self.resolves,
                "stitch_repairs": self.stitch_repairs,
                "seam_requests": self.seam_requests,
                "failovers": self.failovers,
                "rebalances": self.rebalances,
                "documents_ingested": self.documents_ingested,
                "documents_unrouted": self.documents_unrouted,
            },
            "clients": {
                name: {"calls": client.calls,
                       "failures": client.failures}
                for name, client in sorted(self._clients.items())
            },
            "node_epochs": dict(self._node_epochs),
            "joining": {
                node: sorted(labels)
                for node, labels in self._joining.items()
            },
            "hot_keys": len(self._hot),
            "stitch_mode": self.config.stitch_mode,
            "fleet": (
                self._collector.fleet()
                if self._collector is not None else None
            ),
            "alerts": (
                self._collector.engine.snapshot()
                if self._collector is not None
                and self._collector.engine is not None else None
            ),
            "traces": (
                self._trace_pipeline.snapshot()
                if self._trace_pipeline is not None else None
            ),
        }
