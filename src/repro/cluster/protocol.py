"""Cluster message envelopes and the digest parity fingerprint.

A request frame is ``{"op", "rid", "payload", "trace", "spans"}``;
a response frame is ``{"rid", "status", "payload", "error", "spans"}``.
``rid`` is a per-connection request id — responses may interleave out
of request order (the worker handles requests concurrently), and the
client correlates them back through its pending-future table.
``trace`` carries the router's :class:`~repro.observability.tracing.
TraceContext` dict; ``spans`` (request side) asks the worker to export
the spans it opened so the router can graft them into its own trace via
``Tracer.adopt``.

:func:`canonical_fingerprint` defines what "byte-identical" means for
the parity guarantees: the full :class:`~repro.pipeline.DigestResult`
wire dict, minus the fields that legitimately differ between a local
solve and a routed one — wall-clock ``elapsed`` and the trace identity
(``trace_id``/``solve_span_id``), which name *who computed it*, not
*what was computed*.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..errors import ReproError
from ..index.inverted_index import Document
from ..pipeline import DigestResult

__all__ = [
    "ClusterError",
    "NodeUnavailableError",
    "ShardTimeoutError",
    "WorkerFaultError",
    "OP_DIGEST",
    "OP_EXPORT",
    "OP_HEALTH",
    "OP_HEARTBEAT",
    "OP_INGEST",
    "OP_INTROSPECT",
    "OP_PROFILE",
    "OP_SCRAPE",
    "OP_SET_WINDOW",
    "OP_WARM",
    "canonical_fingerprint",
    "document_from_dict",
    "document_to_dict",
    "error_frame",
    "ok_frame",
    "request_frame",
]


class ClusterError(ReproError):
    """Base class for cluster-layer failures."""


class NodeUnavailableError(ClusterError):
    """The node's connection is down or died mid-request."""


class ShardTimeoutError(ClusterError):
    """A scatter leg exhausted its per-shard deadline on every replica."""


class WorkerFaultError(ClusterError):
    """The worker answered with an error frame (remote exception)."""


OP_DIGEST = "digest"
OP_INGEST = "ingest"
OP_HEARTBEAT = "heartbeat"
OP_HEALTH = "health"
OP_INTROSPECT = "introspect"
OP_EXPORT = "export"
OP_WARM = "warm"
OP_SET_WINDOW = "set_window"
OP_SCRAPE = "scrape"
OP_PROFILE = "profile"

KNOWN_OPS = frozenset({
    OP_DIGEST, OP_INGEST, OP_HEARTBEAT, OP_HEALTH, OP_INTROSPECT,
    OP_EXPORT, OP_WARM, OP_SET_WINDOW, OP_SCRAPE, OP_PROFILE,
})


def request_frame(
    op: str,
    rid: int,
    payload: Dict[str, Any],
    trace: Optional[Mapping[str, Any]] = None,
    want_spans: bool = False,
) -> Dict[str, Any]:
    frame: Dict[str, Any] = {"op": op, "rid": rid, "payload": payload}
    if trace is not None:
        frame["trace"] = dict(trace)
    if want_spans:
        frame["spans"] = True
    return frame


def ok_frame(
    rid: int,
    payload: Dict[str, Any],
    spans: Optional[Sequence[Mapping[str, Any]]] = None,
) -> Dict[str, Any]:
    frame: Dict[str, Any] = {
        "rid": rid, "status": "ok", "payload": payload,
    }
    if spans:
        frame["spans"] = [dict(span) for span in spans]
    return frame


def error_frame(rid: int, message: str) -> Dict[str, Any]:
    return {"rid": rid, "status": "error", "error": message}


def document_to_dict(document: Document) -> Dict[str, Any]:
    return {
        "doc_id": document.doc_id,
        "timestamp": document.timestamp,
        "text": document.text,
    }


def document_from_dict(payload: Mapping[str, Any]) -> Document:
    return Document(
        doc_id=int(payload["doc_id"]),
        timestamp=float(payload["timestamp"]),
        text=str(payload.get("text", "")),
    )


def canonical_fingerprint(result: DigestResult) -> str:
    """The parity identity of a digest: sorted-key JSON of its wire
    dict with timing and trace provenance stripped."""
    payload = result.to_dict()
    payload.pop("trace_id", None)
    payload.pop("solve_span_id", None)
    solution = dict(payload["solution"])
    solution.pop("elapsed", None)
    payload["solution"] = solution
    return json.dumps(payload, sort_keys=True)
