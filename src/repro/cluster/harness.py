"""An in-process N-node cluster: real sockets, one event loop.

:class:`LocalCluster` boots N :class:`~repro.cluster.worker.WorkerNode`
servers on ephemeral ports (always port 0, addresses read back from the
bound sockets) plus one :class:`~repro.cluster.router.ClusterRouter`
wired to all of them.  Everything the production topology has — frames,
scatter-gather, heartbeats, rebalance — exercised without spawning
processes, which keeps the cluster tests, the benchmark and the CI
smoke job deterministic and fast.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..index.query import TopicQuery
from ..service import ServiceConfig
from .protocol import ClusterError
from .router import ClusterConfig, ClusterRouter
from .worker import WorkerNode, default_worker_config

__all__ = ["LocalCluster"]


class LocalCluster:
    """N workers + 1 router, started together, stopped together.

    Usage::

        cluster = LocalCluster(queries, nodes=3)
        await cluster.start()
        try:
            await cluster.router.ingest(docs)
            response = await cluster.router.digest(request)
        finally:
            await cluster.stop()
    """

    def __init__(
        self,
        queries: Sequence[TopicQuery],
        nodes: int = 3,
        *,
        config: Optional[ClusterConfig] = None,
        worker_config: Optional[ServiceConfig] = None,
        wal_base: Optional[Any] = None,
    ):
        if nodes < 1:
            raise ClusterError(f"a cluster needs >= 1 node, got {nodes}")
        self.queries = tuple(queries)
        self.config = config if config is not None else ClusterConfig()
        self._worker_config = worker_config
        self._wal_base = wal_base
        self.router = ClusterRouter(self.queries, self.config)
        self.workers: Dict[str, WorkerNode] = {}
        for index in range(nodes):
            name = f"node{index}"
            self.workers[name] = self._build_worker(name)
        self._started = False

    def _build_worker(self, name: str) -> WorkerNode:
        config = self._worker_config
        if config is None:
            config = default_worker_config()
        wal_dir = None
        if self._wal_base is not None:
            import os

            wal_dir = os.path.join(str(self._wal_base), name)
        return WorkerNode(
            name, self.queries, config,
            port=0,  # ephemeral; the bound address is read back
            max_frame=self.config.max_frame,
            wal_dir=wal_dir,
        )

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> "LocalCluster":
        if self._started:
            raise ClusterError("cluster already started")
        for name, worker in self.workers.items():
            address = await worker.start()
            await self.router.add_worker(name, address)
        self._started = True
        return self

    async def stop(self) -> None:
        await self.router.close()
        for worker in self.workers.values():
            if worker.running:
                await worker.stop()
        self._started = False

    async def __aenter__(self) -> "LocalCluster":
        return await self.start()

    async def __aexit__(self, *exc: Any) -> None:
        await self.stop()

    # -- observability -----------------------------------------------------

    def enable_collector(self, **kwargs: Any) -> Any:
        """Attach a fleet collector to the router (passthrough)."""
        return self.router.enable_collector(**kwargs)

    def attach_trace_pipeline(self, pipeline: Any) -> None:
        """Attach a trace pipeline to the router (passthrough)."""
        self.router.attach_trace_pipeline(pipeline)

    # -- topology helpers --------------------------------------------------

    def worker(self, name: str) -> WorkerNode:
        return self.workers[name]

    @property
    def names(self) -> List[str]:
        return sorted(self.workers)

    async def kill(self, name: str) -> None:
        """Hard-stop one worker without telling the router — the crash
        the failover tests and the recovery benchmark simulate."""
        await self.workers[name].stop()

    async def revive(self, name: str) -> Tuple[str, int]:
        """Restart a killed worker's server on a fresh ephemeral port
        and point the router's client at the new address."""
        worker = self.workers[name]
        if worker.running:
            raise ClusterError(f"worker {name!r} is still running")
        fresh = self._build_worker(name)
        # carry the corpus over only in durable mode (the WAL replays
        # it); otherwise the node genuinely lost its state and the
        # router's resync-from-replicas path must repopulate it
        self.workers[name] = fresh
        address = await fresh.start()
        client = self.router._clients[name]
        await client.close()
        client.address = address
        state = self.router.membership.get(name)
        if state is not None:
            state.address = address
        return address

    async def add_node(self, name: str) -> Tuple[str, int]:
        """Boot a fresh worker and rebalance it into the ring."""
        if name in self.workers:
            raise ClusterError(f"worker {name!r} already exists")
        worker = self._build_worker(name)
        self.workers[name] = worker
        address = await worker.start()
        await self.router.add_worker(name, address)
        return address

    async def remove_node(self, name: str) -> None:
        """Gracefully drain a worker out of the ring and stop it."""
        await self.router.remove_worker(name)
        worker = self.workers.pop(name)
        await worker.stop()
