"""The high-level facade: documents in, diversified digest out.

The examples wire tokenizer -> SimHash -> matcher -> instance -> solver by
hand to show the moving parts; applications should not have to.
:class:`DiversificationPipeline` packages the full Figure 1 flow behind
two calls:

* :meth:`~DiversificationPipeline.digest` — the batch path: a document
  collection becomes a :class:`DigestResult` (the selected posts, the
  instance they cover, and what the dedup stage dropped);
* :meth:`~DiversificationPipeline.feed` — the streaming path: push
  documents one at a time (timestamp-ordered) and receive emissions as
  the underlying streaming algorithm decides, with
  :meth:`~DiversificationPipeline.finish` draining the tail.

The diversity dimension is pluggable: ``dimension="time"`` (default),
``"sentiment"`` (lexicon polarity), or any callable mapping a
:class:`~repro.index.inverted_index.Document` to a float.  Note the
streaming path requires a dimension that is non-decreasing in arrival
order — time is, sentiment is not — and refuses otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, List, Mapping, \
    Optional, Sequence, Tuple, Union

from .core.instance import Instance
from .core.post import Post
from .core.registry import solve
from .core.solution import Solution
from .core.streaming import _STREAM_FACTORIES
from .errors import ReproError, StreamOrderError
from .index.inverted_index import Document
from .index.query import LabelMatcher, TopicQuery
from .observability import facade as _obs
from .index.simhash import SimHashIndex, simhash
from .resilience.ladder import DowngradeEvent, solve_with_ladder
from .resilience.supervisor import ResilienceConfig, StreamSupervisor
from .stream.events import Emission
from .text.sentiment import sentiment_score

__all__ = ["DiversificationPipeline", "DigestResult"]

Dimension = Union[str, Callable[[Document], float]]


def _resolve_dimension(dimension: Dimension) -> Callable[[Document], float]:
    if callable(dimension):
        return dimension
    if dimension == "time":
        return lambda document: document.timestamp
    if dimension == "sentiment":
        return lambda document: sentiment_score(document.text)
    raise ReproError(
        f"unknown dimension {dimension!r}; use 'time', 'sentiment' or a "
        "callable"
    )


@dataclass(frozen=True)
class DigestResult:
    """Outcome of a batch digest.

    ``downgrades`` is empty unless the pipeline runs with a
    :class:`~repro.resilience.supervisor.ResilienceConfig` whose batch
    ladder had to step down (budget overrun or solver error).
    """

    solution: Solution
    instance: Instance
    matched: int
    duplicates_dropped: int
    unmatched_dropped: int
    downgrades: Tuple[DowngradeEvent, ...] = ()
    # Trace provenance, stamped by the serving layer: the trace that
    # actually computed this digest and its solve span.  A coalesced
    # follower or cache hit carries the *producer's* ids, which is what
    # lets its own trace link back to the run that did the work.
    trace_id: Optional[str] = None
    solve_span_id: Optional[int] = None

    @property
    def posts(self):
        """The digest posts, in dimension order."""
        return self.solution.posts

    @property
    def size(self) -> int:
        return self.solution.size

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation — the serving layer's wire format."""
        return {
            "solution": self.solution.to_dict(),
            "instance": self.instance.to_dict(),
            "matched": self.matched,
            "duplicates_dropped": self.duplicates_dropped,
            "unmatched_dropped": self.unmatched_dropped,
            "downgrades": [d.to_dict() for d in self.downgrades],
            "trace_id": self.trace_id,
            "solve_span_id": self.solve_span_id,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DigestResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            solution=Solution.from_dict(payload["solution"]),
            instance=Instance.from_dict(payload["instance"]),
            matched=int(payload["matched"]),
            duplicates_dropped=int(payload["duplicates_dropped"]),
            unmatched_dropped=int(payload["unmatched_dropped"]),
            downgrades=tuple(
                DowngradeEvent.from_dict(d)
                for d in payload.get("downgrades", [])
            ),
            trace_id=payload.get("trace_id"),
            solve_span_id=payload.get("solve_span_id"),
        )


class DiversificationPipeline:
    """Documents -> (dedup) -> matching -> diversification.

    Parameters
    ----------
    queries:
        The user's topics (labels with keyword sets).
    lam:
        Coverage threshold on the chosen dimension.
    algorithm:
        Batch solver name for :meth:`digest` (any registry name) —
        default ``"greedy_sc"``.
    stream_algorithm:
        Streaming solver name for :meth:`feed` — default
        ``"stream_scan+"``.
    tau:
        Streaming decision delay.
    dimension:
        ``"time"``, ``"sentiment"`` or a ``Document -> float`` callable.
    dedup_distance:
        SimHash Hamming budget; ``None`` disables deduplication.
    resilience:
        Optional :class:`~repro.resilience.supervisor.ResilienceConfig`.
        When set, :meth:`feed` routes posts through a
        :class:`~repro.resilience.supervisor.StreamSupervisor`
        (sanitization, quarantine, watchdog, checkpointing — reachable
        via :attr:`supervisor`) and :meth:`digest` solves down a
        degradation ladder under the configured time budget.  Batch
        degradation is sticky: once a digest steps down a rung, later
        digests start from that rung.
    """

    def __init__(
        self,
        queries: Sequence[TopicQuery],
        lam: float,
        algorithm: str = "greedy_sc",
        stream_algorithm: str = "stream_scan+",
        tau: float = 0.0,
        dimension: Dimension = "time",
        dedup_distance: Optional[int] = 3,
        resilience: Optional[ResilienceConfig] = None,
    ):
        self.matcher = LabelMatcher(queries)
        self.lam = float(lam)
        self.algorithm = algorithm
        if stream_algorithm not in _STREAM_FACTORIES:
            raise ReproError(
                f"unknown streaming algorithm {stream_algorithm!r}; "
                f"choose from {sorted(_STREAM_FACTORIES)}"
            )
        self.stream_algorithm = stream_algorithm
        self.tau = float(tau)
        self.dimension = dimension
        self._value_of = _resolve_dimension(dimension)
        self.dedup_distance = dedup_distance
        self.resilience = resilience
        # batch degradation is sticky across digests
        self._batch_rung = 0
        # streaming state, created lazily on the first feed()
        self._stream = None
        self._supervisor: Optional[StreamSupervisor] = None
        self._stream_dedup: Optional[SimHashIndex] = None
        self._last_value = float("-inf")

    @property
    def supervisor(self) -> Optional[StreamSupervisor]:
        """The active stream supervisor (health, quarantine, checkpoints).

        ``None`` until the first supervised :meth:`feed`, and again after
        :meth:`finish`.
        """
        return self._supervisor

    def adopt_supervisor(self, supervisor: StreamSupervisor) -> None:
        """Adopt a restored supervisor as this pipeline's stream state.

        The checkpoint-recovery path (see :mod:`repro.service`): a
        supervisor rebuilt by
        :meth:`~repro.resilience.supervisor.StreamSupervisor.restore`
        becomes the live stream, replacing whatever state this pipeline
        had.  The SimHash dedup index is rebuilt from the supervisor's
        journal so near-duplicates of already-admitted posts keep being
        dropped after recovery.  Requires a resilience config (an
        unsupervised pipeline has nowhere to put a supervisor).
        """
        if self.resilience is None:
            raise ReproError(
                "adopt_supervisor requires a pipeline constructed with a "
                "resilience config"
            )
        self._stream = None
        self._supervisor = supervisor
        self._stream_dedup = None
        self._last_value = float("-inf")
        if self.dedup_distance is not None:
            self._stream_dedup = SimHashIndex(
                max_distance=self.dedup_distance
            )
            for post in supervisor.journal:
                fingerprint = simhash(post.text)
                if not self._stream_dedup.query(fingerprint):
                    self._stream_dedup.add(post.uid, fingerprint)

    # -- batch path --------------------------------------------------------------

    def digest(self, documents: Iterable[Document]) -> DigestResult:
        """Run the full batch pipeline over a document collection."""
        documents = list(documents)
        with _obs.span(
            "pipeline.digest", algorithm=self.algorithm,
            documents=len(documents),
        ) as span:
            duplicates = 0
            if self.dedup_distance is not None:
                dedup = SimHashIndex(max_distance=self.dedup_distance)
                kept_ids, dropped = dedup.deduplicate(
                    (doc.doc_id, doc.text) for doc in documents
                )
                duplicates = len(dropped)
                kept = set(kept_ids)
                documents = [d for d in documents if d.doc_id in kept]
            posts = self.matcher.to_posts_with_value(
                documents, value_of=self._value_of
            )
            unmatched = len(documents) - len(posts)
            instance = Instance(posts, self.lam, labels=self.matcher.labels)
            downgrades: Tuple[DowngradeEvent, ...] = ()
            if self.resilience is not None:
                ladder = self.resilience.batch_ladder or (self.algorithm,)
                solution, self._batch_rung, downgrades = solve_with_ladder(
                    instance,
                    ladder,
                    budget=self.resilience.digest_budget,
                    clock=self.resilience.clock,
                    start_rung=self._batch_rung,
                )
            else:
                solution = solve(self.algorithm, instance)
            span.set_attribute("digest_size", solution.size)
        if _obs.enabled():
            _obs.count("pipeline.digests")
            _obs.count("pipeline.documents", len(documents) + duplicates)
            _obs.count("pipeline.duplicates_dropped", duplicates)
            _obs.count("pipeline.unmatched_dropped", unmatched)
        return DigestResult(
            solution=solution,
            instance=instance,
            matched=len(posts),
            duplicates_dropped=duplicates,
            unmatched_dropped=unmatched,
            downgrades=downgrades,
        )

    # -- streaming path -----------------------------------------------------------

    def _ensure_stream(self):
        if self._stream is None and self._supervisor is None:
            if self.resilience is not None:
                ladder = (
                    self.resilience.stream_ladder
                    or (self.stream_algorithm,)
                )
                self._supervisor = StreamSupervisor(
                    self.matcher.labels,
                    self.lam,
                    self.tau,
                    ladder=ladder,
                    policy=self.resilience.policy,
                    arrival_budget=self.resilience.arrival_budget,
                    clock=self.resilience.clock,
                )
            else:
                factory = _STREAM_FACTORIES[self.stream_algorithm]
                self._stream = factory(
                    self.matcher.labels, self.lam, self.tau
                )
            if self.dedup_distance is not None:
                self._stream_dedup = SimHashIndex(
                    max_distance=self.dedup_distance
                )
        return self._stream

    def _dedup_probe(self, document: Document):
        """Check the stream SimHash index without registering.

        Returns ``(is_duplicate, fingerprint)``; the fingerprint is
        ``None`` when dedup is disabled.  Registration is deferred to the
        caller — a document must only enter the index once it is actually
        *admitted* (matched, in order, sanitization-approved).  Registering
        earlier lets a document the solver never sees shadow a later
        legitimate post: an unmatched or order-violating arrival would
        silently swallow its admitted near-twin.
        """
        if self._stream_dedup is None:
            return False, None
        fingerprint = simhash(document.text)
        return bool(self._stream_dedup.query(fingerprint)), fingerprint

    def _dedup_register(self, document: Document, fingerprint) -> None:
        if self._stream_dedup is not None and fingerprint is not None:
            self._stream_dedup.add(document.doc_id, fingerprint)

    def feed(self, document: Document) -> List[Emission]:
        """Push one document through the streaming path.

        Returns the emissions this arrival (plus any deadlines it
        overtook) triggered.  Documents must arrive in non-decreasing
        dimension order; time does naturally, anything else raises —
        unless the pipeline is supervised, in which case the
        sanitization policy decides.

        The stream clock advances only on *admitted* documents: a
        near-duplicate or unmatched document never reaches the solver,
        so it neither tightens the monotonicity gate nor fires
        deadlines.  Acting on its dimension value would let a document
        the solver never sees (whose value may be garbage — think a
        mis-parsed timestamp on an unmatched post) poison the gate for
        every later arrival.  The SimHash index obeys the same rule: a
        document's fingerprint is registered only once the document is
        admitted, so a dropped arrival can never shadow a later
        legitimate near-twin.
        """
        stream = self._ensure_stream()
        value = float(self._value_of(document))
        observed = _obs.enabled()
        if observed:
            _obs.count("pipeline.fed")
        duplicate, fingerprint = self._dedup_probe(document)
        if duplicate:
            if observed:
                _obs.count("pipeline.stream_duplicates_dropped")
            return []
        if self._supervisor is not None:
            # The supervisor owns ordering, dedup-by-uid and malformed
            # values; SimHash near-duplicate dropping stays here.
            labels = self.matcher.match(document.text)
            post = Post(
                uid=document.doc_id, value=value, labels=labels,
                text=document.text,
            )
            was_accepted = self._supervisor.accepted(post.uid)
            emissions = self._supervisor.ingest(post)
            # Register only on the transition into acceptance: a
            # quarantined arrival must not shadow a later near-twin, and
            # a duplicate-uid re-delivery must not re-register.
            if not was_accepted and self._supervisor.accepted(post.uid):
                self._dedup_register(document, fingerprint)
            return emissions
        labels = self.matcher.match(document.text)
        if not labels:
            if observed:
                _obs.count("pipeline.stream_unmatched_dropped")
            return []
        if value < self._last_value:
            raise StreamOrderError(
                f"document {document.doc_id} regresses on the "
                f"{self.dimension!r} dimension ({value} < "
                f"{self._last_value}); streaming needs a monotone "
                "dimension"
            )
        self._dedup_register(document, fingerprint)
        emissions: List[Emission] = []
        # fire deadlines the wall clock has passed
        while True:
            deadline = stream.next_deadline()
            if deadline is None or deadline >= value:
                break
            emissions.extend(stream.on_deadline(deadline))
        self._last_value = value
        post = Post(
            uid=document.doc_id, value=value, labels=labels,
            text=document.text,
        )
        emissions.extend(stream.on_arrival(post))
        if observed and emissions:
            _obs.count("pipeline.stream_emissions", len(emissions))
        return emissions

    def finish(self) -> List[Emission]:
        """Drain the streaming state at end of stream."""
        if self._stream is None and self._supervisor is None:
            return []
        if self._supervisor is not None:
            emissions = self._supervisor.flush()
        else:
            emissions = self._stream.flush()
        self._stream = None
        self._supervisor = None
        self._stream_dedup = None
        self._last_value = float("-inf")
        return emissions
