"""Shard planning: cutting an instance into independently solvable pieces.

The 1-D structure the paper exploits in Scan (Section 4.3) makes MQDP
instances *decomposable*: coverage never reaches further than lambda
along the diversity dimension, so any gap in the global value sequence
wider than lambda separates the instance into two halves that share no
coverage relation — for any label, under every solver in this
repository.  Solving the halves independently and taking the union is
exact:

* **Scan / Scan+** restart their greedy at the first post after a gap
  (the previous pick is more than lambda away), and no cross-label
  strike crosses a gap either — pick-for-pick parity.
* **GreedySC**'s set-cover family decomposes into independent blocks (no
  set spans a gap).  The global greedy's pick sequence restricted to a
  block *is* that block's own greedy sequence: a pick only changes
  residuals inside its block, and whenever the global argmax falls in a
  block it is that block's argmax under the shared lowest-index
  tie-break — so per-block greedy picks, concatenated, equal the global
  run's picks.

:func:`plan_shards` finds those gaps and balances them into at most
``max_shards`` contiguous slices.  When an instance has no usable gaps
(the dense worst case), :func:`plan_halo_shards` falls back to
equal-count cuts with a lambda *halo* on each side; halo shards are NOT
independent, so their merged result goes through :func:`stitch_repair`,
which re-verifies coverage with the existing verifier and repairs any
seam damage with the optimal 1-D per-label greedy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from ..core.coverage import uncovered_pairs, verify_cover
from ..core.instance import Instance
from ..core.post import Post
from .columnar import ColumnarInstance

__all__ = ["Shard", "ShardPlan", "plan_shards", "plan_halo_shards",
           "stitch_repair"]


@dataclass(frozen=True)
class Shard:
    """One contiguous slice of the global post order.

    ``[start, end)`` is the *core* the shard is responsible for;
    ``[halo_start, halo_end)`` is what it gets to look at.  Gap shards
    have ``halo_start == start`` and ``halo_end == end``.
    """

    start: int
    end: int
    halo_start: int
    halo_end: int

    @property
    def has_halo(self) -> bool:
        return self.halo_start != self.start or self.halo_end != self.end


@dataclass(frozen=True)
class ShardPlan:
    """The planner's output: how an instance splits, and how safely.

    ``kind`` is ``"single"`` (no split), ``"gap"`` (provably independent
    cuts — exact parity), or ``"halo"`` (overlapping cuts — requires
    :func:`stitch_repair`).  ``gap_cuts_available`` records how many safe
    cut points existed before balancing, for observability.
    """

    kind: str
    shards: Tuple[Shard, ...]
    gap_cuts_available: int

    def __len__(self) -> int:
        return len(self.shards)


def _gap_cut_positions(values: np.ndarray, lam: float) -> np.ndarray:
    """Indices ``k`` such that a shard may start at ``k``: the gap to the
    previous post is strictly wider than lambda (the same subtraction
    arithmetic the coverage verifier uses, so 'independent' here means
    independent under the verifier too)."""
    if len(values) < 2:
        return np.empty(0, dtype=np.int64)
    gaps = values[1:] - values[:-1]
    return np.flatnonzero(gaps > lam).astype(np.int64) + 1


def _cost_prefix(snap: ColumnarInstance) -> np.ndarray:
    """``cost[k]`` = solver cost of the first ``k`` posts, measured in
    ``(post, label)`` coverage pairs — what the per-shard work actually
    scales with (a post carrying four labels feeds four posting lists
    and four set-cover members, not one).  Balancing on raw post counts
    let label-dense regions pile into one shard, and the straggler set
    the wall clock."""
    cost = np.zeros(len(snap) + 1, dtype=np.int64)
    np.cumsum(snap.pair_counts, out=cost[1:])
    return cost


def _balance_cuts(
    cuts: np.ndarray, cost: np.ndarray, max_shards: int
) -> List[int]:
    """Pick at most ``max_shards - 1`` cut points, nearest to the ideal
    equal-**cost** boundaries, preserving order and uniqueness."""
    if max_shards <= 1 or len(cuts) == 0:
        return []
    if len(cuts) <= max_shards - 1:
        return [int(c) for c in cuts]
    total = float(cost[-1])
    cut_costs = cost[cuts]
    chosen: List[int] = []
    for k in range(1, max_shards):
        ideal = k * total / max_shards
        pos = int(np.searchsorted(cut_costs, ideal))
        best: Optional[int] = None
        best_gap = 0.0
        for cand_pos in (pos - 1, pos):
            if 0 <= cand_pos < len(cuts):
                cand = int(cuts[cand_pos])
                if cand in chosen:
                    continue
                gap = abs(float(cut_costs[cand_pos]) - ideal)
                if best is None or gap < best_gap:
                    best, best_gap = cand, gap
        if best is not None and (not chosen or best > chosen[-1]):
            chosen.append(best)
    return chosen


def plan_shards(
    snap: ColumnarInstance,
    max_shards: int,
    *,
    min_shard_posts: int = 1,
) -> ShardPlan:
    """Cut at global gaps wider than lambda; exact-parity shards only.

    Cuts are balanced by per-shard *cost* (coverage pairs), not raw post
    count.  Returns a ``"single"`` plan when no gap exists (or
    ``max_shards <= 1``) — callers wanting forced sharding use
    :func:`plan_halo_shards`.
    """
    n = len(snap)
    cuts = _gap_cut_positions(snap.values, snap.lam)
    if max_shards <= 1 or n == 0 or len(cuts) == 0:
        return ShardPlan(
            kind="single",
            shards=(Shard(0, n, 0, n),),
            gap_cuts_available=len(cuts),
        )
    chosen = _balance_cuts(cuts, _cost_prefix(snap), max_shards)
    if min_shard_posts > 1:
        filtered: List[int] = []
        prev = 0
        for cut in chosen:
            if cut - prev >= min_shard_posts:
                filtered.append(cut)
                prev = cut
        chosen = filtered
    if not chosen:
        return ShardPlan(
            kind="single",
            shards=(Shard(0, n, 0, n),),
            gap_cuts_available=len(cuts),
        )
    bounds = [0] + chosen + [n]
    shards = tuple(
        Shard(start, end, start, end)
        for start, end in zip(bounds, bounds[1:])
    )
    return ShardPlan(kind="gap", shards=shards,
                     gap_cuts_available=len(cuts))


def plan_halo_shards(
    snap: ColumnarInstance,
    shards: int,
) -> ShardPlan:
    """Equal-**cost** cuts with a lambda halo on each side.

    Each shard's halo contains every post within lambda of its core, so a
    shard solved in isolation covers all of its core's (post, label)
    pairs; the union over shards is therefore always a valid cover, but
    not a pick-parity one — seams can duplicate or misalign picks, which
    :func:`stitch_repair` cleans up.  Cores are bounded where the
    cumulative coverage-pair cost crosses the ideal equal split, so a
    label-dense region is spread over workers instead of becoming one
    straggler shard.
    """
    n = len(snap)
    values = snap.values
    lam = snap.lam
    cut_gaps = _gap_cut_positions(values, lam)
    if shards <= 1 or n < 2:
        return ShardPlan(kind="single", shards=(Shard(0, n, 0, n),),
                         gap_cuts_available=len(cut_gaps))
    cost = _cost_prefix(snap)
    total = float(cost[-1])
    bounds = sorted({
        int(np.searchsorted(cost, k * total / shards, side="left"))
        for k in range(1, shards)
    })
    bounds = [b for b in bounds if 0 < b < n]
    all_bounds = [0] + bounds + [n]
    out: List[Shard] = []
    for start, end in zip(all_bounds, all_bounds[1:]):
        lo = int(np.searchsorted(values, values[start] - lam, side="left"))
        hi = int(np.searchsorted(values, values[end - 1] + lam,
                                 side="right"))
        # one-step ulp widening; over-inclusion is harmless (halos only
        # add context), the verifier remains the arbiter of coverage
        lo = max(0, lo - 1)
        hi = min(n, hi + 1)
        out.append(Shard(start, end, lo, hi))
    return ShardPlan(kind="halo", shards=tuple(out),
                     gap_cuts_available=len(cut_gaps))


def _repair_label(
    instance: Instance, label: str, uncovered_uids: List[int]
) -> List[Post]:
    """Optimal 1-D greedy repair for one label's uncovered posts.

    Walks the uncovered posts left to right; for each leftmost uncovered
    one, picks the furthest posting-list member within lambda (the
    classical optimal move), which covers it and everything up to lambda
    to the pick's right.
    """
    lam = instance.lam
    plist = instance.posting(label)
    targets = sorted(
        (instance.post(uid).value, uid) for uid in uncovered_uids
    )
    picks: List[Post] = []
    idx = 0
    while idx < len(targets):
        value, _uid = targets[idx]
        lo, hi = plist.range_indices(value, value + lam)
        lo = max(0, lo - 1)
        hi = min(len(plist), hi + 1)
        best = None
        for j in range(hi - 1, lo - 1, -1):
            if abs(plist[j].value - value) <= lam:
                best = plist[j]
                break
        if best is None:  # the post itself is in the list; never happens
            best = instance.post(_uid)
        picks.append(best)
        while idx < len(targets) and abs(targets[idx][0] - best.value) <= lam:
            idx += 1
    return picks


def stitch_repair(
    instance: Instance, picks: List[Post]
) -> Tuple[List[Post], int]:
    """Re-verify a merged halo-shard cover and repair seam damage.

    Runs the existing verifier machinery (:func:`uncovered_pairs`) over
    the full instance; any pair a seam left uncovered is repaired with
    the optimal per-label 1-D greedy, then the result is verified
    outright — an invalid cover can never escape this function.

    Returns ``(repaired_picks, repairs_added)``.
    """
    missing = uncovered_pairs(instance, picks)
    added = 0
    if missing:
        by_label: dict = {}
        for uid, label in missing:
            by_label.setdefault(label, []).append(uid)
        repaired = {p.uid: p for p in picks}
        for label in sorted(by_label):
            for post in _repair_label(instance, label, by_label[label]):
                if post.uid not in repaired:
                    repaired[post.uid] = post
                    added += 1
        picks = sorted(repaired.values(), key=lambda p: (p.value, p.uid))
    verify_cover(instance, picks)
    return list(picks), added
