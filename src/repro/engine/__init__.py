"""The sharded parallel execution engine.

A performance layer beneath :mod:`repro.core`'s solver API, exploiting
the paper's 1-D structure (Section 4.3): coverage never reaches further
than lambda along the diversity dimension, so instances decompose at
value gaps wider than lambda into provably independent shards.

* :mod:`~repro.engine.columnar` — the struct-of-arrays instance
  snapshot every accelerated path shares (built once, cached weakly);
* :mod:`~repro.engine.kernels` — the vectorised Scan inner loop
  (``searchsorted`` hops, pick-for-pick parity with the scalar kernel);
* :mod:`~repro.engine.sharding` — the gap-cut planner, the lambda-halo
  fallback, and the verifier-backed stitch repair;
* :mod:`~repro.engine.executors` — pluggable ``serial`` / ``thread`` /
  ``process`` shard executors;
* :mod:`~repro.engine.parallel` — the sharded solvers
  (:func:`parallel_scan`, :func:`parallel_scan_plus`,
  :func:`parallel_greedy_sc`);
* :mod:`~repro.engine.auto` — the density probe behind GreedySC's
  ``engine="auto"`` family-builder selection.

See ``docs/performance.md`` for the correctness argument and the
executor selection guide; ``benchmarks/test_parallel.py`` emits the
``BENCH_parallel.json`` trajectory that tracks the speedups.
"""

from .auto import AUTO_PAIR_THRESHOLD, choose_engine, probe_pair_count
from .columnar import (
    ColumnarInstance,
    SharedSnapshot,
    ShardPayload,
    payload_from_shm,
    posting_values_from_shm,
    shared_snapshot,
    shm_available,
    snapshot,
)
from .executors import (
    ProcessExecutor,
    SerialExecutor,
    ShardExecutor,
    ThreadExecutor,
    default_workers,
    get_executor,
)
from .kernels import (
    first_uncovered,
    scan_label_kernel,
    scan_segment_kernel,
    scan_values_kernel,
)
from .parallel import (
    make_parallel_solver,
    parallel_greedy_sc,
    parallel_scan,
    parallel_scan_plus,
)
from .sharding import (
    Shard,
    ShardPlan,
    plan_halo_shards,
    plan_shards,
    stitch_repair,
)

__all__ = [
    # columnar snapshots
    "ColumnarInstance",
    "ShardPayload",
    "SharedSnapshot",
    "snapshot",
    "shared_snapshot",
    "shm_available",
    "payload_from_shm",
    "posting_values_from_shm",
    # kernels
    "scan_values_kernel",
    "scan_segment_kernel",
    "scan_label_kernel",
    "first_uncovered",
    # sharding
    "Shard",
    "ShardPlan",
    "plan_shards",
    "plan_halo_shards",
    "stitch_repair",
    # executors
    "ShardExecutor",
    "SerialExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "get_executor",
    "default_workers",
    # parallel solvers
    "make_parallel_solver",
    "parallel_scan",
    "parallel_scan_plus",
    "parallel_greedy_sc",
    # auto engine selection
    "AUTO_PAIR_THRESHOLD",
    "probe_pair_count",
    "choose_engine",
]
