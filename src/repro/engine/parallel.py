"""Sharded parallel MQDP solvers.

The public entry points — :func:`parallel_scan`,
:func:`parallel_scan_plus`, :func:`parallel_greedy_sc` — sit *beneath*
the existing solver API: same inputs, same :class:`Solution` outputs,
same covers, but the work is cut into shards and pushed through a
pluggable executor (``serial`` / ``thread`` / ``process``).

Parity contract (enforced by the property suite in
``tests/engine/test_parallel_parity.py``):

* With the default ``split="auto"``, every solver is **pick-for-pick
  identical** to its serial counterpart: Scan shards per label (chained
  exactly through the carry state, with speculative chunks re-run when a
  seam prediction misses), Scan+ and GreedySC shard only at global gaps
  wider than lambda, which are provably independent (see
  :mod:`repro.engine.sharding`).
* With ``split="halo"`` (forced sharding of gap-free instances), Scan+
  and GreedySC solve overlapping halo shards and the merged result goes
  through :func:`~repro.engine.sharding.stitch_repair` — the cover is
  re-verified by the existing verifier and seam damage repaired, so the
  output is always a valid cover, though its size may exceed the serial
  one by a few seam picks.

Process executors never pickle live instances.  Where
:mod:`multiprocessing.shared_memory` works, the columnar snapshot is
published **once** (:func:`~repro.engine.columnar.shared_snapshot`) and
a shard task is just ``(shm_name, start, end, ...)`` — workers attach to
the arrays and pay zero per-call serialisation.  Where it does not, the
shards travel as pickled :class:`~repro.engine.columnar.ShardPayload`
arrays exactly as before (the ``engine.<algo>.shm_tasks`` counter tells
the two apart).  Executors resolved from a string spec are closed after
the solve; pass a live :class:`~repro.engine.executors.ShardExecutor`
to keep a warm pool across calls.

Worker-side observability *counters* stay in the worker process; the
engine publishes its own counters (shards, tasks, halo posts, fix-up
re-runs, stitch repairs, and the parent-side stitch/merge time in
``engine.<algo>.stitch_us`` — the measured serial fraction) in the
parent.  Worker-side *spans* do cross back: every shard task runs
through :func:`~repro.observability.requesttrace.traced_run`, which
records a per-shard span in the caller's tracer (in-process executors)
or exports the worker's finished spans with the shard result and
re-parents them on return (process executors), so an assembled request
trace includes the shard work wherever it ran.
"""

from __future__ import annotations

import time as _time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import Instance
from ..core.post import Post
from ..core.scan import _scan_plus_posts, order_labels
from ..core.solution import Solution, timed_solution
from ..observability import facade as _obs
from ..observability.requesttrace import traced_run
from .columnar import (
    ShardPayload,
    payload_from_shm,
    posting_values_from_shm,
    shared_snapshot,
    snapshot,
)
from .executors import ProcessExecutor, ShardExecutor, get_executor
from .kernels import first_uncovered, scan_segment_kernel
from .sharding import plan_halo_shards, plan_shards, stitch_repair

__all__ = [
    "make_parallel_solver",
    "parallel_greedy_sc",
    "parallel_scan",
    "parallel_scan_plus",
]


def exec_is_process(executor: ShardExecutor) -> bool:
    return isinstance(executor, ProcessExecutor)


# ---------------------------------------------------------------------------
# worker functions (module-level: process executors must import them)
# ---------------------------------------------------------------------------

def _scan_task(values: np.ndarray, lam: float, start: int,
               boundary: int) -> Tuple[List[int], float]:
    """One Scan shard: picks (indices into ``values``) plus the last
    pick's value, the carry the merger chains on."""
    picks = scan_segment_kernel(values, lam, start, boundary)
    last = float(values[picks[-1]]) if picks else float("-inf")
    return picks, last


def _scan_task_shm(shm_name: str, label_index: int, start: int,
                   boundary: int) -> Tuple[List[int], float]:
    """Scan shard over the shared snapshot: the worker reads the label's
    full posting array from the segment, so picks come back in absolute
    posting-list indices — no slicing, no rebase."""
    values, lam = posting_values_from_shm(shm_name, label_index)
    return _scan_task(values, lam, start, boundary)


def _scan_plus_shard(payload: ShardPayload,
                     label_order: Sequence[str]) -> List[int]:
    """Scan+ over one shard, labels processed in the *global* order (the
    order restricted to a shard is what the serial run would apply to the
    shard's posts, which is what pick parity needs)."""
    sub = payload.to_instance()
    return [post.uid for post in _scan_plus_posts(sub, list(label_order))]


def _scan_plus_shard_shm(shm_name: str, start: int, end: int,
                         label_order: Sequence[str]) -> List[int]:
    return _scan_plus_shard(
        payload_from_shm(shm_name, start, end), label_order
    )


def _greedy_shard(payload: ShardPayload, strategy: str,
                  engine: str) -> List[int]:
    """GreedySC over one shard (engine resolved per shard when 'auto')."""
    from ..core.greedy_sc import _greedy_posts

    sub = payload.to_instance()
    return [post.uid for post in _greedy_posts(sub, strategy, engine)]


def _greedy_shard_shm(shm_name: str, start: int, end: int,
                      strategy: str, engine: str) -> List[int]:
    return _greedy_shard(
        payload_from_shm(shm_name, start, end), strategy, engine
    )


def _family_label_task(
    values: np.ndarray, offsets: np.ndarray, lam: float,
    label_index: int, n_labels: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """One label's slice of the encoded set-cover family."""
    from ..core.fastpath import _label_window_pairs

    coverer, encoded, _ = _label_window_pairs(
        values, offsets, lam, label_index, n_labels
    )
    return coverer, encoded


def _family_label_task_shm(
    shm_name: str, label_index: int, n_labels: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """One label's family slice, arrays read from the shared snapshot."""
    from ..core.fastpath import _label_window_pairs

    values, lam = posting_values_from_shm(shm_name, label_index)
    from .columnar import _attach

    entry = _attach(shm_name)
    posting_offsets = entry["posting_offsets"]
    offsets = entry["posting_flat"][
        int(posting_offsets[label_index]):
        int(posting_offsets[label_index + 1])
    ]
    coverer, encoded, _ = _label_window_pairs(
        values, offsets, lam, label_index, n_labels
    )
    return coverer, encoded


# ---------------------------------------------------------------------------
# Scan: per-label shards chained through the carry state
# ---------------------------------------------------------------------------

def _plan_label_tasks(
    values: np.ndarray, lam: float, quota: int,
) -> List[Tuple[int, int]]:
    """Split one posting array into ``[start, boundary)`` shard cores.

    Cuts first at the label's own within-list gaps wider than lambda
    (exact restarts); when the quota asks for more parallelism than the
    gaps offer, the largest pieces are chunked at arbitrary boundaries —
    those chunks are *speculative* and the merger may re-run them.
    """
    n = len(values)
    if n == 0:
        return []
    gaps = np.flatnonzero(values[1:] - values[:-1] > lam) + 1
    bounds = [0] + [int(g) for g in gaps] + [n]
    segments = list(zip(bounds, bounds[1:]))
    if len(segments) >= quota or quota <= 1:
        return segments
    # chunk the largest segments until the quota is met
    target = max(1, n // quota)
    tasks: List[Tuple[int, int]] = []
    for start, end in segments:
        size = end - start
        pieces = min(max(1, size // target), quota)
        if pieces <= 1:
            tasks.append((start, end))
            continue
        step = size / pieces
        cuts = sorted({start + round(k * step) for k in range(1, pieces)})
        cuts = [c for c in cuts if start < c < end]
        edges = [start] + cuts + [end]
        tasks.extend(zip(edges, edges[1:]))
    return tasks


def _scan_posts_parallel(
    instance: Instance,
    label_order: Sequence[str],
    executor: ShardExecutor,
    max_shards: int,
) -> List[Post]:
    snap = snapshot(instance)
    lam = snap.lam
    label_pos = {label: idx for idx, label in enumerate(snap.labels)}
    total_posting = sum(
        len(snap.posting_values[a]) for a in label_order
    )
    tasks: List[Tuple[str, int, int]] = []
    gap_tasks = 0
    for label in label_order:
        values = snap.posting_values[label]
        if len(values) == 0:
            continue
        quota = max(
            1, round(max_shards * len(values) / max(total_posting, 1))
        )
        label_tasks = _plan_label_tasks(values, lam, quota)
        gap_tasks += sum(
            1 for start, _ in label_tasks
            if start == 0 or values[start] - values[start - 1] > lam
        )
        tasks.extend((label, start, end) for start, end in label_tasks)

    # In-process executors share the full posting arrays and index into
    # them.  Process workers read the same arrays out of the shared
    # snapshot when available (task = a name and two indices, picks come
    # back absolute); only when shared memory is off do they get a copy
    # of just the slice they need (the core plus the lambda reach past
    # it), rebased on return.
    slicing = exec_is_process(executor)
    shared = shared_snapshot(instance) if slicing else None
    shm_fn = shared is not None
    args: List[tuple] = []
    rebase: List[int] = []
    for label, start, end in tasks:
        values = snap.posting_values[label]
        if shm_fn:
            args.append((shared.name, label_pos[label], start, end))
            rebase.append(0)
        elif slicing:
            reach = int(np.searchsorted(
                values, values[end - 1] + lam, side="right"
            ))
            reach = min(len(values), reach + 1)
            args.append((values[start:reach].copy(), lam, 0,
                         end - start))
            rebase.append(start)
        else:
            args.append((values, lam, start, end))
            rebase.append(0)
    results = traced_run(
        executor, _scan_task_shm if shm_fn else _scan_task, args,
        name="engine.scan.shard",
    )

    # Merge per label, left to right, chaining the carry state.  A task
    # whose speculative start does not match where coverage really
    # stopped is re-run from the true start — the re-run uses the same
    # vectorised kernel, so the worst (gap-free, fully mispredicted)
    # case degrades to the serial vectorised scan, never to a wrong one.
    merge_started = _time.perf_counter() if _obs.enabled() else 0.0
    picks_by_label: Dict[str, List[int]] = {a: [] for a in label_order}
    fixup_reruns = 0
    for (label, start, boundary), offset, (picks, last) in zip(
        tasks, rebase, results
    ):
        if offset:
            picks = [idx + offset for idx in picks]
        values = snap.posting_values[label]
        merged = picks_by_label[label]
        if merged:
            carry = values[merged[-1]]
            resume = first_uncovered(values, carry, lam, lo=0)
        else:
            resume = 0
        if resume >= boundary:
            continue  # shard fully covered by earlier picks
        if resume == start:
            merged.extend(picks)
        else:
            fixup_reruns += 1
            merged.extend(
                scan_segment_kernel(values, lam, resume, boundary)
            )

    if _obs.enabled():
        _obs.count("engine.scan.tasks", len(tasks))
        _obs.count("engine.scan.gap_tasks", gap_tasks)
        _obs.count("engine.scan.speculative_tasks",
                   len(tasks) - gap_tasks)
        _obs.count("engine.scan.fixup_reruns", fixup_reruns)
        if shm_fn:
            _obs.count("engine.scan.shm_tasks", len(tasks))
        _obs.count(
            "engine.scan.stitch_us",
            int((_time.perf_counter() - merge_started) * 1e6),
        )

    out: List[Post] = []
    for label in label_order:
        indices = snap.posting_indices[label]
        out.extend(
            instance.posts[int(indices[idx])]
            for idx in picks_by_label[label]
        )
    return out


def parallel_scan(
    instance: Instance,
    label_order: str = "sorted",
    *,
    executor="serial",
    workers: Optional[int] = None,
    max_shards: Optional[int] = None,
) -> Solution:
    """Sharded, vectorised Scan — pick-for-pick identical to
    :func:`repro.core.scan.scan`.

    Labels are embarrassingly parallel; inside a label the posting list
    splits at its own gaps wider than lambda (exact restarts) and, when
    more parallelism is requested than gaps exist, into speculative
    chunks whose seams are re-verified and re-run on mismatch.
    """
    exec_, owned = _resolve_executor(executor, workers)
    try:
        shards = _resolve_max_shards(max_shards, exec_)
        labels = order_labels(instance, label_order)
        if _obs.enabled():
            _obs.set_gauge("engine.workers", exec_.workers)
        return timed_solution(
            "parallel_scan", _scan_posts_parallel, instance, labels,
            exec_, shards,
        )
    finally:
        if owned:
            exec_.close()


# ---------------------------------------------------------------------------
# Scan+ / GreedySC: whole-instance shards at global gaps
# ---------------------------------------------------------------------------

def _resolve_executor(
    executor, workers: Optional[int]
) -> Tuple[ShardExecutor, bool]:
    """Resolve a spec; the second element says whether the engine owns
    the executor (string specs) and must close it after the solve —
    caller-provided instances keep their warm pools."""
    owned = not isinstance(executor, ShardExecutor)
    return get_executor(executor, workers), owned


def _resolve_max_shards(max_shards: Optional[int],
                        executor: ShardExecutor) -> int:
    """Default shard budget: a few tasks per worker for balance, with a
    floor so even the serial executor benefits from decomposition (for
    GreedySC, smaller shards mean quadratically fewer rescan steps)."""
    if max_shards is not None:
        if max_shards < 1:
            raise ValueError(f"max_shards must be >= 1, got {max_shards}")
        return max_shards
    return min(max(8, 4 * executor.workers), 256)


def _instance_shards(
    instance: Instance, max_shards: int, split: str
):
    """Plan whole-instance shards; returns ``(plan, snap)``."""
    if split not in ("auto", "gap", "halo"):
        raise ValueError(
            f"unknown split {split!r}; expected 'auto', 'gap' or 'halo'"
        )
    snap = snapshot(instance)
    plan = plan_shards(snap, max_shards)
    if split == "halo" and len(plan) < max_shards:
        plan = plan_halo_shards(snap, max_shards)
    return plan, snap


def _shard_run(
    instance: Instance,
    plan,
    snap,
    executor: ShardExecutor,
    algo: str,
    payload_fn: Callable,
    shm_fn: Callable,
    extra: tuple,
) -> Sequence[List[int]]:
    """Fan the plan's shards out: shared-memory references for process
    executors when a segment is available, pickled payloads otherwise."""
    shared = (
        shared_snapshot(instance) if exec_is_process(executor) else None
    )
    if shared is not None:
        tasks = [
            (shared.name, shard.halo_start, shard.halo_end) + extra
            for shard in plan.shards
        ]
        fn = shm_fn
        if _obs.enabled():
            _obs.count(f"engine.{algo}.shm_tasks", len(tasks))
    else:
        tasks = [
            (snap.payload(shard.halo_start, shard.halo_end),) + extra
            for shard in plan.shards
        ]
        fn = payload_fn
    return traced_run(executor, fn, tasks, name=f"engine.{algo}.shard")


def _count_plan(plan, algo: str) -> None:
    if not _obs.enabled():
        return
    _obs.count(f"engine.{algo}.shards", len(plan))
    _obs.count(f"engine.{algo}.gap_cuts_available",
               plan.gap_cuts_available)
    if plan.kind == "halo":
        _obs.count(f"engine.{algo}.halo_shards", len(plan))
        halo_posts = sum(
            (shard.start - shard.halo_start)
            + (shard.halo_end - shard.end)
            for shard in plan.shards
        )
        _obs.count(f"engine.{algo}.halo_posts", halo_posts)


def _merge_shard_uids(
    instance: Instance, plan, uid_lists: Sequence[List[int]],
    algo: str,
) -> List[Post]:
    """Union shard picks; for halo plans keep core picks, then stitch.

    This is the parent-side serial phase of every sharded solve — it is
    timed (``engine.<algo>.stitch_us``) and spanned so the serial
    fraction limiting the scaling curve is measured, not guessed.
    """
    if plan.kind != "halo":
        return [
            instance.post(uid) for uids in uid_lists for uid in uids
        ]
    started = _time.perf_counter() if _obs.enabled() else 0.0
    with _obs.span(f"engine.{algo}.stitch", shards=len(plan)):
        snap = snapshot(instance)
        index_of = {int(uid): k for k, uid in enumerate(snap.uids)}
        kept: Dict[int, Post] = {}
        for shard, uids in zip(plan.shards, uid_lists):
            for uid in uids:
                k = index_of[uid]
                if shard.start <= k < shard.end:
                    kept[uid] = instance.post(uid)
        picks, repairs = stitch_repair(instance, list(kept.values()))
    if _obs.enabled():
        _obs.count(f"engine.{algo}.stitch_repairs", repairs)
        _obs.count(
            f"engine.{algo}.stitch_us",
            int((_time.perf_counter() - started) * 1e6),
        )
    return picks


def _scan_plus_posts_parallel(
    instance: Instance,
    label_order: Sequence[str],
    executor: ShardExecutor,
    max_shards: int,
    split: str,
) -> List[Post]:
    plan, snap = _instance_shards(instance, max_shards, split)
    _count_plan(plan, "scan_plus")
    if len(plan) == 1:
        return _scan_plus_posts(instance, list(label_order))
    order = tuple(label_order)
    uid_lists = _shard_run(
        instance, plan, snap, executor, "scan_plus",
        _scan_plus_shard, _scan_plus_shard_shm, (order,),
    )
    return _merge_shard_uids(instance, plan, uid_lists, "scan_plus")


def parallel_scan_plus(
    instance: Instance,
    label_order: str = "sorted",
    *,
    executor="serial",
    workers: Optional[int] = None,
    max_shards: Optional[int] = None,
    split: str = "auto",
) -> Solution:
    """Sharded Scan+.

    Shards only at global gaps wider than lambda by default (cross-label
    strikes never cross such a gap, so parity with
    :func:`repro.core.scan.scan_plus` is exact; a gap-free instance runs
    serially).  ``split="halo"`` forces equal-cost halo shards whose
    merged cover is stitch-repaired and re-verified.
    """
    exec_, owned = _resolve_executor(executor, workers)
    try:
        shards = _resolve_max_shards(max_shards, exec_)
        labels = order_labels(instance, label_order)
        if _obs.enabled():
            _obs.set_gauge("engine.workers", exec_.workers)
        return timed_solution(
            "parallel_scan+", _scan_plus_posts_parallel, instance, labels,
            exec_, shards, split,
        )
    finally:
        if owned:
            exec_.close()


def _greedy_posts_parallel(
    instance: Instance,
    strategy: str,
    engine: str,
    executor: ShardExecutor,
    max_shards: int,
    split: str,
) -> List[Post]:
    from ..core.greedy_sc import _greedy_posts
    from ..setcover import greedy_set_cover

    plan, snap = _instance_shards(instance, max_shards, split)
    _count_plan(plan, "greedy_sc")
    if len(plan) > 1:
        uid_lists = _shard_run(
            instance, plan, snap, executor, "greedy_sc",
            _greedy_shard, _greedy_shard_shm, (strategy, engine),
        )
        return _merge_shard_uids(instance, plan, uid_lists, "greedy_sc")

    # No safe cuts: the greedy rounds stay global, but the family build
    # is embarrassingly parallel per label.
    labels = snap.labels
    n_labels = len(labels)
    meta = [
        (snap.posting_indices[label], label_index)
        for label_index, label in enumerate(labels)
        if len(snap.posting_values[label])
    ]
    if not meta:
        return []
    if _obs.enabled():
        _obs.count("engine.greedy_sc.family_label_tasks", len(meta))
    from ..core.fastpath import _update_family

    shared = (
        shared_snapshot(instance) if exec_is_process(executor) else None
    )
    if shared is not None:
        tasks: List[tuple] = [
            (shared.name, label_index, n_labels)
            for _offsets, label_index in meta
        ]
        fn: Callable = _family_label_task_shm
        if _obs.enabled():
            _obs.count("engine.greedy_sc.shm_tasks", len(tasks))
    else:
        tasks = [
            (snap.posting_values[labels[label_index]], offsets,
             snap.lam, label_index, n_labels)
            for offsets, label_index in meta
        ]
        fn = _family_label_task
    results = traced_run(executor, fn, tasks,
                         name="engine.greedy_sc.family_label")
    started = _time.perf_counter() if _obs.enabled() else 0.0
    family: List[set] = [set() for _ in instance.posts]
    universe: set = set()
    for (offsets, label_index), (coverer, encoded) in zip(meta, results):
        _update_family(family, coverer, encoded)
        universe.update(
            (offsets * n_labels + label_index).tolist()
        )
    chosen = greedy_set_cover(family, universe=universe,
                              strategy=strategy)
    if _obs.enabled():
        _obs.count(
            "engine.greedy_sc.stitch_us",
            int((_time.perf_counter() - started) * 1e6),
        )
    return [instance.posts[k] for k in chosen]


def parallel_greedy_sc(
    instance: Instance,
    strategy: str = "rescan",
    engine: str = "auto",
    *,
    executor="serial",
    workers: Optional[int] = None,
    max_shards: Optional[int] = None,
    split: str = "auto",
) -> Solution:
    """Sharded GreedySC.

    At global gaps the set-cover family decomposes into independent
    blocks, so per-shard greedy runs concatenate to exactly the global
    greedy's picks — and each shard's rescan pays quadratically less
    than the monolithic run, which is why this path is faster even on
    one core.  Gap-free instances keep the greedy global but build the
    pair family in parallel, one label per task.  ``split="halo"``
    forces overlapping shards with stitch repair (verified, not
    pick-parity).
    """
    exec_, owned = _resolve_executor(executor, workers)
    try:
        shards = _resolve_max_shards(max_shards, exec_)
        if _obs.enabled():
            _obs.set_gauge("engine.workers", exec_.workers)
        return timed_solution(
            "parallel_greedy_sc", _greedy_posts_parallel, instance,
            strategy, engine, exec_, shards, split,
        )
    finally:
        if owned:
            exec_.close()


# ---------------------------------------------------------------------------
# Registry-compatible solver factory
# ---------------------------------------------------------------------------

_PARALLEL_KINDS: Dict[str, Callable[..., Solution]] = {
    "scan": parallel_scan,
    "scan+": parallel_scan_plus,
    "greedy_sc": parallel_greedy_sc,
}


def make_parallel_solver(
    kind: str,
    *,
    executor="serial",
    workers: Optional[int] = None,
    max_shards: Optional[int] = None,
    **extra,
) -> Callable[[Instance], Solution]:
    """A registry-compatible ``solver(instance)`` with a pinned engine.

    The core registry speaks the uniform ``solver(instance) -> Solution``
    signature, but the parallel engines need an executor choice.  This
    closes over one — so a deployment (or a test) can do::

        register("scan.procs", make_parallel_solver(
            "scan", executor=ProcessExecutor(4)))

    and serve it like any built-in, including through
    :class:`~repro.service.DiversificationService` (where the worker
    spans the executor produces are adopted into the request trace).
    Pass an executor *instance* (as above) to keep one warm pool across
    every solve the registered solver serves; a string spec builds and
    closes a pool per call.  ``extra`` kwargs (``split``, ``strategy``,
    ...) pass through to the underlying engine unchanged.
    """
    try:
        engine_fn = _PARALLEL_KINDS[kind]
    except KeyError:
        raise ValueError(
            f"unknown parallel solver kind {kind!r}; expected one of "
            + ", ".join(sorted(_PARALLEL_KINDS))
        ) from None

    def _solver(instance: Instance) -> Solution:
        return engine_fn(
            instance,
            executor=executor,
            workers=workers,
            max_shards=max_shards,
            **extra,
        )

    _solver.__name__ = f"parallel_{kind}_solver"
    _solver.__qualname__ = _solver.__name__
    return _solver
