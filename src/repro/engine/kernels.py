"""Vectorised scan kernels.

:func:`repro.core.scan.scan_label` walks a posting list one index at a
time: ``O(|LP|)`` Python-level loop iterations however sparse the picks
are.  On the day-long workloads a single lambda window holds dozens of
posts, so almost all of those iterations merely step *through* a window
already decided.  :func:`scan_label_kernel` replaces both inner walks
with ``numpy.searchsorted`` hops over the columnar value array: one
``O(log n)`` hop to find the furthest post within lambda of the leftmost
uncovered one, one hop to skip everything the pick covers.  The loop now
runs once per *pick*, not once per post.

Parity discipline: ``searchsorted`` compares against ``left + lam``
(an addition) while the scalar kernel compares ``values[j] - left <= lam``
(a subtraction); the two can disagree by one ulp at window boundaries.
As everywhere else in this repository the bisect result is only a
pre-seek — short exact-arithmetic correction loops around each hop make
the *subtraction* test the final arbiter, so the kernel is pick-for-pick
identical to the scalar loop (property-tested, and re-checked under
``python -O`` by the CI job that strips asserts: the kernel's correctness
never rests on an ``assert``).
"""

from __future__ import annotations

from typing import List

import numpy as np

__all__ = ["scan_label_kernel", "scan_values_kernel",
           "scan_segment_kernel", "first_uncovered"]


def scan_values_kernel(values: np.ndarray, lam: float) -> List[int]:
    """Pick indices for one sorted value array (vectorised Scan inner loop).

    Parameters
    ----------
    values:
        Ascending ``float64`` array — one label's posting values.
    lam:
        Coverage threshold.

    Returns
    -------
    list of int
        Indices into ``values`` of the picks, in order; identical to the
        indices :func:`repro.core.scan.scan_label` would pick.
    """
    picks: List[int] = []
    n = len(values)
    i = 0
    while i < n:
        left = values[i]
        # furthest index whose value is within lam of `left`
        j = int(np.searchsorted(values, left + lam, side="right")) - 1
        if j < i:
            j = i
        # exact-arithmetic correction: the subtraction test decides
        while j + 1 < n and values[j + 1] - left <= lam:
            j += 1
        while j > i and values[j] - left > lam:
            j -= 1
        picks.append(j)
        picked = values[j]
        # first index not covered by the pick
        i = int(np.searchsorted(values, picked + lam, side="right"))
        if i <= j:
            i = j + 1
        while i < n and values[i] - picked <= lam:
            i += 1
        while i > j + 1 and values[i - 1] - picked > lam:
            i -= 1
    return picks


def scan_segment_kernel(
    values: np.ndarray, lam: float, start: int, boundary: int,
) -> List[int]:
    """The kernel run over one shard: anchors in ``[start, boundary)``.

    The *leftmost-uncovered* pointer is confined to the segment, but each
    pick's reach is looked up over the whole array — a pick may therefore
    lie at or beyond ``boundary`` (that is the lambda halo a shard needs
    to see), and its coverage may consume posts past the boundary.  The
    caller chains segments by computing where coverage actually stopped
    with :func:`first_uncovered` on the last pick.

    Returns pick indices into ``values``; ``scan_segment_kernel(v, lam,
    0, len(v))`` is exactly :func:`scan_values_kernel`.
    """
    picks: List[int] = []
    n = len(values)
    i = start
    while i < boundary:
        left = values[i]
        j = int(np.searchsorted(values, left + lam, side="right")) - 1
        if j < i:
            j = i
        while j + 1 < n and values[j + 1] - left <= lam:
            j += 1
        while j > i and values[j] - left > lam:
            j -= 1
        picks.append(j)
        picked = values[j]
        i = int(np.searchsorted(values, picked + lam, side="right"))
        if i <= j:
            i = j + 1
        while i < n and values[i] - picked <= lam:
            i += 1
        while i > j + 1 and values[i - 1] - picked > lam:
            i -= 1
    return picks


def first_uncovered(
    values: np.ndarray, last_pick_value: float, lam: float, lo: int = 0,
) -> int:
    """First index at or after ``lo`` not covered by the last pick.

    The seam primitive of the sharded Scan: given the carry state (the
    previous shard's final pick), it tells the next shard where the
    serial kernel would really resume — the exact subtraction arithmetic
    is again the arbiter after a ``searchsorted`` pre-seek.
    """
    n = len(values)
    i = int(np.searchsorted(values, last_pick_value + lam, side="right"))
    if i < lo:
        i = lo
    while i < n and values[i] - last_pick_value <= lam:
        i += 1
    while i > lo and values[i - 1] - last_pick_value > lam:
        i -= 1
    return i


def scan_label_kernel(
    posting_values: np.ndarray, lam: float, start: int = 0,
    end: int = None,
) -> List[int]:
    """:func:`scan_values_kernel` over a slice ``[start, end)``.

    Returns indices relative to the *full* ``posting_values`` array, which
    is what the shard merger wants.
    """
    if end is None:
        end = len(posting_values)
    local = scan_values_kernel(posting_values[start:end], lam)
    return [start + idx for idx in local]
