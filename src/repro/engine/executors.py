"""Pluggable shard executors: serial / thread / process.

A deliberately narrow contract: an executor maps a **top-level function**
over a list of task tuples and returns the results in task order.  That
is all the parallel solvers need, and it is the strictest common
denominator — process pools additionally require the function to be
importable and every task to be picklable, which the solvers honour by
shipping :class:`~repro.engine.columnar.ShardPayload` objects (flat
arrays) rather than live instances.

``get_executor`` resolves the user-facing spec:

========== ===========================================================
``serial``  in-process loop; zero overhead, the parity baseline
``thread``  ``ThreadPoolExecutor``; shares memory, helps when the work
            releases the GIL (numpy kernels) or is I/O-bound
``process`` ``ProcessPoolExecutor``; true parallelism, pays pickling —
            kept cheap by the columnar payloads
========== ===========================================================
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, List, Optional, Sequence, Tuple

__all__ = ["ShardExecutor", "SerialExecutor", "ThreadExecutor",
           "ProcessExecutor", "get_executor", "default_workers"]


def default_workers() -> int:
    """A sane worker default: the CPU count, at least 1."""
    return max(1, os.cpu_count() or 1)


class ShardExecutor:
    """Maps a function over task tuples, preserving task order."""

    name = "abstract"
    workers = 1

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> List:
        raise NotImplementedError


class SerialExecutor(ShardExecutor):
    """The in-process baseline every parity test compares against."""

    name = "serial"

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> List:
        return [fn(*task) for task in tasks]


class ThreadExecutor(ShardExecutor):
    name = "thread"

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers or default_workers()

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> List:
        if len(tasks) <= 1 or self.workers <= 1:
            return [fn(*task) for task in tasks]
        with ThreadPoolExecutor(max_workers=self.workers) as pool:
            return list(pool.map(lambda task: fn(*task), tasks))


class ProcessExecutor(ShardExecutor):
    """Worker processes; ``fn`` must be a module-level function and every
    task element picklable (the solvers pass columnar payloads)."""

    name = "process"

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers or default_workers()

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> List:
        if len(tasks) <= 1 or self.workers <= 1:
            return [fn(*task) for task in tasks]
        with ProcessPoolExecutor(max_workers=self.workers) as pool:
            futures = [pool.submit(fn, *task) for task in tasks]
            return [future.result() for future in futures]


def get_executor(
    spec, workers: Optional[int] = None
) -> ShardExecutor:
    """Resolve an executor spec: a name, or an executor instance."""
    if isinstance(spec, ShardExecutor):
        return spec
    if spec == "serial":
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor(workers)
    if spec == "process":
        return ProcessExecutor(workers)
    raise ValueError(
        f"unknown executor {spec!r}; expected 'serial', 'thread', "
        f"'process', or a ShardExecutor instance"
    )
