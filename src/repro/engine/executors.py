"""Pluggable shard executors: serial / thread / process.

A deliberately narrow contract: an executor maps a **top-level function**
over a list of task tuples and returns the results in task order.  That
is all the parallel solvers need, and it is the strictest common
denominator — process pools additionally require the function to be
importable and every task to be picklable, which the solvers honour by
shipping :class:`~repro.engine.columnar.ShardPayload` objects (flat
arrays) or :class:`~repro.engine.columnar.SharedSnapshot` references
rather than live instances.

Pool lifecycle
--------------

``ThreadExecutor`` and ``ProcessExecutor`` own **one lazily-created
pool, reused across ``run()`` calls**.  Spinning a fresh pool inside
every call — the original design — charged every solve the full pool
start-up (process fork + interpreter warm-up for process pools), which
is exactly the per-call overhead that flattened the measured scaling
curve.  The pool is created on the first ``run()`` that needs it and
lives until :meth:`~ShardExecutor.close` (or the context manager exit);
a closed executor stays usable — the next ``run()`` simply builds a new
pool.

Callers that want a warm pool must therefore hold the executor instance
across calls (the service does; benchmarks do).  When the engine
resolves a *string* spec itself it also closes the executor after the
solve, so one-shot ``executor="process"`` calls keep their original
no-leak semantics.

``get_executor`` resolves the user-facing spec:

========== ===========================================================
``serial``  in-process loop; zero overhead, the parity baseline
``thread``  ``ThreadPoolExecutor``; shares memory, helps when the work
            releases the GIL (numpy kernels) or is I/O-bound
``process`` ``ProcessPoolExecutor``; true parallelism, pays pickling —
            kept cheap by shared-memory snapshots / columnar payloads
========== ===========================================================
"""

from __future__ import annotations

import os
import pickle
import threading
from concurrent.futures import (
    FIRST_EXCEPTION,
    BrokenExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from typing import Callable, List, Optional, Sequence

__all__ = ["ShardExecutor", "SerialExecutor", "ThreadExecutor",
           "ProcessExecutor", "get_executor", "default_workers"]


def default_workers() -> int:
    """Workers this process may actually schedule, at least 1.

    ``os.cpu_count()`` reports the machine, not the process: under a
    cgroup CPU limit or an affinity mask (CI containers, ``taskset``) it
    overcounts, and the surplus workers just contend.  The scheduling
    affinity mask is the honest number where the platform exposes it.
    """
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):
        return max(1, os.cpu_count() or 1)


class ShardExecutor:
    """Maps a function over task tuples, preserving task order."""

    name = "abstract"
    workers = 1

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> List:
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources.  The executor stays usable: the
        next :meth:`run` lazily builds a fresh pool."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SerialExecutor(ShardExecutor):
    """The in-process baseline every parity test compares against."""

    name = "serial"

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> List:
        return [fn(*task) for task in tasks]


class _PooledExecutor(ShardExecutor):
    """Shared lifecycle for the thread/process executors: one lazily
    created pool, reused across ``run()`` calls, torn down by
    :meth:`close` — and fail-fast error handling (the first failing
    shard cancels every shard still queued)."""

    def __init__(self, workers: Optional[int] = None):
        self.workers = workers or default_workers()
        self._pool = None
        self._lock = threading.Lock()

    @property
    def alive(self) -> bool:
        """True while a warm pool exists."""
        return self._pool is not None

    def _make_pool(self):
        raise NotImplementedError

    def _ensure_pool(self):
        pool = self._pool
        if pool is None:
            with self._lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = self._make_pool()
        return pool

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> List:
        if len(tasks) <= 1 or self.workers <= 1:
            return [fn(*task) for task in tasks]
        pool = self._ensure_pool()
        try:
            futures = [pool.submit(fn, *task) for task in tasks]
            done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        except BrokenExecutor:
            self.close()
            raise
        failures = [
            future for future in futures
            if future in done and not future.cancelled()
            and future.exception() is not None
        ]
        if failures:
            # Fail fast: shards still queued must not run to completion
            # behind a failure nobody will read.  Cancel them, then
            # surface the *first* failure in submission order (raising
            # through result() keeps the original traceback).
            for future in pending:
                future.cancel()
            if isinstance(failures[0].exception(), BrokenExecutor):
                self.close()
            failures[0].result()
        return [future.result() for future in futures]

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True, cancel_futures=True)

    def __del__(self):  # pragma: no cover - GC backstop, not the API
        pool = getattr(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False)


class ThreadExecutor(_PooledExecutor):
    name = "thread"

    def _make_pool(self):
        return ThreadPoolExecutor(max_workers=self.workers)


class ProcessExecutor(_PooledExecutor):
    """Worker processes; ``fn`` must be a module-level function and every
    task element picklable (the solvers pass shared-memory references or
    columnar payloads)."""

    name = "process"

    def _make_pool(self):
        return ProcessPoolExecutor(max_workers=self.workers)

    def run(self, fn: Callable, tasks: Sequence[tuple]) -> List:
        if len(tasks) > 1 and self.workers > 1:
            # Reject unpicklable functions (lambdas, locals) before they
            # reach the pool: a work item that fails to pickle on the
            # queue-feeder thread leaves ProcessPoolExecutor.shutdown
            # hanging forever on CPython 3.11 — a clear error here beats
            # a deadlocked close() later.
            try:
                pickle.dumps(fn)
            except Exception as err:
                raise TypeError(
                    f"process executor requires a picklable module-level "
                    f"function, got {fn!r}"
                ) from err
        return super().run(fn, tasks)


def get_executor(
    spec, workers: Optional[int] = None
) -> ShardExecutor:
    """Resolve an executor spec: a name, or an executor instance.

    A name builds a *fresh* executor; hold the instance (and
    :meth:`~ShardExecutor.close` it) to keep a warm pool across solves —
    the engine closes executors it resolved from strings itself, so
    one-shot calls never leak pools.
    """
    if isinstance(spec, ShardExecutor):
        return spec
    if spec == "serial":
        return SerialExecutor()
    if spec == "thread":
        return ThreadExecutor(workers)
    if spec == "process":
        return ProcessExecutor(workers)
    raise ValueError(
        f"unknown executor {spec!r}; expected 'serial', 'thread', "
        f"'process', or a ShardExecutor instance"
    )
