"""Columnar (struct-of-arrays) instance snapshots.

Every accelerated path in :mod:`repro.engine` wants the same three things
from an :class:`~repro.core.instance.Instance`: the global value array,
the per-label posting lists as *index arrays* into it, and a cheap way to
ship a contiguous slice of posts to another process.  Building those from
the object model costs one ``np.fromiter`` per posting list per call —
exactly the rebuild :mod:`repro.core.fastpath` used to pay on every
``build_family_encoded`` invocation.

A :class:`ColumnarInstance` materialises them **once per instance** and is
cached in a :class:`weakref.WeakKeyDictionary`, so every solver, probe and
shard planner reuses the same arrays; the cache dies with the instance.

For process executors the snapshot slices into :class:`ShardPayload`
objects: plain arrays plus integer-encoded label sets, which pickle in
microseconds and rebuild into a fully-fledged sub-``Instance`` on the
worker side (:meth:`ShardPayload.to_instance`).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import Instance
from ..core.post import Post

__all__ = ["ColumnarInstance", "ShardPayload", "snapshot"]


class ColumnarInstance:
    """Struct-of-arrays view of an instance (posts stay in value order).

    Attributes
    ----------
    lam:
        The instance's lambda threshold.
    labels:
        The label universe, sorted — label *index* means position here.
    values:
        ``float64[n]`` — every post's diversity value, ascending.
    uids:
        ``int64[n]`` — the posts' uids, aligned with ``values``.
    label_sets:
        Per post, the tuple of label indices it carries (ragged, so a
        tuple of tuples rather than an array).
    posting_indices:
        label -> ``int64`` array of *global post indices* in ``LP(label)``
        order (which is value order, so each array is sorted).
    posting_values:
        label -> ``float64`` array, ``values[posting_indices[label]]``.
    """

    __slots__ = (
        "lam", "labels", "values", "uids", "label_sets",
        "posting_indices", "posting_values", "__weakref__",
    )

    def __init__(self, instance: Instance):
        posts = instance.posts
        self.lam = instance.lam
        self.labels: Tuple[str, ...] = tuple(sorted(instance.labels))
        label_pos = {label: idx for idx, label in enumerate(self.labels)}
        n = len(posts)
        self.values = np.fromiter(
            (p.value for p in posts), dtype=np.float64, count=n
        )
        self.uids = np.fromiter(
            (p.uid for p in posts), dtype=np.int64, count=n
        )
        self.label_sets: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(label_pos[a] for a in p.labels)) for p in posts
        )
        buckets: Dict[str, List[int]] = {a: [] for a in self.labels}
        for k, p in enumerate(posts):
            for a in p.labels:
                buckets[a].append(k)
        self.posting_indices = {
            a: np.asarray(bucket, dtype=np.int64)
            for a, bucket in buckets.items()
        }
        self.posting_values = {
            a: self.values[idx] for a, idx in self.posting_indices.items()
        }

    def __len__(self) -> int:
        return len(self.values)

    def payload(self, start: int, end: int) -> "ShardPayload":
        """The picklable payload for the post slice ``[start, end)``."""
        return ShardPayload(
            lam=self.lam,
            labels=self.labels,
            values=self.values[start:end],
            uids=self.uids[start:end],
            label_sets=self.label_sets[start:end],
        )


class ShardPayload:
    """A contiguous post slice in columnar form, cheap to pickle.

    Process workers receive one of these instead of an :class:`Instance`:
    two flat arrays plus integer label sets, reconstructed into a
    sub-instance on the far side.  The declared label universe is the
    *parent's*, so label indices (and the fastpath pair encoding) agree
    across shards.
    """

    __slots__ = ("lam", "labels", "values", "uids", "label_sets")

    def __init__(
        self,
        lam: float,
        labels: Sequence[str],
        values: np.ndarray,
        uids: np.ndarray,
        label_sets: Sequence[Tuple[int, ...]],
    ):
        self.lam = lam
        self.labels = tuple(labels)
        self.values = values
        self.uids = uids
        self.label_sets = tuple(label_sets)

    # ShardPayload is pickled into process workers; __slots__ classes
    # need explicit state hooks.
    def __getstate__(self):
        return (self.lam, self.labels, self.values, self.uids,
                self.label_sets)

    def __setstate__(self, state):
        (self.lam, self.labels, self.values, self.uids,
         self.label_sets) = state

    def __len__(self) -> int:
        return len(self.values)

    def to_instance(self) -> Instance:
        """Rebuild the shard as a real :class:`Instance`."""
        posts = [
            Post(
                uid=int(uid),
                value=float(value),
                labels=frozenset(self.labels[i] for i in label_set),
            )
            for uid, value, label_set in zip(
                self.uids, self.values, self.label_sets
            )
        ]
        return Instance(posts, self.lam, labels=self.labels)


_CACHE: "weakref.WeakKeyDictionary[Instance, ColumnarInstance]" = (
    weakref.WeakKeyDictionary()
)


def snapshot(instance: Instance) -> ColumnarInstance:
    """The cached columnar snapshot of ``instance`` (built on first use)."""
    snap = _CACHE.get(instance)
    if snap is None:
        snap = ColumnarInstance(instance)
        _CACHE[instance] = snap
    return snap
