"""Columnar (struct-of-arrays) instance snapshots.

Every accelerated path in :mod:`repro.engine` wants the same three things
from an :class:`~repro.core.instance.Instance`: the global value array,
the per-label posting lists as *index arrays* into it, and a cheap way to
ship a contiguous slice of posts to another process.  Building those from
the object model costs one ``np.fromiter`` per posting list per call —
exactly the rebuild :mod:`repro.core.fastpath` used to pay on every
``build_family_encoded`` invocation.

A :class:`ColumnarInstance` materialises them **once per instance** and is
cached in a :class:`weakref.WeakKeyDictionary` (behind a lock — thread
executors hit ``snapshot`` concurrently), so every solver, probe and
shard planner reuses the same arrays; the cache dies with the instance.

Shipping a shard to another process has two tiers:

* :class:`ShardPayload` — plain arrays plus integer-encoded label sets,
  pickled per task.  Always available; the fallback tier.
* :class:`SharedSnapshot` — the whole snapshot published **once** into a
  :mod:`multiprocessing.shared_memory` segment.  Workers attach by name
  (cached per process) and build payloads as zero-copy views, so a task
  shrinks to ``(shm_name, start, end)`` and per-call serialisation drops
  to a few bytes.  :func:`shared_snapshot` returns ``None`` wherever
  shared memory is unavailable, and the callers fall back to payloads.
"""

from __future__ import annotations

import pickle
import struct
import threading
import weakref
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..core.instance import Instance
from ..core.post import Post

__all__ = [
    "ColumnarInstance",
    "ShardPayload",
    "SharedSnapshot",
    "payload_from_shm",
    "posting_values_from_shm",
    "shared_snapshot",
    "shm_available",
    "snapshot",
]


class ColumnarInstance:
    """Struct-of-arrays view of an instance (posts stay in value order).

    Attributes
    ----------
    lam:
        The instance's lambda threshold.
    labels:
        The label universe, sorted — label *index* means position here.
    values:
        ``float64[n]`` — every post's diversity value, ascending.
    uids:
        ``int64[n]`` — the posts' uids, aligned with ``values``.
    label_sets:
        Per post, the tuple of label indices it carries (ragged, so a
        tuple of tuples rather than an array).
    pair_counts:
        ``int64[n]`` — ``len(label_sets[k])`` per post: how many
        ``(post, label)`` coverage pairs the post contributes.  The shard
        planner balances on this cost, not on raw post counts.
    posting_indices:
        label -> ``int64`` array of *global post indices* in ``LP(label)``
        order (which is value order, so each array is sorted).
    posting_values:
        label -> ``float64`` array, ``values[posting_indices[label]]``.
    """

    __slots__ = (
        "lam", "labels", "values", "uids", "label_sets", "pair_counts",
        "posting_indices", "posting_values", "__weakref__",
    )

    def __init__(self, instance: Instance):
        posts = instance.posts
        self.lam = instance.lam
        self.labels: Tuple[str, ...] = tuple(sorted(instance.labels))
        label_pos = {label: idx for idx, label in enumerate(self.labels)}
        n = len(posts)
        self.values = np.fromiter(
            (p.value for p in posts), dtype=np.float64, count=n
        )
        self.uids = np.fromiter(
            (p.uid for p in posts), dtype=np.int64, count=n
        )
        self.label_sets: Tuple[Tuple[int, ...], ...] = tuple(
            tuple(sorted(label_pos[a] for a in p.labels)) for p in posts
        )
        self.pair_counts = np.fromiter(
            (len(s) for s in self.label_sets), dtype=np.int64, count=n
        )
        buckets: Dict[str, List[int]] = {a: [] for a in self.labels}
        for k, p in enumerate(posts):
            for a in p.labels:
                buckets[a].append(k)
        self.posting_indices = {
            a: np.asarray(bucket, dtype=np.int64)
            for a, bucket in buckets.items()
        }
        self.posting_values = {
            a: self.values[idx] for a, idx in self.posting_indices.items()
        }

    def __len__(self) -> int:
        return len(self.values)

    def payload(self, start: int, end: int) -> "ShardPayload":
        """The picklable payload for the post slice ``[start, end)``."""
        return ShardPayload(
            lam=self.lam,
            labels=self.labels,
            values=self.values[start:end],
            uids=self.uids[start:end],
            label_sets=self.label_sets[start:end],
        )


class ShardPayload:
    """A contiguous post slice in columnar form, cheap to pickle.

    Process workers receive one of these instead of an :class:`Instance`:
    two flat arrays plus integer label sets, reconstructed into a
    sub-instance on the far side.  The declared label universe is the
    *parent's*, so label indices (and the fastpath pair encoding) agree
    across shards.
    """

    __slots__ = ("lam", "labels", "values", "uids", "label_sets")

    def __init__(
        self,
        lam: float,
        labels: Sequence[str],
        values: np.ndarray,
        uids: np.ndarray,
        label_sets: Sequence[Tuple[int, ...]],
    ):
        self.lam = lam
        self.labels = tuple(labels)
        self.values = values
        self.uids = uids
        self.label_sets = tuple(label_sets)

    # ShardPayload is pickled into process workers; __slots__ classes
    # need explicit state hooks.
    def __getstate__(self):
        return (self.lam, self.labels, self.values, self.uids,
                self.label_sets)

    def __setstate__(self, state):
        (self.lam, self.labels, self.values, self.uids,
         self.label_sets) = state

    def __len__(self) -> int:
        return len(self.values)

    def to_instance(self) -> Instance:
        """Rebuild the shard as a real :class:`Instance`."""
        posts = [
            Post(
                uid=int(uid),
                value=float(value),
                labels=frozenset(self.labels[i] for i in label_set),
            )
            for uid, value, label_set in zip(
                self.uids, self.values, self.label_sets
            )
        ]
        return Instance(posts, self.lam, labels=self.labels)


# The snapshot cache is hit concurrently by thread executors (every
# worker that touches the same instance calls ``snapshot``); the lock
# makes build-and-insert atomic so one instance gets exactly one
# snapshot, never racing duplicates.
_CACHE: "weakref.WeakKeyDictionary[Instance, ColumnarInstance]" = (
    weakref.WeakKeyDictionary()
)
_CACHE_LOCK = threading.Lock()


def snapshot(instance: Instance) -> ColumnarInstance:
    """The cached columnar snapshot of ``instance`` (built on first use)."""
    snap = _CACHE.get(instance)
    if snap is None:
        with _CACHE_LOCK:
            snap = _CACHE.get(instance)
            if snap is None:
                snap = ColumnarInstance(instance)
                _CACHE[instance] = snap
    return snap


# ---------------------------------------------------------------------------
# shared-memory snapshots
# ---------------------------------------------------------------------------
#
# Segment layout:  [u64 header length][pickled header][arrays...]
# The header records lam, the label universe, and the byte offset /
# element count of every array; the arrays are the snapshot's flat
# columns plus two ragged-to-flat encodings:
#
#   values           float64[n]        uids            int64[n]
#   ls_offsets       int64[n+1]        ls_flat         int64[sum pairs]
#   posting_offsets  int64[L+1]        posting_flat    int64[sum pairs]
#
# label_sets[k]           == ls_flat[ls_offsets[k]:ls_offsets[k+1]]
# posting_indices[lbl i]  == posting_flat[posting_offsets[i]:...[i+1]]

_ARRAY_FIELDS = ("values", "uids", "ls_offsets", "ls_flat",
                 "posting_offsets", "posting_flat")

_SHM_PROBE: Optional[bool] = None

# Process-local registry of open segments, by name.  The publisher's own
# entry serves in-process fallback runs; workers fill it on first attach
# (and forked workers inherit the publisher's entries for free).
_SEGMENTS: Dict[str, dict] = {}
_SEGMENTS_LOCK = threading.Lock()
_MAX_ATTACHED = 32


def shm_available() -> bool:
    """Whether ``multiprocessing.shared_memory`` works here (probed once
    with a real segment; some platforms lack /dev/shm)."""
    global _SHM_PROBE
    if _SHM_PROBE is None:
        try:
            from multiprocessing import shared_memory

            probe = shared_memory.SharedMemory(create=True, size=8)
            probe.close()
            probe.unlink()
            _SHM_PROBE = True
        except Exception:
            _SHM_PROBE = False
    return _SHM_PROBE


def _untrack(shm) -> None:
    """Detach an *attached* segment from the resource tracker.

    Attaching registers the name with ``resource_tracker`` a second time
    (fixed only in 3.13's ``track=False``); without this, a worker's exit
    can unlink a segment the publisher still serves.
    """
    try:  # pragma: no cover - depends on stdlib internals
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def _write_segment(shm, header_bytes: bytes, arrays: Dict[str, np.ndarray],
                   offsets: Dict[str, int]) -> None:
    """Copy the header and every array into the segment."""
    shm.buf[:8] = struct.pack("<Q", len(header_bytes))
    shm.buf[8:8 + len(header_bytes)] = header_bytes
    for field, array in arrays.items():
        start = offsets[field]
        shm.buf[start:start + array.nbytes] = array.tobytes()


def _parse_segment(shm) -> dict:
    """Build a registry entry (lam, labels, array views) over a segment."""
    (header_len,) = struct.unpack_from("<Q", shm.buf, 0)
    header = pickle.loads(bytes(shm.buf[8:8 + header_len]))
    entry = {
        "shm": shm,
        "lam": header["lam"],
        "labels": tuple(header["labels"]),
        "posting_values": {},
    }
    for field in _ARRAY_FIELDS:
        offset, count, dtype = header[field]
        entry[field] = np.frombuffer(
            shm.buf, dtype=np.dtype(dtype), count=count, offset=offset
        )
    return entry


def _close_segment(entry: dict) -> None:
    shm = entry.pop("shm", None)
    entry.clear()
    if shm is None:
        return
    try:
        shm.close()
    except BufferError:  # a live view pins the mapping; the OS frees it
        pass             # when the view dies — unlinking is what matters


class SharedSnapshot:
    """A :class:`ColumnarInstance` published into shared memory.

    The publisher owns the segment: :meth:`close` unlinks it (idempotent;
    also run by a ``weakref.finalize`` when the source instance dies, so
    segments cannot outlive their instance).  Workers never unlink — they
    attach read-only views through :func:`payload_from_shm`.
    """

    __slots__ = ("name", "lam", "labels", "_shm", "__weakref__")

    def __init__(self, name: str, lam: float, labels: Tuple[str, ...],
                 shm) -> None:
        self.name = name
        self.lam = lam
        self.labels = labels
        self._shm = shm

    @classmethod
    def publish(cls, snap: ColumnarInstance) -> "SharedSnapshot":
        """Copy ``snap``'s columns into one fresh segment.

        Raises whatever the platform raised when shared memory is not
        usable; a partially-written segment is unlinked before the error
        propagates — failure never leaks a named segment.
        """
        from multiprocessing import shared_memory

        n = len(snap)
        ls_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(snap.pair_counts, out=ls_offsets[1:])
        ls_flat = np.fromiter(
            (i for s in snap.label_sets for i in s),
            dtype=np.int64, count=int(ls_offsets[-1]),
        )
        posting = [snap.posting_indices[a] for a in snap.labels]
        posting_offsets = np.zeros(len(snap.labels) + 1, dtype=np.int64)
        if posting:
            np.cumsum(
                np.asarray([len(p) for p in posting], dtype=np.int64),
                out=posting_offsets[1:],
            )
        posting_flat = (
            np.concatenate(posting) if posting
            else np.empty(0, dtype=np.int64)
        ).astype(np.int64, copy=False)
        arrays = {
            "values": snap.values, "uids": snap.uids,
            "ls_offsets": ls_offsets, "ls_flat": ls_flat,
            "posting_offsets": posting_offsets,
            "posting_flat": posting_flat,
        }
        header = {"lam": snap.lam, "labels": list(snap.labels)}
        # lay arrays out back to back after the header, 8-byte aligned;
        # the final header also carries per-array (offset, count, dtype)
        # records, so reserve generous slack beyond the probe pickle
        probe = pickle.dumps(header, protocol=pickle.HIGHEST_PROTOCOL)
        cursor = 8 + len(probe) + 128 * len(_ARRAY_FIELDS) + 256
        offsets: Dict[str, int] = {}
        for field in _ARRAY_FIELDS:
            cursor = (cursor + 7) & ~7
            offsets[field] = cursor
            cursor += arrays[field].nbytes
        for field in _ARRAY_FIELDS:
            array = arrays[field]
            header[field] = (offsets[field], len(array), array.dtype.str)
        header_bytes = pickle.dumps(
            header, protocol=pickle.HIGHEST_PROTOCOL
        )
        if 8 + len(header_bytes) > min(offsets.values()):
            raise RuntimeError("shared snapshot header overflow")
        shm = shared_memory.SharedMemory(create=True, size=max(cursor, 16))
        try:
            _write_segment(shm, header_bytes, arrays, offsets)
            entry = _parse_segment(shm)
        except BaseException:
            shm.close()
            try:
                shm.unlink()
            except FileNotFoundError:
                pass
            raise
        with _SEGMENTS_LOCK:
            _SEGMENTS[shm.name] = entry
        return cls(shm.name, snap.lam, tuple(snap.labels), shm)

    def close(self) -> None:
        """Unlink the segment (idempotent).  Attached workers keep their
        existing mappings; new attaches fail, as they must."""
        shm, self._shm = self._shm, None
        if shm is None:
            return
        with _SEGMENTS_LOCK:
            entry = _SEGMENTS.pop(self.name, None)
        if entry is not None:
            _close_segment(entry)
        else:  # registry entry already evicted; close our own handle
            try:
                shm.close()
            except BufferError:
                pass
        try:
            shm.unlink()
        except FileNotFoundError:
            pass


def _attach(name: str) -> dict:
    """The registry entry for ``name``, attaching on first use.

    Worker-side: attached segments are cached per process (bounded FIFO)
    so one epoch's snapshot is mapped once, not per task.
    """
    entry = _SEGMENTS.get(name)
    if entry is not None:
        return entry
    from multiprocessing import shared_memory

    with _SEGMENTS_LOCK:
        entry = _SEGMENTS.get(name)
        if entry is not None:
            return entry
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        entry = _parse_segment(shm)
        while len(_SEGMENTS) >= _MAX_ATTACHED:
            _close_segment(_SEGMENTS.pop(next(iter(_SEGMENTS))))
        _SEGMENTS[name] = entry
    return entry


def payload_from_shm(name: str, start: int, end: int) -> ShardPayload:
    """Rebuild the ``[start, end)`` shard payload from a shared segment.

    The arrays are *copied* out of the mapping (a shard slice is small;
    the savings live in never pickling it across the process boundary).
    Returning views instead would pin the mapping: a payload outliving
    ``SharedSnapshot.close`` would turn the close into a ``BufferError``
    and keep the memory alive behind the unlink.
    """
    entry = _attach(name)
    ls_offsets = entry["ls_offsets"]
    ls_flat = entry["ls_flat"]
    label_sets = tuple(
        tuple(ls_flat[int(ls_offsets[k]):int(ls_offsets[k + 1])].tolist())
        for k in range(start, end)
    )
    return ShardPayload(
        lam=entry["lam"],
        labels=entry["labels"],
        values=entry["values"][start:end].copy(),
        uids=entry["uids"][start:end].copy(),
        label_sets=label_sets,
    )


def posting_values_from_shm(
    name: str, label_index: int
) -> Tuple[np.ndarray, float]:
    """One label's full posting-value array (gathered once per process)
    plus lambda — what a Scan shard task needs."""
    entry = _attach(name)
    cached = entry["posting_values"].get(label_index)
    if cached is None:
        offsets = entry["posting_offsets"]
        idx = entry["posting_flat"][
            int(offsets[label_index]):int(offsets[label_index + 1])
        ]
        cached = entry["values"][idx]
        entry["posting_values"][label_index] = cached
    return cached, entry["lam"]


_SHM_CACHE: "weakref.WeakKeyDictionary[Instance, SharedSnapshot]" = (
    weakref.WeakKeyDictionary()
)


def shared_snapshot(instance: Instance) -> Optional[SharedSnapshot]:
    """The instance's published shared-memory snapshot, or ``None``.

    Published once per instance and cached; a finalizer unlinks the
    segment when the instance is collected.  Returns ``None`` when
    shared memory is unavailable or publishing fails — callers fall back
    to pickled :class:`ShardPayload` tasks.
    """
    if not shm_available():
        return None
    shared = _SHM_CACHE.get(instance)
    if shared is None:
        # build the columnar snapshot BEFORE taking the lock: snapshot()
        # takes _CACHE_LOCK itself on a cache miss, and the lock is not
        # reentrant
        snap = snapshot(instance)
        with _CACHE_LOCK:
            shared = _SHM_CACHE.get(instance)
            if shared is None:
                try:
                    shared = SharedSnapshot.publish(snap)
                except Exception:
                    return None
                _SHM_CACHE[instance] = shared
                weakref.finalize(instance, SharedSnapshot.close, shared)
    return shared
