"""The ``engine="auto"`` family-builder selector for GreedySC.

``BENCH_throughput.json``'s builder ablation shows neither GreedySC
family builder dominates: on the day-long workload the numpy builder
*loses* to pure Python at lambda = 10 min (0.71x) and wins at
lambda = 60 min (4.52x).  The flip is explained by what each engine pays
per unit of work: the Python builder's cost is essentially linear in the
number of within-lambda (coverer, covered) pairs it enumerates
(~2.5 us/pair on the calibration machine), while the numpy builder pays
a large per-call constant (array setup, group splitting, the final
Python-level set merge) and a far smaller per-pair cost.  Equating the
two cost lines on the recorded ablation numbers puts the crossover near
~80k enumerated pairs; :data:`AUTO_PAIR_THRESHOLD` sits just under it.

:func:`probe_pair_count` computes the *exact* pair count cheaply before
building anything: for each label, two ``searchsorted`` calls over the
columnar posting values yield every window width at once —
``O(|LP| log |LP|)`` per label, microseconds against the milliseconds a
wrong engine choice wastes.  (The probe ignores the one-ulp window
widening the builders apply; a heuristic does not need it.)

Every decision is recorded through the observability facade
(``engine.auto.python_selected`` / ``engine.auto.numpy_selected``
counters and the ``engine.auto.probe_pairs`` gauge), so a bench
trajectory shows which engine actually ran.
"""

from __future__ import annotations

import numpy as np

from ..core.instance import Instance
from ..observability import facade as _obs
from .columnar import snapshot

__all__ = ["AUTO_PAIR_THRESHOLD", "probe_pair_count", "choose_engine"]

#: Estimated within-lambda pair count above which the numpy family
#: builder wins.  Calibrated from the BENCH_throughput.json builder
#: ablation (1671 posts, |L|=5): python 146.6 ms at ~59k pairs vs numpy
#: 205.1 ms, python 1000.9 ms at ~293k pairs vs numpy 221.4 ms; the
#: fitted cost lines cross near 8e4 pairs.
AUTO_PAIR_THRESHOLD = 75_000


def probe_pair_count(instance: Instance) -> int:
    """The number of within-lambda same-label (coverer, covered) pairs.

    This is exactly the work the Python family builder enumerates
    (``greedy_sc.family_pairs_enumerated`` counts one side of each
    window, this counts both), computed without enumerating: per label,
    ``searchsorted`` of each value's window edges against the posting
    values gives all window widths vectorised.
    """
    snap = snapshot(instance)
    lam = snap.lam
    total = 0
    for label in snap.labels:
        values = snap.posting_values[label]
        if len(values) == 0:
            continue
        hi = np.searchsorted(values, values + lam, side="right")
        lo = np.searchsorted(values, values - lam, side="left")
        total += int((hi - lo).sum())
    return total


def choose_engine(instance: Instance) -> str:
    """Pick the GreedySC family builder for this instance.

    Returns ``"numpy"`` when the density probe predicts enough pair
    volume to amortise the vectorised builder's constant, ``"python"``
    otherwise; the decision and the probe value are published as
    observability counters/gauges.
    """
    pairs = probe_pair_count(instance)
    engine = "numpy" if pairs >= AUTO_PAIR_THRESHOLD else "python"
    if _obs.enabled():
        _obs.count(f"engine.auto.{engine}_selected")
        _obs.set_gauge("engine.auto.probe_pairs", pairs)
    return engine
