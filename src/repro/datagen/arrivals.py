"""Arrival-time processes for synthetic post streams.

Three generators of increasing realism; all return sorted timestamp lists
within ``[start, end)`` and are driven by a seeded ``random.Random`` so
every experiment is reproducible.

* :func:`poisson_times` — homogeneous Poisson: the memoryless baseline.
* :func:`nonhomogeneous_poisson_times` — thinning (Lewis & Shedler) under
  an arbitrary rate function; :func:`diurnal_rate` supplies the day/night
  modulation real Twitter volume shows.
* :func:`bursty_times` — exogenous events each triggering an
  exponentially decaying burst on top of a base rate, the news-spike shape
  that makes microblogging streams redundant in the first place.
"""

from __future__ import annotations

import math
import random
from typing import Callable, List, Optional, Tuple

__all__ = [
    "poisson_times",
    "nonhomogeneous_poisson_times",
    "diurnal_rate",
    "bursty_times",
]


def poisson_times(
    rng: random.Random, rate: float, start: float, end: float
) -> List[float]:
    """Homogeneous Poisson arrivals at ``rate`` events per time unit."""
    if rate < 0:
        raise ValueError(f"rate must be non-negative, got {rate}")
    if end <= start or rate == 0:
        return []
    times: List[float] = []
    t = start
    while True:
        t += rng.expovariate(rate)
        if t >= end:
            return times
        times.append(t)


def nonhomogeneous_poisson_times(
    rng: random.Random,
    rate_fn: Callable[[float], float],
    rate_max: float,
    start: float,
    end: float,
) -> List[float]:
    """Thinning sampler: accept a rate-``rate_max`` arrival at time ``t``
    with probability ``rate_fn(t) / rate_max``."""
    if rate_max <= 0:
        return []
    times: List[float] = []
    for t in poisson_times(rng, rate_max, start, end):
        local = rate_fn(t)
        if local < 0 or local > rate_max * (1 + 1e-9):
            raise ValueError(
                f"rate_fn({t}) = {local} escapes [0, rate_max={rate_max}]"
            )
        if rng.random() < local / rate_max:
            times.append(t)
    return times


def diurnal_rate(
    base_rate: float,
    amplitude: float = 0.5,
    period: float = 86_400.0,
    peak_at: float = 0.75,
) -> Callable[[float], float]:
    """A sinusoidal day/night rate profile.

    ``peak_at`` is the fraction of the period where volume peaks (0.75 =
    evening for a midnight-anchored day).  Returns a function usable with
    :func:`nonhomogeneous_poisson_times`; its maximum is
    ``base_rate * (1 + amplitude)``.
    """
    if not 0 <= amplitude <= 1:
        raise ValueError(f"amplitude must be in [0, 1], got {amplitude}")

    def rate(t: float) -> float:
        phase = 2.0 * math.pi * (t / period - peak_at)
        return base_rate * (1.0 + amplitude * math.cos(phase))

    return rate


def bursty_times(
    rng: random.Random,
    base_rate: float,
    start: float,
    end: float,
    n_bursts: int = 3,
    burst_rate: Optional[float] = None,
    burst_decay: float = 600.0,
) -> Tuple[List[float], List[float]]:
    """Base Poisson traffic plus news-event bursts.

    Each of ``n_bursts`` events (at rng-chosen epochs) adds an
    exponentially decaying rate ``burst_rate * exp(-(t - epoch)/decay)``.
    Returns ``(times, burst_epochs)`` so callers can label which spikes
    they injected.
    """
    if burst_rate is None:
        burst_rate = 4.0 * base_rate
    epochs = sorted(
        rng.uniform(start, end) for _ in range(max(0, n_bursts))
    )

    def rate(t: float) -> float:
        total = base_rate
        for epoch in epochs:
            if t >= epoch:
                total += burst_rate * math.exp(-(t - epoch) / burst_decay)
        return total

    rate_max = base_rate + burst_rate * max(1, n_bursts)
    times = nonhomogeneous_poisson_times(rng, rate, rate_max, start, end)
    return times, epochs
