"""Loading external post data.

A downstream user's data rarely starts as :class:`repro.core.post.Post`
objects; these loaders accept the shapes it usually does start as:

* :func:`documents_from_csv` — ``timestamp,text`` rows (a tweet dump);
* :func:`posts_from_jsonl` — one JSON object per line with ``value`` /
  ``labels`` (pre-matched posts, e.g. exported from another system);
* :func:`instance_to_jsonl` / :func:`solution_to_csv` — the reverse
  direction, so digests can leave the library.

Formats are deliberately boring: CSV and JSON Lines round-trip through
spreadsheets and ``jq`` alike.
"""

from __future__ import annotations

import csv
import io
import json
from typing import List, Optional, TextIO, Union

from ..core.instance import Instance
from ..core.post import Post
from ..core.solution import Solution
from ..errors import InvalidInstanceError
from ..index.inverted_index import Document

__all__ = [
    "documents_from_csv",
    "posts_from_jsonl",
    "instance_to_jsonl",
    "instance_from_jsonl",
    "solution_to_csv",
]


def _reader(source: Union[str, TextIO]) -> TextIO:
    if isinstance(source, str):
        return io.StringIO(source)
    return source


def documents_from_csv(
    source: Union[str, TextIO],
    timestamp_field: str = "timestamp",
    text_field: str = "text",
    id_field: Optional[str] = None,
) -> List[Document]:
    """Parse a CSV of posts into :class:`Document` objects.

    Accepts a header row naming at least the timestamp and text columns;
    ``id_field`` is optional (row order assigns ids otherwise).  Rows with
    an unparsable timestamp raise — silently dropping data is worse than
    failing loudly on a malformed dump.
    """
    rows = csv.DictReader(_reader(source))
    documents: List[Document] = []
    for offset, row in enumerate(rows):
        if timestamp_field not in row or text_field not in row:
            raise InvalidInstanceError(
                f"CSV row {offset} lacks '{timestamp_field}' or "
                f"'{text_field}' (header: {sorted(row)})"
            )
        try:
            timestamp = float(row[timestamp_field])
        except (TypeError, ValueError) as error:
            raise InvalidInstanceError(
                f"row {offset}: bad timestamp {row[timestamp_field]!r}"
            ) from error
        doc_id = offset
        if id_field is not None:
            doc_id = int(row[id_field])
        documents.append(
            Document(doc_id=doc_id, timestamp=timestamp,
                     text=row[text_field] or "")
        )
    return documents


def posts_from_jsonl(source: Union[str, TextIO]) -> List[Post]:
    """Parse JSON Lines of ``{"uid", "value", "labels", ["text"]}``."""
    posts: List[Post] = []
    for lineno, line in enumerate(_reader(source), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise InvalidInstanceError(
                f"line {lineno}: invalid JSON"
            ) from error
        missing = {"uid", "value", "labels"} - set(payload)
        if missing:
            raise InvalidInstanceError(
                f"line {lineno}: missing fields {sorted(missing)}"
            )
        posts.append(
            Post(
                uid=int(payload["uid"]),
                value=float(payload["value"]),
                labels=frozenset(payload["labels"]),
                text=payload.get("text", ""),
            )
        )
    return posts


def instance_to_jsonl(instance: Instance) -> str:
    """Serialise an instance's posts as JSON Lines (lambda goes in the
    first line as a header object)."""
    lines = [json.dumps({"lam": instance.lam,
                         "labels": sorted(instance.labels)})]
    for post in instance.posts:
        lines.append(
            json.dumps(
                {
                    "uid": post.uid,
                    "value": post.value,
                    "labels": sorted(post.labels),
                    "text": post.text,
                }
            )
        )
    return "\n".join(lines) + "\n"


def instance_from_jsonl(source: Union[str, TextIO]) -> Instance:
    """Inverse of :func:`instance_to_jsonl`."""
    handle = _reader(source)
    header_line = handle.readline()
    try:
        header = json.loads(header_line)
        lam = float(header["lam"])
        labels = header.get("labels")
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise InvalidInstanceError("missing or malformed header line") \
            from error
    posts = posts_from_jsonl(handle)
    return Instance(posts, lam, labels=labels)


def solution_to_csv(solution: Solution) -> str:
    """Serialise a digest as CSV: uid, value, labels, text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["uid", "value", "labels", "text"])
    for post in solution.posts:
        writer.writerow(
            [post.uid, post.value, " ".join(sorted(post.labels)),
             post.text]
        )
    return buffer.getvalue()
