"""Loading external post data.

A downstream user's data rarely starts as :class:`repro.core.post.Post`
objects; these loaders accept the shapes it usually does start as:

* :func:`documents_from_csv` — ``timestamp,text`` rows (a tweet dump);
* :func:`posts_from_jsonl` — one JSON object per line with ``value`` /
  ``labels`` (pre-matched posts, e.g. exported from another system);
* :func:`instance_to_jsonl` / :func:`solution_to_csv` — the reverse
  direction, so digests can leave the library.

Formats are deliberately boring: CSV and JSON Lines round-trip through
spreadsheets and ``jq`` alike.

Every loader also accepts an :class:`os.PathLike` (e.g.
``pathlib.Path``): the file is then read through
:func:`read_text_with_retry`, an exponential-backoff loop that shrugs off
transient I/O failures (NFS hiccups, a dump mid-rotation) and raises
:class:`~repro.errors.LoaderError` only once the attempt budget is spent.
Plain strings keep their historical meaning of literal file *content*.
"""

from __future__ import annotations

import csv
import io
import json
import os
import random
import time
from typing import Callable, List, Optional, TextIO, Union

from ..core.instance import Instance
from ..core.post import Post
from ..core.solution import Solution
from ..errors import InvalidInstanceError, LoaderError
from ..index.inverted_index import Document

__all__ = [
    "documents_from_csv",
    "posts_from_jsonl",
    "instance_to_jsonl",
    "instance_from_jsonl",
    "solution_to_csv",
    "read_text_with_retry",
]

Source = Union[str, "os.PathLike[str]", TextIO]


def read_text_with_retry(
    path: "Union[str, os.PathLike[str]]",
    *,
    attempts: int = 4,
    base_delay: float = 0.05,
    max_delay: float = 2.0,
    jitter: Union[str, float] = "full",
    max_elapsed: Optional[float] = 30.0,
    sleep: Callable[[float], None] = time.sleep,
    rng: Optional[random.Random] = None,
    clock: Callable[[], float] = time.monotonic,
    encoding: str = "utf-8",
    opener: Callable = open,
) -> str:
    """Read a text file, retrying transient ``OSError`` with backoff.

    The backoff ceiling before attempt ``k`` is ``base_delay * 2**(k-1)``
    capped at ``max_delay``; ``jitter`` decides how much of it is slept:

    * ``"full"`` (default) — *full jitter*: the pause is drawn uniformly
      from ``[0, ceiling]``.  A fleet of consumers restarting off the
      same failure decorrelates immediately instead of hammering the
      file in synchronized waves.
    * a float fraction — the legacy smear: the full ceiling plus up to
      ``jitter`` of it on top (``0.0`` = deterministic exponential).

    ``max_elapsed`` caps total time in the retry loop: once the clock
    says the next pause cannot finish inside the budget, a dead source
    fails fast with :class:`~repro.errors.LoaderError` instead of
    grinding through the remaining schedule.  ``None`` disables the cap.

    ``sleep``, ``rng``, ``clock`` and ``opener`` are injectable so tests
    run instantly and deterministically.  After ``attempts`` failures
    (or a blown budget) the last ``OSError`` is wrapped in
    :class:`~repro.errors.LoaderError`.
    """
    if attempts < 1:
        raise ValueError("attempts must be at least 1")
    if isinstance(jitter, str) and jitter != "full":
        raise ValueError(
            f"jitter must be 'full' or a float fraction: {jitter!r}"
        )
    if max_elapsed is not None and max_elapsed < 0:
        raise ValueError(f"max_elapsed must be non-negative: {max_elapsed}")
    if rng is None:
        rng = random.Random()
    delay = base_delay
    started = clock()
    last_error: Optional[OSError] = None
    exhausted = f"after {attempts} attempts"
    for attempt in range(attempts):
        try:
            with opener(path, "r", encoding=encoding) as handle:
                return handle.read()
        except OSError as error:
            last_error = error
            if attempt + 1 == attempts:
                break
            ceiling = min(delay, max_delay)
            if jitter == "full":
                pause = rng.random() * ceiling
            else:
                pause = ceiling + ceiling * jitter * rng.random()
            if max_elapsed is not None and \
                    clock() - started + pause > max_elapsed:
                exhausted = (
                    f"after {attempt + 1} attempts "
                    f"(max_elapsed {max_elapsed}s budget spent)"
                )
                break
            sleep(pause)
            delay *= 2
    raise LoaderError(
        f"could not read {os.fspath(path)!r} {exhausted}: "
        f"{last_error}"
    ) from last_error


def _reader(source: Source) -> TextIO:
    if isinstance(source, os.PathLike):
        return io.StringIO(read_text_with_retry(source))
    if isinstance(source, str):
        return io.StringIO(source)
    return source


def documents_from_csv(
    source: Source,
    timestamp_field: str = "timestamp",
    text_field: str = "text",
    id_field: Optional[str] = None,
) -> List[Document]:
    """Parse a CSV of posts into :class:`Document` objects.

    Accepts a header row naming at least the timestamp and text columns;
    ``id_field`` is optional (row order assigns ids otherwise).  Rows with
    an unparsable timestamp raise — silently dropping data is worse than
    failing loudly on a malformed dump.
    """
    rows = csv.DictReader(_reader(source))
    documents: List[Document] = []
    for offset, row in enumerate(rows):
        if timestamp_field not in row or text_field not in row:
            raise InvalidInstanceError(
                f"CSV row {offset} lacks '{timestamp_field}' or "
                f"'{text_field}' (header: {sorted(row)})"
            )
        try:
            timestamp = float(row[timestamp_field])
        except (TypeError, ValueError) as error:
            raise InvalidInstanceError(
                f"row {offset}: bad timestamp {row[timestamp_field]!r}"
            ) from error
        doc_id = offset
        if id_field is not None:
            doc_id = int(row[id_field])
        documents.append(
            Document(doc_id=doc_id, timestamp=timestamp,
                     text=row[text_field] or "")
        )
    return documents


def posts_from_jsonl(source: Source) -> List[Post]:
    """Parse JSON Lines of ``{"uid", "value", "labels", ["text"]}``."""
    posts: List[Post] = []
    for lineno, line in enumerate(_reader(source), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as error:
            raise InvalidInstanceError(
                f"line {lineno}: invalid JSON"
            ) from error
        missing = {"uid", "value", "labels"} - set(payload)
        if missing:
            raise InvalidInstanceError(
                f"line {lineno}: missing fields {sorted(missing)}"
            )
        posts.append(
            Post(
                uid=int(payload["uid"]),
                value=float(payload["value"]),
                labels=frozenset(payload["labels"]),
                text=payload.get("text", ""),
            )
        )
    return posts


def instance_to_jsonl(instance: Instance) -> str:
    """Serialise an instance's posts as JSON Lines (lambda goes in the
    first line as a header object)."""
    lines = [json.dumps({"lam": instance.lam,
                         "labels": sorted(instance.labels)})]
    for post in instance.posts:
        lines.append(
            json.dumps(
                {
                    "uid": post.uid,
                    "value": post.value,
                    "labels": sorted(post.labels),
                    "text": post.text,
                }
            )
        )
    return "\n".join(lines) + "\n"


def instance_from_jsonl(source: Source) -> Instance:
    """Inverse of :func:`instance_to_jsonl`."""
    handle = _reader(source)
    header_line = handle.readline()
    try:
        header = json.loads(header_line)
        lam = float(header["lam"])
        labels = header.get("labels")
    except (json.JSONDecodeError, KeyError, TypeError) as error:
        raise InvalidInstanceError("missing or malformed header line") \
            from error
    posts = posts_from_jsonl(handle)
    return Instance(posts, lam, labels=labels)


def solution_to_csv(solution: Solution) -> str:
    """Serialise a digest as CSV: uid, value, labels, text."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(["uid", "value", "labels", "text"])
    for post in solution.posts:
        writer.writerow(
            [post.uid, post.value, " ".join(sorted(post.labels)),
             post.text]
        )
    return buffer.getvalue()
