"""Synthetic data generation.

Replaces the paper's 4.3M-tweet, 24-hour Twitter Streaming API sample
(collected 2013-06-12) with a generator whose *observable statistics* —
arrival burstiness, diurnal rhythm, topical overlap, per-label matching
rates — are what the algorithms actually react to:

* :mod:`~repro.datagen.arrivals` — Poisson, diurnally modulated and bursty
  (self-exciting) arrival processes;
* :mod:`~repro.datagen.tweets` — tweet text synthesis from the topic model
  (topical keywords + filler + sentiment carriers);
* :mod:`~repro.datagen.workload` — end-to-end builders producing MQDP
  instances, including the direct labelled-post generator used when an
  experiment needs precise control of the overlap rate, and the
  calibration constants tying generated volumes to the paper's Table 2.
"""

from .arrivals import bursty_times, nonhomogeneous_poisson_times, poisson_times
from .loaders import (
    documents_from_csv,
    instance_from_jsonl,
    instance_to_jsonl,
    posts_from_jsonl,
    solution_to_csv,
)
from .tweets import TweetGenerator
from .workload import (
    PAPER_MATCH_RATES_PER_MIN,
    day_workload,
    instance_with_overlap,
    labelled_posts,
)

__all__ = [
    "poisson_times",
    "nonhomogeneous_poisson_times",
    "bursty_times",
    "TweetGenerator",
    "documents_from_csv",
    "posts_from_jsonl",
    "instance_to_jsonl",
    "instance_from_jsonl",
    "solution_to_csv",
    "labelled_posts",
    "instance_with_overlap",
    "day_workload",
    "PAPER_MATCH_RATES_PER_MIN",
]
