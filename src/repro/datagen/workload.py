"""End-to-end workload builders for the experiments.

Two construction paths, mirroring Figure 1's two input options:

* the *text path* (:func:`tweet_workload`): synthesize tweet documents,
  run the keyword matcher, keep posts matching at least one profile topic
  — used where the substrate itself is under test (Table 2);
* the *direct path* (:func:`labelled_posts`, :func:`instance_with_overlap`,
  :func:`day_workload`): generate ``(timestamp, label-set)`` posts with
  exact control over the statistics the algorithms react to (overlap rate,
  per-minute matching volume) — used by the effectiveness and efficiency
  experiments, where text would only add noise and runtime.

Calibration
-----------
``PAPER_MATCH_RATES_PER_MIN`` records Table 2's matching posts per minute
(136 / 308 / 1180 for ``|L|`` = 2 / 5 / 20).  Day-long experiments scale
these by ``scale`` (default 1/20) and scale lambda identically, which
preserves the quantity the algorithms actually see — expected posts per
lambda-window — while keeping pure-Python runtimes sane.  EXPERIMENTS.md
documents the scaling next to every affected figure.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.instance import Instance
from ..core.post import Post
from ..index.inverted_index import Document
from ..index.query import LabelMatcher, TopicQuery
from .arrivals import bursty_times, poisson_times

__all__ = [
    "PAPER_MATCH_RATES_PER_MIN",
    "match_rate_per_min",
    "labelled_posts",
    "instance_with_overlap",
    "day_workload",
    "tweet_workload",
]

#: Table 2 — average unique matching posts per minute per label-set size.
PAPER_MATCH_RATES_PER_MIN: Dict[int, float] = {2: 136.0, 5: 308.0, 20: 1180.0}


def match_rate_per_min(num_labels: int) -> float:
    """Interpolated Table 2 matching rate for any ``|L|``.

    Table 2's three data points are nearly linear in ``|L|`` with a
    per-label rate of ~60-68 posts/min; we interpolate/extrapolate
    linearly between the published points.
    """
    if num_labels <= 0:
        raise ValueError(f"|L| must be positive, got {num_labels}")
    known = sorted(PAPER_MATCH_RATES_PER_MIN.items())
    if num_labels <= known[0][0]:
        return known[0][1] * num_labels / known[0][0]
    for (lo_l, lo_r), (hi_l, hi_r) in zip(known, known[1:]):
        if num_labels <= hi_l:
            frac = (num_labels - lo_l) / (hi_l - lo_l)
            return lo_r + frac * (hi_r - lo_r)
    hi_l, hi_r = known[-1]
    return hi_r * num_labels / hi_l


def _zipf_weights(count: int, exponent: float = 0.8) -> List[float]:
    weights = [1.0 / (rank ** exponent) for rank in range(1, count + 1)]
    total = sum(weights)
    return [w / total for w in weights]


def labelled_posts(
    rng: random.Random,
    labels: Sequence[str],
    times: Sequence[float],
    overlap: float = 1.3,
    start_uid: int = 0,
) -> List[Post]:
    """Posts at the given times with controlled label statistics.

    Each post carries ``1 + Binomial(|L| - 1, p)`` labels with ``p`` chosen
    so the expected overlap rate (mean labels per post) equals ``overlap``;
    labels are drawn without replacement under a Zipf popularity skew, so
    some queries are hot and some cold, as in real topic data.
    """
    labels = list(labels)
    if not labels:
        raise ValueError("need at least one label")
    if not 1.0 <= overlap <= len(labels):
        raise ValueError(
            f"overlap must be in [1, |L|={len(labels)}], got {overlap}"
        )
    extra_p = (
        (overlap - 1.0) / (len(labels) - 1) if len(labels) > 1 else 0.0
    )
    weights = _zipf_weights(len(labels))
    posts: List[Post] = []
    for offset, t in enumerate(times):
        count = 1
        for _ in range(len(labels) - 1):
            if rng.random() < extra_p:
                count += 1
        chosen: List[str] = []
        remaining = list(labels)
        remaining_weights = list(weights)
        for _ in range(count):
            pick = rng.choices(
                range(len(remaining)), remaining_weights, k=1
            )[0]
            chosen.append(remaining.pop(pick))
            remaining_weights.pop(pick)
        posts.append(
            Post(
                uid=start_uid + offset,
                value=float(t),
                labels=frozenset(chosen),
            )
        )
    return posts


def instance_with_overlap(
    rng: random.Random,
    num_labels: int,
    duration: float,
    lam: float,
    overlap: float = 1.3,
    rate_per_min: Optional[float] = None,
) -> Instance:
    """A Poisson-arrival instance with a target overlap rate.

    ``rate_per_min`` defaults to the Table 2 interpolation for
    ``num_labels``.  This is the workhorse of the 10-minute-window
    effectiveness experiments (Figures 6, 7, 9, 10, 11).
    """
    if rate_per_min is None:
        rate_per_min = match_rate_per_min(num_labels)
    labels = [f"q{idx}" for idx in range(num_labels)]
    times = poisson_times(rng, rate_per_min / 60.0, 0.0, duration)
    if not times:  # degenerate but legal: one post keeps Instance non-empty
        times = [duration / 2.0]
    posts = labelled_posts(rng, labels, times, overlap=overlap)
    return Instance(posts, lam, labels=labels)


def day_workload(
    rng: random.Random,
    num_labels: int,
    lam: float,
    scale: float = 0.05,
    overlap: float = 1.3,
    duration: float = 86_400.0,
    n_bursts: int = 8,
) -> Instance:
    """A scaled one-day bursty stream (Figures 8, 12, 13, 14, 15).

    The matching rate is Table 2's value times ``scale``; callers scale
    lambda by the same factor to preserve posts-per-window.  Arrivals are
    bursty (news spikes) on top of the base rate.
    """
    rate_per_sec = match_rate_per_min(num_labels) * scale / 60.0
    times, _ = bursty_times(
        rng,
        base_rate=rate_per_sec,
        start=0.0,
        end=duration,
        n_bursts=n_bursts,
        burst_rate=3.0 * rate_per_sec,
        burst_decay=duration / 50.0,
    )
    if not times:
        times = [duration / 2.0]
    labels = [f"q{idx}" for idx in range(num_labels)]
    posts = labelled_posts(rng, labels, times, overlap=overlap)
    return Instance(posts, lam, labels=labels)


def tweet_workload(
    rng: random.Random,
    queries: Sequence[TopicQuery],
    documents: Sequence[Document],
    lam: float,
) -> Tuple[Instance, List[Post]]:
    """The text path: match documents against a profile, build an instance.

    Returns ``(instance, posts)``; documents matching no query are dropped
    (they are not part of the MQDP input).  Raises ``ValueError`` when
    nothing matches — a sign the caller's generator and profile are
    misaligned.
    """
    matcher = LabelMatcher(queries)
    posts = matcher.to_posts(documents)
    if not posts:
        raise ValueError("no document matched any query in the profile")
    return Instance(posts, lam, labels=matcher.labels), posts
