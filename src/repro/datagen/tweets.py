"""Tweet text synthesis.

Generates microblogging posts whose text actually flows through the full
pipeline — tokenizer, keyword matcher, inverted index, SimHash, sentiment —
so the substrate experiments exercise the same code paths the paper's real
data did.

Each tweet mixes: keywords from one or two topics (weight-proportional
sampling, so high-weight keywords dominate, as with real LDA topics),
conversational filler, and an optional sentiment carrier word whose
polarity follows a per-broad-topic bias.  A configurable fraction of
near-duplicates (light rewording of a recent tweet) feeds the SimHash
dedup stage.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..index.inverted_index import Document
from ..index.query import TopicQuery
from ..text.sentiment import NEGATIVE_WORDS, POSITIVE_WORDS
from ..text.vocab import FILLER_WORDS
from ..topics.lda_sim import SyntheticTopicModel

__all__ = ["TweetGenerator"]

_POSITIVE = sorted(POSITIVE_WORDS)
_NEGATIVE = sorted(NEGATIVE_WORDS)


@dataclass
class TweetGenerator:
    """Synthesises tweet documents over a topic model.

    Parameters
    ----------
    model:
        The trained synthetic topic model.
    rng:
        Seeded random source.
    topical_fraction:
        Probability a tweet is about some topic at all; the rest is pure
        filler chatter (it will match no query, as most of the paper's
        4.3M tweets match none of a given profile).
    second_topic_prob:
        Probability a topical tweet blends a second topic from the same
        broad topic — the direct source of multi-label posts.
    duplicate_prob:
        Probability a tweet is a near-duplicate (light rewording) of a
        recent tweet, feeding the SimHash stage.
    sentiment_bias:
        Broad topic -> probability that its sentiment carrier is positive
        (defaults to 0.5 everywhere).
    """

    model: SyntheticTopicModel
    rng: random.Random
    topical_fraction: float = 0.7
    second_topic_prob: float = 0.35
    duplicate_prob: float = 0.05
    words_per_tweet: int = 9
    sentiment_bias: Optional[Dict[str, float]] = None

    def __post_init__(self) -> None:
        self._by_broad = self.model.by_broad()
        self._broads = sorted(self._by_broad)
        # Broad-topic popularity: a fixed Zipf-ish skew, mirroring how real
        # news volume concentrates on a few beats.
        weights = [1.0 / (rank + 1) for rank in range(len(self._broads))]
        total = sum(weights)
        self._broad_weights = [w / total for w in weights]
        self._recent: List[str] = []

    # -- internals ------------------------------------------------------------

    def _pick_broad(self) -> str:
        return self.rng.choices(self._broads, self._broad_weights, k=1)[0]

    def _keywords_from(self, topic: TopicQuery, count: int) -> List[str]:
        if topic.weights:
            words = [keyword for keyword, _ in topic.weights]
            weights = [weight for _, weight in topic.weights]
            return self.rng.choices(words, weights, k=count)
        return self.rng.choices(sorted(topic.keywords), k=count)

    def _sentiment_word(self, broad: str) -> str:
        bias = 0.5
        if self.sentiment_bias:
            bias = self.sentiment_bias.get(broad, 0.5)
        pool = _POSITIVE if self.rng.random() < bias else _NEGATIVE
        return self.rng.choice(pool)

    def _reword(self, text: str) -> str:
        """A near-duplicate: swap one word for filler, maybe add 'rt'."""
        words = text.split()
        if words:
            slot = self.rng.randrange(len(words))
            words[slot] = self.rng.choice(FILLER_WORDS)
        if self.rng.random() < 0.5:
            words.insert(0, "rt")
        return " ".join(words)

    def compose(self) -> str:
        """One tweet's text (no timestamp)."""
        if self._recent and self.rng.random() < self.duplicate_prob:
            return self._reword(self.rng.choice(self._recent))
        words: List[str] = []
        if self.rng.random() < self.topical_fraction:
            broad = self._pick_broad()
            topics = self._by_broad[broad]
            primary = self.rng.choice(topics)
            topical_count = max(2, self.words_per_tweet // 2)
            words.extend(self._keywords_from(primary, topical_count))
            if len(topics) > 1 and self.rng.random() < self.second_topic_prob:
                secondary = self.rng.choice(
                    [t for t in topics if t.label != primary.label]
                )
                words.extend(self._keywords_from(secondary, 2))
            if self.rng.random() < 0.6:
                words.append(self._sentiment_word(broad))
        filler_needed = max(0, self.words_per_tweet - len(words))
        words.extend(self.rng.choices(FILLER_WORDS, k=filler_needed))
        self.rng.shuffle(words)
        text = " ".join(words)
        self._recent.append(text)
        if len(self._recent) > 50:
            self._recent.pop(0)
        return text

    def generate(
        self, timestamps: Sequence[float], start_doc_id: int = 0
    ) -> List[Document]:
        """Documents at the given (sorted) arrival times."""
        return [
            Document(
                doc_id=start_doc_id + offset,
                timestamp=float(t),
                text=self.compose(),
            )
            for offset, t in enumerate(timestamps)
        ]
