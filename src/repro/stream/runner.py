"""The stream driver: an event loop over simulated time.

Feeds a time-ordered post sequence into a
:class:`~repro.stream.events.StreamingAlgorithm`, firing the algorithm's
deadlines whenever they precede the next arrival — exactly how a wall-clock
deployment would interleave timer callbacks with socket reads.  The result
records every emission with its decision time so tests can assert the
paper's delay bounds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from ..core.post import Post
from ..core.solution import Solution
from ..errors import EmissionInvariantError, StreamOrderError
from ..observability import facade as _obs
from .events import Emission, StreamingAlgorithm

__all__ = ["StreamResult", "run_stream"]


@dataclass(frozen=True)
class StreamResult:
    """Outcome of one streaming run."""

    algorithm: str
    emissions: Tuple[Emission, ...]
    elapsed: float = field(default=0.0, compare=False)

    @property
    def posts(self) -> Tuple[Post, ...]:
        """The emitted posts, in emission order."""
        return tuple(e.post for e in self.emissions)

    @property
    def size(self) -> int:
        """Number of distinct posts output — the quantity being minimised."""
        return len(self.emissions)

    def max_delay(self) -> float:
        """Largest publication-to-emission delay over all outputs."""
        if not self.emissions:
            return 0.0
        return max(e.delay for e in self.emissions)

    def to_solution(self) -> Solution:
        """View the emitted set as a batch solution (for cover checking)."""
        return Solution.from_posts(
            self.algorithm, [e.post for e in self.emissions],
            elapsed=self.elapsed,
        )


def run_stream(
    algorithm: StreamingAlgorithm, posts: Sequence[Post]
) -> StreamResult:
    """Run ``algorithm`` over ``posts`` (which must be time-ordered).

    Raises :class:`~repro.errors.StreamOrderError` if the input regresses in
    time, and :class:`~repro.errors.EmissionInvariantError` if the algorithm
    emits a post twice or emits before a post has arrived — both invariant
    violations we want loud everywhere, including under ``python -O`` where
    a bare ``assert`` would be stripped.

    For untrusted streams (malformed posts, out-of-order arrivals, stalling
    solvers) see :func:`repro.resilience.run_supervised`, which wraps the
    algorithm in a sanitizing, checkpointable supervisor instead of failing
    on the first bad input.
    """
    emissions: List[Emission] = []
    seen: Dict[int, float] = {}
    arrived: set = set()

    def collect(batch: Iterable[Emission]) -> None:
        for emission in batch:
            uid = emission.post.uid
            if uid in seen:
                raise EmissionInvariantError(
                    f"post {uid} emitted twice (first at {seen[uid]})"
                )
            if uid not in arrived:
                raise EmissionInvariantError(
                    f"post {uid} emitted before arrival"
                )
            if emission.emitted_at < emission.post.value:
                raise EmissionInvariantError(
                    f"post {uid} emitted before its own timestamp"
                )
            seen[uid] = emission.emitted_at
            emissions.append(emission)

    tick = _obs.clock()
    deadlines_fired = 0
    with _obs.span("stream.run", algorithm=algorithm.name) as span:
        start = tick()
        last_time = float("-inf")
        for post in posts:
            if post.value < last_time:
                raise StreamOrderError(
                    f"post {post.uid} at {post.value} arrived after time "
                    f"{last_time}"
                )
            last_time = post.value
            # Fire every deadline strictly before this arrival.
            while True:
                deadline = algorithm.next_deadline()
                if deadline is None or deadline >= post.value:
                    break
                deadlines_fired += 1
                collect(algorithm.on_deadline(deadline))
            arrived.add(post.uid)
            collect(algorithm.on_arrival(post))
        collect(algorithm.flush())
        elapsed = tick() - start
        span.set_attribute("arrivals", len(arrived))
        span.set_attribute("emissions", len(emissions))
    if _obs.enabled():
        _obs.count("stream.arrivals", len(arrived))
        _obs.count("stream.deadlines_fired", deadlines_fired)
        _obs.count("stream.emissions", len(emissions))
        _obs.observe("stream.run.elapsed", elapsed)
    return StreamResult(
        algorithm=algorithm.name,
        emissions=tuple(emissions),
        elapsed=elapsed,
    )
