"""Streaming substrate: simulated clock, emissions and the stream driver.

The paper's StreamMQDP variant consumes posts as they arrive and must report
each selected post within ``tau`` of its publication time.  This package
provides the harness those algorithms run on:

* :class:`repro.stream.events.Emission` — a selected post together with the
  simulated time it was reported at (so delays can be audited);
* :class:`repro.stream.events.StreamingAlgorithm` — the interface every
  streaming solver implements (arrival callback, deadline queue, flush);
* :func:`repro.stream.runner.run_stream` — the event loop interleaving
  arrivals with deadline firings in simulated-time order.
"""

from .events import Emission, StreamingAlgorithm
from .runner import StreamResult, run_stream

__all__ = ["Emission", "StreamingAlgorithm", "StreamResult", "run_stream"]
