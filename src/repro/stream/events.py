"""Event types and the streaming-algorithm interface."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from ..core.post import Post

__all__ = ["Emission", "StreamingAlgorithm"]


@dataclass(frozen=True)
class Emission:
    """A post selected by a streaming algorithm, stamped with the simulated
    time of the decision.

    The *delay* — how long after publication the user sees the post — is the
    quantity Problem 2 bounds by ``tau``; it is derived rather than stored so
    it can never drift out of sync.
    """

    post: Post
    emitted_at: float

    @property
    def delay(self) -> float:
        """Seconds between the post's timestamp and its emission."""
        return self.emitted_at - self.post.value

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation — the serving layer's wire format."""
        return {
            "post": self.post.to_dict(),
            "emitted_at": self.emitted_at,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Emission":
        """Inverse of :meth:`to_dict`."""
        return cls(
            post=Post.from_dict(payload["post"]),
            emitted_at=float(payload["emitted_at"]),
        )


class StreamingAlgorithm:
    """Interface implemented by every StreamMQDP solver.

    The driver (:func:`repro.stream.runner.run_stream`) interleaves calls in
    simulated-time order:

    * :meth:`on_arrival` for each post, by increasing timestamp;
    * :meth:`on_deadline` whenever the algorithm's earliest pending deadline
      (:meth:`next_deadline`) precedes the next arrival;
    * :meth:`flush` once the stream ends, which must fire any remaining
      deadlines.

    Implementations return the posts they decide to output as
    :class:`Emission` lists; they must never emit the same post twice (the
    driver enforces this).
    """

    name: str = "streaming"

    def on_arrival(self, post: Post) -> List[Emission]:
        """Handle a newly arrived post at simulated time ``post.value``."""
        raise NotImplementedError

    def next_deadline(self) -> Optional[float]:
        """Earliest pending timer, or None when nothing is scheduled."""
        raise NotImplementedError

    def on_deadline(self, now: float) -> List[Emission]:
        """Fire every timer scheduled at exactly ``now``."""
        raise NotImplementedError

    def flush(self) -> List[Emission]:
        """Drain remaining state at end of stream (fires pending timers)."""
        emissions: List[Emission] = []
        while True:
            deadline = self.next_deadline()
            if deadline is None:
                return emissions
            emissions.extend(self.on_deadline(deadline))
