"""Terminal visualisation of instances, covers and streams.

Plots in a paper live in matplotlib; a library living in terminals renders
ASCII.  These helpers draw the pictures the paper's figures draw — a
timeline of posts with the selected cover marked (Figure 2's style), a
per-label lane view (Figure 4's style), and a coverage-vs-budget bar chart
for the budgeted variant — and the examples use them for their output.

Everything returns a string; nothing prints, so the functions compose with
logging and tests alike.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from .core.instance import Instance
from .core.post import Post

__all__ = ["timeline", "label_lanes", "budget_bars"]


def _scale(values: Sequence[float], width: int) -> List[int]:
    lo = min(values)
    hi = max(values)
    span = hi - lo
    if span <= 0:
        return [0 for _ in values]
    return [
        min(width - 1, int((value - lo) / span * (width - 1)))
        for value in values
    ]


def timeline(
    instance: Instance,
    selected: Iterable[Post] = (),
    width: int = 72,
) -> str:
    """One-line timeline: ``.`` posts, ``#`` selected posts.

    Posts sharing a character cell collapse; a selected post wins the
    cell.  The axis labels show the dimension's range.
    """
    if len(instance) == 0:
        return "(empty instance)"
    values = [post.value for post in instance.posts]
    cells = _scale(values, width)
    selected_uids = {post.uid for post in selected}
    row = [" "] * width
    for post, cell in zip(instance.posts, cells):
        if post.uid in selected_uids:
            row[cell] = "#"
        elif row[cell] == " ":
            row[cell] = "."
    lo, hi = min(values), max(values)
    axis = f"{lo:g}".ljust(width - len(f"{hi:g}")) + f"{hi:g}"
    return "".join(row) + "\n" + axis


def label_lanes(
    instance: Instance,
    selected: Iterable[Post] = (),
    width: int = 64,
) -> str:
    """One lane per label (Figure 4's layout): ``.`` posts carrying the
    label, ``#`` selected ones, so per-label coverage is eyeballable."""
    if len(instance) == 0:
        return "(empty instance)"
    values = [post.value for post in instance.posts]
    selected_uids = {post.uid for post in selected}
    cells = dict(zip(
        (post.uid for post in instance.posts), _scale(values, width)
    ))
    lines: List[str] = []
    label_pad = max(len(label) for label in instance.labels)
    for label in sorted(instance.labels):
        row = [" "] * width
        for post in instance.posting(label):
            cell = cells[post.uid]
            if post.uid in selected_uids:
                row[cell] = "#"
            elif row[cell] == " ":
                row[cell] = "."
        lines.append(f"{label.rjust(label_pad)} |{''.join(row)}|")
    return "\n".join(lines)


def budget_bars(
    curve: Sequence[Tuple[int, float]],
    width: int = 40,
    max_rows: Optional[int] = 15,
) -> str:
    """Render a coverage-vs-budget curve as horizontal bars.

    Input is :func:`repro.core.budgeted.coverage_curve` output; rows
    beyond ``max_rows`` are thinned evenly so long curves stay readable.
    """
    if not curve:
        return "(empty curve)"
    points = list(curve)
    if max_rows is not None and len(points) > max_rows:
        step = (len(points) - 1) / (max_rows - 1)
        points = [
            points[round(i * step)] for i in range(max_rows)
        ]
    k_pad = max(len(str(k)) for k, _ in points)
    lines = []
    for k, fraction in points:
        bar = "#" * int(round(fraction * width))
        lines.append(
            f"k={str(k).rjust(k_pad)} |{bar.ljust(width)}| "
            f"{fraction * 100:5.1f}%"
        )
    return "\n".join(lines)
