"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class InvalidInstanceError(ReproError):
    """An MQDP instance violates a structural invariant.

    Raised for example when a post carries an empty label set, when a label
    referenced by a post is missing from the declared universe, or when the
    distance threshold ``lam`` is negative.
    """


class InvalidCoverError(ReproError):
    """A candidate solution is not a valid lambda-cover of its instance."""


class AlgorithmBudgetExceeded(ReproError):
    """An exact algorithm was asked to solve an instance beyond its budget.

    The exact dynamic program (:mod:`repro.core.opt`) and the brute-force
    solver (:mod:`repro.core.brute_force`) are exponential; they refuse, with
    this exception, inputs whose projected state space exceeds the configured
    limit rather than silently running forever.
    """


class StreamOrderError(ReproError):
    """Posts were fed to a streaming algorithm out of timestamp order."""


class UnknownAlgorithmError(ReproError):
    """A name passed to the algorithm registry does not match any algorithm."""


class ReductionError(ReproError):
    """The CNF-to-MQDP reduction received a malformed formula."""
