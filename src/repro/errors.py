"""Exception hierarchy for the :mod:`repro` package.

All library-raised exceptions derive from :class:`ReproError`, so callers can
catch everything coming out of this package with a single ``except`` clause
while still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the :mod:`repro` package."""


class InvalidInstanceError(ReproError):
    """An MQDP instance violates a structural invariant.

    Raised for example when a post carries an empty label set, when a label
    referenced by a post is missing from the declared universe, or when the
    distance threshold ``lam`` is negative.
    """


class InvalidCoverError(ReproError):
    """A candidate solution is not a valid lambda-cover of its instance."""


class AlgorithmBudgetExceeded(ReproError):
    """An exact algorithm was asked to solve an instance beyond its budget.

    The exact dynamic program (:mod:`repro.core.opt`) and the brute-force
    solver (:mod:`repro.core.brute_force`) are exponential; they refuse, with
    this exception, inputs whose projected state space exceeds the configured
    limit rather than silently running forever.
    """


class StreamOrderError(ReproError):
    """Posts were fed to a streaming algorithm out of timestamp order."""


class EmissionInvariantError(ReproError):
    """A streaming algorithm violated an emission invariant.

    Raised by the stream driver (and by the resilience supervisor) when an
    algorithm emits the same post twice, emits a post that never arrived, or
    stamps an emission before the post's own timestamp.  These used to be
    bare ``assert`` statements, but asserts vanish under ``python -O`` and
    invariant enforcement must not depend on interpreter flags.
    """


class SanitizationError(ReproError):
    """A malformed post was rejected by a ``raise`` sanitization policy.

    The resilience supervisor raises this when its
    :class:`~repro.resilience.policies.SanitizationPolicy` is configured to
    refuse (rather than quarantine or repair) a malformed arrival: a
    non-finite diversity value, an empty label set, or a duplicate uid.
    """


class CheckpointError(ReproError):
    """A supervisor checkpoint could not be restored.

    Raised when a serialized checkpoint is malformed, or when replaying its
    arrival journal does not reproduce the recorded emission sequence (the
    recovery-equivalence check failed).
    """


class LoaderError(ReproError):
    """A data file could not be read after the configured retry budget.

    Raised by :func:`repro.datagen.loaders.read_text_with_retry` once every
    attempt of the exponential-backoff loop has failed; the original
    ``OSError`` is attached as ``__cause__``.
    """


class ServiceOverloadError(ReproError):
    """The serving layer shed a request under admission control.

    Raised by :class:`repro.service.DiversificationService` (when
    configured with ``raise_on_shed=True``) once the token bucket is
    drained or the pending-request queue crosses its hard watermark.  The
    default behaviour is to return a ``"shed"`` response instead of
    raising, so closed-loop clients can back off gracefully.
    """


class IngestError(ReproError):
    """The durable ingest pipeline hit an unrecoverable condition.

    Raised by :mod:`repro.ingest` for misconfiguration (bad directories,
    invalid windows) and for protocol violations that replay cannot fix.
    """


class WalCorruptionError(IngestError):
    """A write-ahead-log segment is damaged beyond framing recovery.

    A torn *tail* record (the crash-mid-append case) is repaired silently
    by truncation; this error means corruption struck *inside* the log —
    a mangled magic marker or an unskippable frame — so the byte stream
    can no longer be trusted as a replay source.
    """


class UnknownAlgorithmError(ReproError):
    """A name passed to the algorithm registry does not match any algorithm."""


class ReductionError(ReproError):
    """The CNF-to-MQDP reduction received a malformed formula."""
