"""Continuous quality auditing of served digests.

Latency SLOs say nothing about *correctness*: a serving tier can be
fast, available — and quietly serving digests that no longer λ-cover
their corpus (a regression in a solver, a stitch repair gone wrong, a
cache serving across a bug).  The :class:`DigestAuditor` closes that
gap with the paper's own definitions:

* **λ-coverage re-verification** (Definition 2) — every sampled digest
  is re-checked with the existing verifier
  (:func:`repro.core.coverage.is_cover`) against the embedded instance,
  i.e. against exactly the corpus epoch it was served from;
* **approximation ratio vs OPT** (Lemma 2 territory) — on instances
  small enough for the end-pattern DP, ``|digest| / |OPT|`` is computed
  with :func:`repro.core.opt.opt_size` and published, so a drifting
  ratio is visible long before it is a bug report.

Operationally the auditor is a *sampling* sidecar: the service offers it
every served digest, it keeps a seeded random fraction in a bounded
queue, and audits run off the request path — either from the background
:meth:`run` loop or by an explicit :meth:`audit_pending` drain (tests,
cron).  Findings are published three ways: facade metrics
(``audit.samples`` / ``audit.coverage_violations`` /
``audit.approx_ratio``), structured events (WARNING on violation, with
trace correlation back to the serving request), and the
:meth:`snapshot` the service's ``introspect()`` embeds.
"""

from __future__ import annotations

import asyncio
import logging
import random
import threading
from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional

from ..core.coverage import uncovered_pairs
from ..core.opt import opt_size
from ..observability import facade as _obs
from ..observability import structlog
from ..pipeline import DigestResult

__all__ = ["AuditFinding", "DigestAuditor"]


class AuditFinding(dict):
    """One audit outcome — a plain dict with attribute sugar."""

    __getattr__ = dict.__getitem__


class DigestAuditor:
    """Samples served digests and re-verifies them off the request path.

    Parameters
    ----------
    sample_rate:
        Fraction of offered digests to audit, in [0, 1].  0 disables
        sampling entirely (every :meth:`observe` is one RNG draw saved —
        it returns immediately).
    opt_max_posts:
        Upper instance size (posts) for the exact-OPT ratio check; the
        DP is exponential in the label count, so only small instances
        get a ratio.  Coverage is verified regardless of size.
    max_queue:
        Bound on digests awaiting audit; on overflow the oldest pending
        sample is dropped (and counted) — auditing lags, it never grows
        without bound.
    seed:
        Seed for the sampling RNG, so tests and replays are exact.
    """

    def __init__(
        self,
        *,
        sample_rate: float = 1.0,
        opt_max_posts: int = 12,
        max_queue: int = 256,
        seed: int = 0,
    ):
        if not 0.0 <= sample_rate <= 1.0:
            raise ValueError(
                f"sample_rate must be in [0, 1], got {sample_rate}"
            )
        if max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {max_queue}")
        self.sample_rate = sample_rate
        self.opt_max_posts = opt_max_posts
        self.max_queue = max_queue
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        self._queue: Deque[Dict[str, Any]] = deque()
        self._task: Optional["asyncio.Task"] = None
        # lifetime stats
        self.offered = 0
        self.sampled = 0
        self.dropped = 0
        self.audited = 0
        self.coverage_violations = 0
        self.audited_by_source: Dict[str, int] = {}
        self.violations_by_source: Dict[str, int] = {}
        self.ratios: List[float] = []

    # -- intake (request path: cheap) --------------------------------------

    def observe(
        self,
        result: Optional[DigestResult],
        *,
        tenant: str = "",
        algorithm: str = "",
        epoch: int = 0,
        source: str = "batch",
    ) -> bool:
        """Offer one served digest; returns True when it was sampled.

        ``source`` tags where the digest came from (``"batch"`` solver
        run, ``"view"`` maintained cover, ``"cache"`` hit) so audit
        findings distinguish an incremental-maintenance regression from
        a solver one."""
        if result is None:
            return False
        self.offered += 1
        if self.sample_rate <= 0.0:
            return False
        if self.sample_rate < 1.0 and \
                self._rng.random() >= self.sample_rate:
            return False
        item = {
            "result": result,
            "tenant": tenant,
            "algorithm": algorithm,
            "epoch": epoch,
            "source": source,
            "trace_id": result.trace_id,
        }
        with self._lock:
            self._queue.append(item)
            if len(self._queue) > self.max_queue:
                self._queue.popleft()
                self.dropped += 1
        self.sampled += 1
        _obs.count("audit.samples")
        return True

    # -- auditing (off the request path) -----------------------------------

    def _audit_one(self, item: Dict[str, Any]) -> AuditFinding:
        result: DigestResult = item["result"]
        instance = result.instance
        missing = uncovered_pairs(instance, result.solution.posts)
        covered = not missing
        ratio: Optional[float] = None
        opt: Optional[int] = None
        if (
            covered
            and len(instance.posts) <= self.opt_max_posts
            and result.size > 0
        ):
            opt = opt_size(instance)
            if opt > 0:
                ratio = result.size / opt
        source = item.get("source", "batch")
        finding = AuditFinding(
            tenant=item["tenant"],
            algorithm=item["algorithm"],
            epoch=item["epoch"],
            source=source,
            trace_id=item["trace_id"],
            covered=covered,
            uncovered_pairs=len(missing),
            size=result.size,
            opt=opt,
            approx_ratio=ratio,
        )
        self.audited += 1
        self.audited_by_source[source] = \
            self.audited_by_source.get(source, 0) + 1
        if not covered:
            self.coverage_violations += 1
            self.violations_by_source[source] = \
                self.violations_by_source.get(source, 0) + 1
            _obs.count("audit.coverage_violations")
            structlog.emit(
                "audit.coverage_violation",
                level=logging.WARNING,
                trace_id=item["trace_id"],
                tenant=item["tenant"],
                epoch=item["epoch"],
                source=source,
                algorithm=item["algorithm"],
                uncovered_pairs=len(missing),
                sample=[list(pair) for pair in missing[:5]],
            )
        if ratio is not None:
            self.ratios.append(ratio)
            _obs.observe("audit.approx_ratio", ratio)
        _obs.count("audit.audited")
        return finding

    def audit_pending(self) -> List[AuditFinding]:
        """Drain the queue and audit everything in it, synchronously."""
        with self._lock:
            items = list(self._queue)
            self._queue.clear()
        return [self._audit_one(item) for item in items]

    # -- background loop ---------------------------------------------------

    async def run(self, interval: float = 0.05) -> None:
        """Audit forever: drain, sleep ``interval``, repeat.

        Runs until cancelled; the drain itself is synchronous and small
        (bounded by ``max_queue``), so the loop stays cooperative.
        """
        try:
            while True:
                self.audit_pending()
                await asyncio.sleep(interval)
        except asyncio.CancelledError:
            self.audit_pending()  # final drain on clean shutdown
            raise

    def start(self, interval: float = 0.05) -> "asyncio.Task":
        """Spawn :meth:`run` on the running loop (idempotent)."""
        if self._task is None or self._task.done():
            self._task = asyncio.get_running_loop().create_task(
                self.run(interval)
            )
        return self._task

    async def stop(self) -> None:
        """Cancel the background loop and await its final drain."""
        if self._task is None:
            return
        self._task.cancel()
        try:
            await self._task
        except asyncio.CancelledError:
            pass
        self._task = None

    # -- introspection -----------------------------------------------------

    def pending(self) -> int:
        with self._lock:
            return len(self._queue)

    def pass_rate(self) -> float:
        """Audited digests that verified, as a fraction (1.0 before any)."""
        if not self.audited:
            return 1.0
        return (self.audited - self.coverage_violations) / self.audited

    def snapshot(self) -> Dict[str, Any]:
        """JSON-safe auditor stats for ``service.introspect()``."""
        ratios = self.ratios
        return {
            "sample_rate": self.sample_rate,
            "offered": self.offered,
            "sampled": self.sampled,
            "dropped": self.dropped,
            "pending": self.pending(),
            "audited": self.audited,
            "audited_by_source": dict(self.audited_by_source),
            "coverage_violations": self.coverage_violations,
            "violations_by_source": dict(self.violations_by_source),
            "pass_rate": self.pass_rate(),
            "approx_ratio": {
                "count": len(ratios),
                "mean": sum(ratios) / len(ratios) if ratios else None,
                "max": max(ratios) if ratios else None,
            },
            "running": self._task is not None and not self._task.done(),
        }
