"""``repro.service`` — the async multi-tenant serving layer.

The paper's motivating deployment: one diversification tier answering
many sessions' digest queries over a shared, continuously-fed corpus.
:class:`DiversificationService` is the front door; the supporting pieces
(epoch-keyed :class:`ResultCache`, :class:`AdmissionController`,
:class:`RequestCoalescer` / :class:`MicroBatcher`) are exported for
direct use and testing.  See ``docs/serving.md`` for the tour.
"""

from ..incremental import CoverView, ViewKey, ViewRegistry
from .admission import ADMIT, DEGRADE, SHED, AdmissionController, \
    AdmissionDecision, TokenBucket
from .auditor import AuditFinding, DigestAuditor
from .cache import CacheKey, CacheStats, ResultCache
from .coalescer import MicroBatcher, RequestCoalescer
from .service import DigestRequest, DiversificationService, \
    ServiceConfig, ServiceResponse, Subscription

__all__ = [
    "ADMIT",
    "DEGRADE",
    "SHED",
    "AdmissionController",
    "AdmissionDecision",
    "AuditFinding",
    "CacheKey",
    "CacheStats",
    "CoverView",
    "DigestAuditor",
    "ViewKey",
    "ViewRegistry",
    "DigestRequest",
    "DiversificationService",
    "MicroBatcher",
    "RequestCoalescer",
    "ResultCache",
    "ServiceConfig",
    "ServiceResponse",
    "Subscription",
    "TokenBucket",
]
