"""The asyncio multi-tenant serving front end.

:class:`DiversificationService` is the tier the paper's motivating
scenario calls for — an online digest service where many sessions
subscribe to label sets and continuously receive lambda-covered
summaries — implemented over the existing stack end to end:

* **digest requests** flow through admission control
  (:mod:`~repro.service.admission`), the epoch-keyed result cache
  (:mod:`~repro.service.cache`), single-flight coalescing and solver
  micro-batching (:mod:`~repro.service.coalescer`) onto
  :class:`~repro.pipeline.DiversificationPipeline` running on a
  :mod:`repro.engine` shard executor;
* **stream traffic** feeds one supervised pipeline
  (:class:`~repro.resilience.supervisor.StreamSupervisor` underneath),
  so hostile arrivals are quarantined or repaired rather than crashing
  the tier, and emissions fan out to per-session label-filtered
  :class:`Subscription` queues;
* **pressure degrades before it fails**: the soft watermark steps
  requests down the batch ladder (GreedySC -> Scan+ -> Scan), the hard
  watermark and token bucket shed, and supervisor faults surface as
  quarantine counts and degraded responses — never unhandled exceptions;
* **everything is observable**: RED metrics (``service.requests``,
  ``service.errors``, ``service.latency`` histograms), cache hit/miss
  counters, shed/degrade counters and per-stage spans, all through
  :mod:`repro.observability`.

Corpus versioning is the invariant the cache hangs off: any mutation of
what a digest could see — batch ingest, an admitted stream arrival, a
checkpoint restore — bumps the corpus epoch, which atomically unreaches
every cached digest computed against the old corpus.
"""

from __future__ import annotations

import asyncio
import logging
import time as _time
from collections import deque
from dataclasses import dataclass
from dataclasses import replace as _dc_replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, \
    Optional, Sequence, Tuple

from ..core.registry import available_algorithms
from ..core.streaming import _STREAM_FACTORIES
from ..errors import ReproError, ServiceOverloadError
from ..incremental import DocumentProjector, PostStore, ViewRegistry
from ..index.inverted_index import Document
from ..index.query import LabelMatcher, TopicQuery
from ..engine.executors import get_executor
from ..observability import facade as _obs
from ..observability import structlog
from ..observability.collector import ScrapeLedger
from ..observability.metrics import MetricsRegistry
from ..observability.slo import SLOMonitor
from ..observability.traces import head_sample
from ..observability.tracing import TraceContext
from ..pipeline import DigestResult, DiversificationPipeline, \
    _resolve_dimension
from ..resilience.checkpoint import Checkpoint
from ..resilience.policies import SanitizationPolicy
from ..resilience.supervisor import ResilienceConfig, StreamSupervisor
from ..stream.events import Emission
from .admission import ADMIT, DEGRADE, SHED, AdmissionController, \
    TokenBucket
from .auditor import DigestAuditor
from .cache import CacheKey, ResultCache
from .coalescer import MicroBatcher, RequestCoalescer

__all__ = [
    "DigestRequest",
    "DiversificationService",
    "ServiceConfig",
    "ServiceResponse",
    "Subscription",
]

DEFAULT_DEGRADE_LADDER: Tuple[str, ...] = ("greedy_sc", "scan+", "scan")

OK = "ok"
DEGRADED = "degraded"
ERROR = "error"
# SHED is reused from .admission as a response status


@dataclass(frozen=True)
class ServiceConfig:
    """Tuning knobs for one :class:`DiversificationService`.

    See ``docs/serving.md`` for the tuning guide.  The defaults are
    conservative: coalescing on (zero-window, i.e. same-tick), cache on,
    rate limiting off, watermarks sized for a single-process deployment.
    """

    # solving
    algorithm: str = "greedy_sc"
    dimension: str = "time"
    dedup_distance: Optional[int] = 3
    degrade_ladder: Tuple[str, ...] = DEFAULT_DEGRADE_LADDER
    executor: str = "thread"
    workers: Optional[int] = None
    # batching / coalescing
    coalesce_window: float = 0.0
    max_batch: int = 8
    # cache
    cache_capacity: int = 256
    cache_ttl: Optional[float] = None
    # admission
    rate: Optional[float] = None
    burst: Optional[float] = None
    soft_watermark: int = 32
    hard_watermark: int = 128
    raise_on_shed: bool = False
    # streaming
    stream_lam: float = 60.0
    stream_algorithm: str = "stream_scan+"
    tau: float = 0.0
    subscription_depth: int = 256
    resilience: Optional[ResilienceConfig] = None
    # SLO monitoring
    slo_objective: float = 0.99
    slo_windows: Tuple[float, float] = (300.0, 3600.0)
    # quality auditing (0.0 = off; 1.0 = audit every served digest)
    audit_sample: float = 0.0
    audit_opt_max: int = 12
    audit_seed: int = 0
    # incremental materialized cover views (the CQRS read path):
    # ingest applies deltas, digest() reads a maintained cover.  A view
    # past view_rebuild_ratio x its seeding batch solve (+ slack) is
    # routed back through the batch engine and re-seeded.  view_window
    # slides the corpus: posts older than (newest - view_window) expire
    # from views AND from batch solves, keeping both paths on one
    # window; it requires dedup off (SimHash kept-sets cannot be
    # unwound when their anchor documents expire) and the time
    # dimension (the window is an age).
    views: bool = True
    view_rebuild_ratio: float = 3.0
    view_rebuild_slack: int = 8
    max_views: int = 64
    view_window: Optional[float] = None
    # observability control plane: head-based trace sampling (None =
    # trace every request when the facade is on; 0.1 = spans for ~10 %
    # of requests, chosen deterministically from the trace id so every
    # tier agrees) and the slow-solve profile-capture threshold (a
    # solve slower than this, with a profiler attached, gets its
    # trailing profile window recorded against the trace id)
    trace_sample: Optional[float] = None
    profile_slow_s: Optional[float] = None
    # time
    clock: Callable[[], float] = _time.perf_counter

    def __post_init__(self) -> None:
        if self.algorithm not in available_algorithms():
            raise ReproError(
                f"unknown algorithm {self.algorithm!r}; available: "
                + ", ".join(available_algorithms())
            )
        unknown = [
            name for name in self.degrade_ladder
            if name not in available_algorithms()
        ]
        if unknown:
            raise ReproError(
                f"unknown algorithms in degrade ladder: {unknown}"
            )
        if not self.degrade_ladder:
            raise ReproError("degrade_ladder needs at least one rung")
        if self.stream_algorithm not in _STREAM_FACTORIES:
            raise ReproError(
                f"unknown streaming algorithm {self.stream_algorithm!r}"
            )
        if self.executor not in ("serial", "thread"):
            raise ReproError(
                "the service batches live closures; executor must be "
                f"'serial' or 'thread', got {self.executor!r}"
            )
        if not 0.0 <= self.audit_sample <= 1.0:
            raise ReproError(
                f"audit_sample must be in [0, 1], got {self.audit_sample}"
            )
        if self.view_rebuild_ratio < 1.0:
            raise ReproError(
                "view_rebuild_ratio must be >= 1, got "
                f"{self.view_rebuild_ratio}"
            )
        if self.view_rebuild_slack < 0:
            raise ReproError(
                "view_rebuild_slack must be >= 0, got "
                f"{self.view_rebuild_slack}"
            )
        if self.max_views < 1:
            raise ReproError(
                f"max_views must be >= 1, got {self.max_views}"
            )
        if self.trace_sample is not None \
                and not 0.0 <= self.trace_sample <= 1.0:
            raise ReproError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
        if self.profile_slow_s is not None and self.profile_slow_s < 0:
            raise ReproError(
                f"profile_slow_s must be >= 0, got {self.profile_slow_s}"
            )
        if self.view_window is not None:
            if self.view_window <= 0:
                raise ReproError(
                    f"view_window must be positive, got {self.view_window}"
                )
            if not self.views:
                raise ReproError("view_window requires views=True")
            if self.dimension != "time":
                raise ReproError(
                    "view_window is an age bound; it requires the "
                    f"'time' dimension, got {self.dimension!r}"
                )
            if self.dedup_distance is not None:
                raise ReproError(
                    "view_window requires dedup_distance=None: SimHash "
                    "kept-sets are order-sensitive and cannot be "
                    "unwound when anchor documents expire"
                )


@dataclass(frozen=True)
class DigestRequest:
    """One tenant's digest query.

    ``labels=None`` requests the full topic universe; otherwise a subset
    of the service's labels.  ``algorithm=None`` uses the service
    default.  ``session`` is an opaque tenant tag for per-session
    accounting only — it deliberately does NOT enter the cache/coalesce
    key, which is what lets different tenants share one solver run.
    """

    lam: float
    labels: Optional[Tuple[str, ...]] = None
    algorithm: Optional[str] = None
    dimension: Optional[str] = None
    session: str = "anonymous"

    def __post_init__(self) -> None:
        if self.labels is not None:
            object.__setattr__(
                self, "labels", tuple(sorted(set(self.labels)))
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation — what the cluster router puts on
        the wire when it forwards a request to a worker shard."""
        return {
            "lam": self.lam,
            "labels": None if self.labels is None
            else list(self.labels),
            "algorithm": self.algorithm,
            "dimension": self.dimension,
            "session": self.session,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "DigestRequest":
        labels = payload.get("labels")
        return cls(
            lam=float(payload["lam"]),
            labels=None if labels is None else tuple(labels),
            algorithm=payload.get("algorithm"),
            dimension=payload.get("dimension"),
            session=str(payload.get("session", "anonymous")),
        )


@dataclass(frozen=True)
class ServiceResponse:
    """Outcome of one digest request.

    ``status`` is ``"ok"``, ``"degraded"`` (served at a lower ladder
    rung), ``"shed"`` (refused; ``result`` is None) or ``"error"``
    (solver failure surfaced as data, not as an exception).
    """

    status: str
    result: Optional[DigestResult]
    algorithm: str
    cached: bool = False
    coalesced: bool = False
    view: bool = False
    latency_s: float = 0.0
    epoch: int = 0
    reason: str = ""
    # The request's own trace (always minted, even with observability
    # off).  A coalesced/cached response's *result* additionally carries
    # the producing trace's id — the two differ exactly when this
    # request did not do the solving itself.
    trace_id: str = ""

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation — the service's wire format."""
        return {
            "status": self.status,
            "result": None if self.result is None else
            self.result.to_dict(),
            "algorithm": self.algorithm,
            "cached": self.cached,
            "coalesced": self.coalesced,
            "view": self.view,
            "latency_s": self.latency_s,
            "epoch": self.epoch,
            "reason": self.reason,
            "trace_id": self.trace_id,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ServiceResponse":
        """Inverse of :meth:`to_dict` — the router reconstructs a
        worker's response from its wire frame."""
        result = payload.get("result")
        return cls(
            status=str(payload["status"]),
            result=None if result is None
            else DigestResult.from_dict(result),
            algorithm=str(payload.get("algorithm", "")),
            cached=bool(payload.get("cached", False)),
            coalesced=bool(payload.get("coalesced", False)),
            view=bool(payload.get("view", False)),
            latency_s=float(payload.get("latency_s", 0.0)),
            epoch=int(payload.get("epoch", 0)),
            reason=str(payload.get("reason", "")),
            trace_id=str(payload.get("trace_id", "")),
        )


class Subscription:
    """A session-scoped, label-filtered stream of emissions.

    The service offers every stream emission to every subscription; the
    subscription keeps those intersecting its label filter (``None``
    keeps everything).  The queue is bounded: on overflow the *oldest*
    pending emission is dropped (freshness beats completeness in a live
    digest) and ``dropped`` is incremented.

    Deliberately not an :class:`asyncio.Queue`: on Python 3.9 a Queue
    binds its event loop at construction, and subscriptions are created
    from synchronous code, possibly before (or between) loops.  A deque
    plus waiter futures created inside :meth:`next` is loop-agnostic.
    """

    def __init__(
        self,
        sid: int,
        session: str,
        labels: Optional[Iterable[str]] = None,
        depth: int = 256,
    ):
        if depth < 1:
            raise ValueError(f"subscription depth must be >= 1: {depth}")
        self.sid = sid
        self.session = session
        self.labels = None if labels is None else frozenset(labels)
        self.depth = depth
        self._items: "deque" = deque()
        self._waiters: "deque" = deque()
        self.delivered = 0
        self.dropped = 0
        self.filtered = 0

    def _offer(self, emission: Emission) -> bool:
        if self.labels is not None and not (
            emission.post.labels & self.labels
        ):
            self.filtered += 1
            return False
        self._items.append(emission)
        self.delivered += 1
        if len(self._items) > self.depth:
            self._items.popleft()
            self.dropped += 1
            _obs.count("service.subscription.dropped")
        while self._waiters:
            waiter = self._waiters.popleft()
            if not waiter.done():
                waiter.set_result(None)
                break
        return True

    async def next(self) -> Emission:
        """Wait for the next matching emission."""
        while not self._items:
            waiter = asyncio.get_running_loop().create_future()
            self._waiters.append(waiter)
            try:
                await waiter
            finally:
                if not waiter.done():
                    waiter.cancel()
        return self._items.popleft()

    def drain(self) -> List[Emission]:
        """Every emission currently queued, without waiting."""
        out = list(self._items)
        self._items.clear()
        return out

    def __len__(self) -> int:
        return len(self._items)


class DiversificationService:
    """Async multi-tenant serving layer over the diversification stack.

    Parameters
    ----------
    queries:
        The topic universe this service answers over.  Requests select
        label subsets of it.
    config:
        A :class:`ServiceConfig`; defaults are sensible for tests and
        small deployments.
    """

    def __init__(
        self,
        queries: Sequence[TopicQuery],
        config: Optional[ServiceConfig] = None,
    ):
        self.config = config if config is not None else ServiceConfig()
        self.queries: Tuple[TopicQuery, ...] = tuple(queries)
        self._by_label: Dict[str, TopicQuery] = {
            q.label: q for q in self.queries
        }
        if len(self._by_label) != len(self.queries):
            raise ReproError("duplicate labels in service query set")
        self.labels: Tuple[str, ...] = tuple(sorted(self._by_label))
        self._clock = self.config.clock
        self.cache = ResultCache(
            capacity=self.config.cache_capacity,
            ttl=self.config.cache_ttl,
            clock=self._clock,
        )
        bucket = None
        if self.config.rate is not None:
            bucket = TokenBucket(
                self.config.rate, self.config.burst, clock=self._clock
            )
        self.admission = AdmissionController(
            bucket=bucket,
            soft_watermark=self.config.soft_watermark,
            hard_watermark=self.config.hard_watermark,
        )
        self.coalescer = RequestCoalescer()
        # One executor instance for the service's lifetime: its lazily
        # created pool stays warm across requests (executors no longer
        # rebuild a pool per run), and the service owns its teardown —
        # close() here and on checkpoint restore.
        self.executor = get_executor(
            self.config.executor, self.config.workers
        )
        self.batcher = MicroBatcher(
            self.executor,
            window=self.config.coalesce_window,
            max_batch=self.config.max_batch,
        )
        self._resilience = (
            self.config.resilience
            if self.config.resilience is not None
            else ResilienceConfig(policy=SanitizationPolicy())
        )
        # Incremental read path: a shared projected-post store plus the
        # registry of maintained cover views.  The bare matcher backs
        # label-targeted cache invalidation when views are off.
        self._value_of = _resolve_dimension(self.config.dimension)
        self._matcher = LabelMatcher(self.queries)
        self._view_store: Optional[PostStore] = None
        self._views: Optional[ViewRegistry] = None
        if self.config.views:
            self._view_store = self._build_view_store()
            self._views = ViewRegistry(
                self._view_store,
                rebuild_ratio=self.config.view_rebuild_ratio,
                rebuild_slack=self.config.view_rebuild_slack,
                max_views=self.config.max_views,
                default_window=self.config.view_window,
            )
        # Poisoned: the corpus reached a state the projection cannot
        # represent (e.g. duplicate uids across ingest and stream — a
        # state batch solves fail on too).  Views stay dark until a
        # rebuild (restore) reprojects a clean corpus.
        self._views_poisoned = False
        self._stream_pipeline = self._build_stream_pipeline()
        # Corpus: batch-ingested and stream-admitted documents, separate
        # so checkpoint restore can roll back exactly the streamed part.
        self._ingested: List[Document] = []
        self._streamed: List[Document] = []
        self._subscriptions: Dict[int, Subscription] = {}
        self._next_sid = 1
        self._pending = 0
        self.solves = 0
        self.requests = 0
        self.errors = 0
        # Always-on service state (like the counters above): per-tenant
        # SLO accounting and the quality auditor.  Neither is behind the
        # observability facade — SLOs are a service feature.
        self.slo = SLOMonitor(
            objective=self.config.slo_objective,
            windows=self.config.slo_windows,
            clock=self._clock,
        )
        self.auditor = DigestAuditor(
            sample_rate=self.config.audit_sample,
            opt_max_posts=self.config.audit_opt_max,
            seed=self.config.audit_seed,
        )
        # Per-service telemetry: the always-on registry the cluster
        # `scrape` op federates.  Deliberately NOT the process-global
        # facade registry — in-process cluster harnesses share that one
        # across every worker, which would defeat per-node federation.
        self.telemetry = MetricsRegistry(clock=self._clock)
        self._telemetry_ledger = ScrapeLedger(self.telemetry)
        # Continuous-profiling hooks: an attached Profiler plus the
        # bounded ring of slow-solve captures (profile_slow_s gates).
        self._profiler: Optional[Any] = None
        self.slow_profiles: "deque" = deque(maxlen=8)
        # When this service runs as a cluster worker, the node sets
        # this to a callable returning its role/ring/peer summary —
        # health() and introspect() surface it as a "cluster" section.
        self.cluster_info: Optional[Callable[[], Dict[str, Any]]] = None

    # -- construction ------------------------------------------------------

    def _build_view_store(self) -> PostStore:
        return PostStore(DocumentProjector(
            self.queries,
            dedup_distance=self.config.dedup_distance,
            value_of=self._value_of,
        ))

    def _build_stream_pipeline(self) -> DiversificationPipeline:
        return DiversificationPipeline(
            self.queries,
            lam=self.config.stream_lam,
            stream_algorithm=self.config.stream_algorithm,
            tau=self.config.tau,
            dimension=self.config.dimension,
            dedup_distance=self.config.dedup_distance,
            resilience=self._resilience,
        )

    # -- corpus ------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The corpus version all cache keys embed."""
        return self.cache.epoch

    def corpus(self) -> Tuple[Document, ...]:
        """Every document a digest may currently see."""
        return tuple(self._ingested) + tuple(self._streamed)

    def corpus_size(self) -> int:
        return len(self._ingested) + len(self._streamed)

    def _served_documents(
        self, labels: Optional[Tuple[str, ...]] = None
    ) -> Tuple[Document, ...]:
        """The corpus a batch solve sees: with a sliding view window,
        documents older than the store horizon are excluded, keeping
        the batch path on exactly the window the views maintain.  A
        per-label-set window override may clip further than the store's
        physical horizon (which sits at the *widest* window)."""
        documents = self.corpus()
        store = self._view_store
        if store is None:
            return documents
        horizon = store.horizon
        if labels is not None and self._views is not None:
            window = self._views.window_for(labels)
            if window is not None and store.max_value is not None:
                own = store.max_value - window
                horizon = own if horizon is None else max(horizon, own)
        if horizon is None:
            return documents
        value_of = self._value_of
        cutoff = horizon
        return tuple(
            document for document in documents
            if value_of(document) >= cutoff
        )

    def ingest(self, documents: Iterable[Document]) -> int:
        """Add a document batch to the corpus; invalidates the cache.

        View deltas are applied before the epoch bump, and the bump is
        label-targeted: cached digests whose labels the batch did not
        touch survive, re-keyed to the new epoch.  Returns the new
        corpus epoch.
        """
        documents = list(documents)
        self._ingested.extend(documents)
        _obs.count("service.ingested", len(documents))
        affected = self._apply_view_deltas(documents, source="ingest")
        epoch = self.cache.bump_epoch("ingest", labels=affected)
        if self._views is not None:
            self._views.commit(epoch)
        return epoch

    def _apply_view_deltas(
        self,
        documents: Sequence[Document],
        source: str,
    ) -> Optional[Iterable[str]]:
        """Project new documents into the view store and fan deltas out.

        Returns the affected label set for fine-grained cache
        invalidation, or ``None`` when everything must be purged (the
        incremental projection had to be rebuilt wholesale).
        """
        affected: set = set()
        if self._views is None or self._view_store is None \
                or self._views_poisoned:
            for document in documents:
                affected |= self._matcher.match(document.text)
            return affected
        if (
            self.config.dedup_distance is not None
            and source == "ingest"
            and self._streamed
        ):
            # SimHash kept-sets are order-sensitive: the batch corpus
            # is ingested-then-streamed, but these documents arrived
            # *after* streamed ones — the incremental projection would
            # diverge from what a batch solve sees.  Reproject the whole
            # corpus in batch order and purge conservatively.
            self._rebuild_views("ingest-after-stream")
            return None
        store = self._view_store
        try:
            for document in documents:
                post = store.ingest_document(document)
                if post is None:
                    continue
                affected |= post.labels
                self._views.apply_insert(post)
            retention = self._views.retention()
            if retention is not None and store.max_value is not None:
                # physical expiry at the *widest* window any view needs
                removed = store.expire(store.max_value - retention)
                for post in removed:
                    affected |= post.labels
                self._views.apply_expire(removed)
            # narrower per-view windows slide their own horizons; a
            # moved horizon changes that view's answer even when the
            # batch touched none of its labels, so those labels join
            # the invalidation set
            affected |= self._views.advance(store.max_value)
        except ReproError as error:
            # e.g. duplicate uids across ingest and stream — a corpus
            # state batch solves fail on too.  Views go dark rather
            # than taking the write path down.
            self._poison_views(repr(error))
            return None
        return affected

    def set_view_window(
        self,
        labels: Iterable[str],
        window: Optional[float],
    ) -> int:
        """Override the sliding window for one label set.

        Same preconditions as ``ServiceConfig.view_window`` (views on,
        time dimension, dedup off); ``None`` clears the override.  The
        store keeps retaining at the widest window of any view; a
        narrower override clips that label set's reads at its own
        horizon.  Invalidate-then-commit: affected cached digests are
        dropped and the label set's views re-seed from the next batch
        solve.  Returns the new corpus epoch.
        """
        if self._views is None:
            raise ReproError("view windows require views=True")
        if self.config.dimension != "time":
            raise ReproError(
                "view windows are age bounds; they require the 'time' "
                f"dimension, got {self.config.dimension!r}"
            )
        if self.config.dedup_distance is not None:
            raise ReproError(
                "view windows require dedup_distance=None: SimHash "
                "kept-sets are order-sensitive and cannot be unwound "
                "when anchor documents expire"
            )
        labels = tuple(sorted(set(labels)))
        unknown = [lbl for lbl in labels if lbl not in self._by_label]
        if unknown:
            raise ReproError(
                f"unknown labels {unknown}; this service answers over "
                f"{list(self.labels)}"
            )
        if not labels:
            raise ReproError("a view window needs at least one label")
        if window is not None and window <= 0:
            raise ReproError(
                f"view_window must be positive, got {window}"
            )
        self._views.set_window(labels, window)
        store = self._view_store
        if store is not None and store.max_value is not None:
            # apply the new horizon right away: physical expiry at the
            # (possibly changed) widest window, then per-view horizons
            retention = self._views.retention()
            if retention is not None:
                removed = store.expire(store.max_value - retention)
                self._views.apply_expire(removed)
            self._views.advance(store.max_value)
        epoch = self.cache.bump_epoch("view-window", labels=labels)
        self._views.commit(epoch)
        structlog.emit(
            "service.view_window_set",
            labels=list(labels),
            window=window,
            epoch=epoch,
        )
        return epoch

    def _poison_views(self, reason: str) -> None:
        self._views_poisoned = True
        if self._views is not None:
            self._views.invalidate_all("poisoned")
        _obs.count("service.views.poisoned")
        structlog.emit(
            "service.views_poisoned",
            level=logging.WARNING,
            reason=reason,
        )

    def _rebuild_views(self, reason: str) -> None:
        """Reproject the whole corpus into a fresh store and invalidate
        every view (they re-seed from the next batch solve)."""
        store = self._build_view_store()
        try:
            for document in self.corpus():
                store.ingest_document(document)
            retention = (
                self._views.retention() if self._views is not None
                else self.config.view_window
            )
            if retention is not None and store.max_value is not None:
                store.expire(store.max_value - retention)
        except ReproError as error:
            self._poison_views(repr(error))
            return
        self._view_store = store
        self._views_poisoned = False
        if self._views is not None:
            self._views.rebind(store)
        _obs.count("service.views.rebuilds")
        structlog.emit(
            "service.views_rebuilt",
            reason=reason,
            posts=len(store),
        )

    # -- digest path -------------------------------------------------------

    def _resolve_labels(
        self, requested: Optional[Tuple[str, ...]]
    ) -> Tuple[str, ...]:
        if requested is None:
            return self.labels
        unknown = [lbl for lbl in requested if lbl not in self._by_label]
        if unknown:
            raise ReproError(
                f"unknown labels {unknown}; this service answers over "
                f"{list(self.labels)}"
            )
        if not requested:
            raise ReproError("a digest request needs at least one label")
        return requested

    def _degraded_algorithm(self, algorithm: str, steps: int) -> str:
        ladder = self.config.degrade_ladder
        try:
            start = ladder.index(algorithm)
        except ValueError:
            # requested algorithm is off-ladder: pressure maps straight
            # onto the ladder from the top
            start = -1
        return ladder[min(start + steps, len(ladder) - 1)]

    def _solve_job(
        self,
        labels: Tuple[str, ...],
        lam: float,
        algorithm: str,
        dimension: str,
        documents: Tuple[Document, ...],
        ctx: TraceContext,
    ) -> DigestResult:
        """The synchronous work unit shipped to the shard executor.

        Runs on an executor thread with no inherited trace state, so the
        leader's context is re-activated explicitly; the produced digest
        is stamped with the trace that computed it, which is what lets
        followers and cache hits link back to the actual solve.
        """
        queries = [self._by_label[label] for label in labels]
        pipeline = DiversificationPipeline(
            queries,
            lam=lam,
            algorithm=algorithm,
            dimension=dimension,
            dedup_distance=self.config.dedup_distance,
            resilience=self.config.resilience,
        )
        with _obs.activate(ctx):
            with _obs.span(
                "service.solve", algorithm=algorithm,
                labels=len(labels), documents=len(documents),
            ) as span:
                result = pipeline.digest(documents)
        return _dc_replace(
            result,
            trace_id=ctx.trace_id,
            solve_span_id=getattr(span, "span_id", None),
        )

    def _read_view(self, key: CacheKey) -> Optional[DigestResult]:
        """The maintained-view digest for this cache key, or ``None``.

        Only views on the service's configured dimension are consulted
        (the store projects values on that dimension); the registry
        enforces the epoch discipline — a view is served only at the
        exact corpus version it was committed at."""
        if self._views is None or self._views_poisoned \
                or key.dimension != self.config.dimension:
            return None
        view = self._views.read(
            ViewRegistry.key_for(
                key.labels, key.lam, key.algorithm, key.dimension
            ),
            key.epoch,
        )
        if view is None:
            return None
        instance, solution = view.materialize()
        store = self._view_store
        projector = store.projector if store is not None else None
        live = store.live_documents_since(view.horizon) \
            if store is not None else 0
        return DigestResult(
            solution=solution,
            instance=instance,
            matched=len(instance.posts),
            duplicates_dropped=(
                0 if projector is None
                else projector.duplicates_dropped
            ),
            unmatched_dropped=max(0, live - len(instance.posts)),
        )

    def _account(
        self,
        request: DigestRequest,
        ctx: TraceContext,
        response: ServiceResponse,
    ) -> ServiceResponse:
        """Post-serve hooks shared by every exit path: SLO accounting,
        per-node telemetry, slow-solve profile capture, quality-audit
        sampling, and the correlated structured event."""
        self.slo.record(
            request.session, response.algorithm,
            latency_s=response.latency_s, status=response.status,
            cached=response.cached,
        )
        telemetry = self.telemetry
        telemetry.counter("service.requests").inc()
        telemetry.counter(f"service.status.{response.status}").inc()
        if response.cached:
            telemetry.counter("service.cache_hits").inc()
        if response.view:
            telemetry.counter("service.view_hits").inc()
        telemetry.histogram("service.latency_s").observe(
            response.latency_s
        )
        if (
            self._profiler is not None
            and self.config.profile_slow_s is not None
            and not response.cached
            and not response.view
            and response.status in (OK, DEGRADED)
            and response.latency_s >= self.config.profile_slow_s
        ):
            self._capture_slow_profile(request, response)
        if response.result is not None:
            self.auditor.observe(
                response.result,
                tenant=request.session,
                algorithm=response.algorithm,
                epoch=response.epoch,
                source="view" if response.view
                else ("cache" if response.cached else "batch"),
            )
        level = logging.INFO if response.status in (OK, DEGRADED) \
            else logging.WARNING
        structlog.emit(
            f"service.{response.status}",
            level=level,
            trace_id=ctx.trace_id,
            tenant=request.session,
            epoch=response.epoch,
            algorithm=response.algorithm,
            latency_s=response.latency_s,
            cached=response.cached,
            coalesced=response.coalesced,
            reason=response.reason,
        )
        return response

    def _capture_slow_profile(
        self,
        request: DigestRequest,
        response: ServiceResponse,
    ) -> None:
        """Attach the profiler's trailing window to a flagged slow
        solve — the same over-threshold solves the auditor samples —
        so "why was this one slow" has stacks, not just a latency."""
        capture = self._profiler.snapshot_recent(
            window_s=max(response.latency_s, 0.25)
        )
        self.slow_profiles.append({
            "trace_id": response.trace_id,
            "tenant": request.session,
            "algorithm": response.algorithm,
            "latency_s": response.latency_s,
            "samples": capture["samples"],
            "collapsed": capture["collapsed"],
        })
        self.telemetry.counter("service.slow_profiles").inc()
        structlog.emit(
            "service.slow_solve_profiled",
            level=logging.WARNING,
            trace_id=response.trace_id,
            tenant=request.session,
            epoch=response.epoch,
            algorithm=response.algorithm,
            latency_s=response.latency_s,
            samples=capture["samples"],
        )

    async def digest(self, request: DigestRequest) -> ServiceResponse:
        """Serve one digest request end to end.

        Never raises for overload or solver failure (unless
        ``raise_on_shed`` is set): pressure and faults come back as
        ``shed`` / ``degraded`` / ``error`` responses.  Every response
        carries a freshly minted trace_id; with observability enabled
        its assembled span tree explains the whole request.
        """
        started = self._clock()
        ctx = TraceContext.mint(tenant=request.session)
        self.requests += 1
        if _obs.enabled():
            _obs.count("service.requests")
            _obs.count(f"service.sessions.{request.session}.requests")
        # Head-based trace sampling: metrics stay exact for every
        # request; spans are only recorded for the sampled fraction.
        # The decision hashes the trace id, so the router/worker tiers
        # reach the same verdict for the same request without any flag
        # on the wire.
        traced = _obs.enabled() and (
            self.config.trace_sample is None
            or head_sample(ctx.trace_id, self.config.trace_sample)
        )
        if not traced:
            if _obs.enabled():
                _obs.count("service.trace_unsampled")
            return await self._serve(
                request, ctx, started, traced=False
            )
        with _obs.activate(ctx):
            with _obs.span(
                "service.request",
                tenant=request.session,
                lam=request.lam,
            ) as root:
                return await self._serve(
                    request,
                    ctx.at(getattr(root, "span_id", None)),
                    started,
                )

    async def _serve(
        self,
        request: DigestRequest,
        ctx: TraceContext,
        started: float,
        *,
        traced: bool = True,
    ) -> ServiceResponse:
        decision = self.admission.admit(self._pending)
        algorithm = request.algorithm or self.config.algorithm
        if decision.action == SHED:
            _obs.count("service.shed")
            latency = self._clock() - started
            response = self._account(request, ctx, ServiceResponse(
                status=SHED, result=None, algorithm=algorithm,
                latency_s=latency, epoch=self.epoch,
                reason=decision.reason, trace_id=ctx.trace_id or "",
            ))
            if self.config.raise_on_shed:
                raise ServiceOverloadError(decision.reason)
            return response
        try:
            labels = self._resolve_labels(request.labels)
        except ReproError as error:
            self.errors += 1
            _obs.count("service.errors")
            return self._account(request, ctx, ServiceResponse(
                status=ERROR, result=None, algorithm=algorithm,
                latency_s=self._clock() - started,
                epoch=self.epoch, reason=str(error),
                trace_id=ctx.trace_id or "",
            ))
        degraded = decision.action == DEGRADE
        if degraded:
            requested = algorithm
            algorithm = self._degraded_algorithm(
                algorithm, decision.degrade_steps
            )
            _obs.count("service.degraded")
            structlog.emit(
                "service.degrade",
                trace_id=ctx.trace_id,
                tenant=request.session,
                epoch=self.epoch,
                requested=requested,
                algorithm=algorithm,
                steps=decision.degrade_steps,
                reason=decision.reason,
            )
        dimension = request.dimension or self.config.dimension
        key = self.cache.key_for(labels, request.lam, algorithm, dimension)
        cached = self.cache.get(key)
        if cached is not None:
            latency = self._clock() - started
            if _obs.enabled():
                _obs.observe("service.latency", latency)
                _obs.observe("service.latency.cache_hit", latency)
            if traced:
                # link-span: this request served the digest that trace
                # computed — the assembled tree can follow it
                with _obs.span(
                    "service.cache_hit",
                    link_trace_id=cached.trace_id,
                    link_span_id=cached.solve_span_id,
                ):
                    pass
            return self._account(request, ctx, ServiceResponse(
                status=DEGRADED if degraded else OK,
                result=cached, algorithm=algorithm, cached=True,
                latency_s=latency, epoch=key.epoch,
                reason=decision.reason, trace_id=ctx.trace_id or "",
            ))
        view_result = self._read_view(key)
        if view_result is not None:
            latency = self._clock() - started
            if _obs.enabled():
                _obs.count("service.view_hits")
                _obs.observe("service.latency", latency)
                _obs.observe("service.latency.view_hit", latency)
            if traced:
                with _obs.span(
                    "service.view_hit",
                    view_size=len(view_result.solution.posts),
                ):
                    pass
            return self._account(request, ctx, ServiceResponse(
                status=DEGRADED if degraded else OK,
                result=view_result, algorithm=algorithm, view=True,
                latency_s=latency, epoch=key.epoch,
                reason=decision.reason, trace_id=ctx.trace_id or "",
            ))
        documents = self._served_documents(labels)

        async def compute() -> DigestResult:
            self.solves += 1
            _obs.count("service.solves")
            return await self.batcher.run(
                lambda: self._solve_job(
                    labels, request.lam, algorithm, dimension,
                    documents, ctx,
                )
            )

        self._pending += 1
        if _obs.enabled():
            _obs.set_gauge("service.pending", self._pending)
        try:
            result, coalesced = await self.coalescer.submit(key, compute)
        except Exception as error:  # solver failure becomes data, not a crash
            self.errors += 1
            _obs.count("service.errors")
            return self._account(request, ctx, ServiceResponse(
                status=ERROR, result=None, algorithm=algorithm,
                latency_s=self._clock() - started,
                epoch=key.epoch, reason=repr(error),
                trace_id=ctx.trace_id or "",
            ))
        finally:
            self._pending -= 1
            if _obs.enabled():
                _obs.set_gauge("service.pending", self._pending)
        if coalesced and traced and \
                result.trace_id != ctx.trace_id:
            # follower: the solve happened in the leader's trace
            with _obs.span(
                "service.coalesced_wait",
                link_trace_id=result.trace_id,
                link_span_id=result.solve_span_id,
            ):
                pass
        if not coalesced:
            stored = self.cache.put(key, result)
            if (
                self._views is not None
                and not self._views_poisoned
                and key.dimension == self.config.dimension
                and not result.downgrades
            ):
                # a clean solve at the current epoch doubles as a view
                # seed: the cover becomes the maintained baseline (the
                # registry refuses dead-epoch seeds, mirroring put())
                self._views.seed(
                    ViewRegistry.key_for(
                        key.labels, key.lam, key.algorithm,
                        key.dimension,
                    ),
                    result.solution.posts,
                    len(result.solution.posts),
                    epoch=key.epoch,
                )
            if not stored:
                # cache-invalidation race: the epoch moved while this
                # solve was in flight; the digest is served but must
                # not be published — record the drop, correlated
                structlog.emit(
                    "service.cache_stale_drop",
                    level=logging.WARNING,
                    trace_id=ctx.trace_id,
                    tenant=request.session,
                    epoch=self.epoch,
                    key_epoch=key.epoch,
                    algorithm=algorithm,
                )
        latency = self._clock() - started
        if _obs.enabled():
            _obs.observe("service.latency", latency)
            _obs.observe("service.latency.solve", latency)
        return self._account(request, ctx, ServiceResponse(
            status=DEGRADED if degraded or result.downgrades else OK,
            result=result, algorithm=algorithm, coalesced=coalesced,
            latency_s=latency, epoch=key.epoch, reason=decision.reason,
            trace_id=ctx.trace_id or "",
        ))

    # -- streaming path ----------------------------------------------------

    def subscribe(
        self,
        labels: Optional[Iterable[str]] = None,
        session: str = "anonymous",
    ) -> Subscription:
        """Register a session-scoped, label-filtered emission stream."""
        if labels is not None:
            unknown = sorted(set(labels) - set(self.labels))
            if unknown:
                raise ReproError(
                    f"unknown labels {unknown}; this service answers "
                    f"over {list(self.labels)}"
                )
        subscription = Subscription(
            sid=self._next_sid,
            session=session,
            labels=labels,
            depth=self.config.subscription_depth,
        )
        self._next_sid += 1
        self._subscriptions[subscription.sid] = subscription
        _obs.count("service.subscriptions")
        return subscription

    def unsubscribe(self, subscription: Subscription) -> None:
        self._subscriptions.pop(subscription.sid, None)

    def _fan_out(self, emissions: List[Emission]) -> int:
        delivered = 0
        for emission in emissions:
            for subscription in self._subscriptions.values():
                if subscription._offer(emission):
                    delivered += 1
        if delivered and _obs.enabled():
            _obs.count("service.fanned_out", delivered)
        return delivered

    def _feed_document(self, document: Document) -> List[Emission]:
        """The synchronous feed path shared by :meth:`feed` and durable
        ingest replay: supervise, append admitted arrivals to the
        streamed corpus, bump the epoch, fan emissions out."""
        with _obs.span("service.feed"):
            supervisor_before = self._stream_pipeline.supervisor
            accepted_before = (
                supervisor_before is not None
                and supervisor_before.accepted(document.doc_id)
            )
            emissions = self._stream_pipeline.feed(document)
            supervisor = self._stream_pipeline.supervisor
            accepted = (
                supervisor is not None
                and supervisor.accepted(document.doc_id)
            )
            if accepted and not accepted_before:
                self._streamed.append(document)
                affected = self._apply_view_deltas(
                    [document], source="stream"
                )
                epoch = self.cache.bump_epoch(
                    "stream-advance", labels=affected
                )
                if self._views is not None:
                    self._views.commit(epoch)
            if emissions:
                self._fan_out(emissions)
        return emissions

    async def feed(self, document: Document) -> List[Emission]:
        """Push one stream arrival through the supervised pipeline.

        Sanitization faults (corrupt values, unknown labels, duplicates,
        disorder) are absorbed by the supervisor per its policy — this
        call does not raise for hostile input.  Admitted documents join
        the digest corpus and bump the epoch; emissions fan out to every
        matching subscription before being returned.
        """
        return self._feed_document(document)

    async def flush_stream(self) -> List[Emission]:
        """Drain pending stream state (reorder buffer, deadlines) and fan
        the tail emissions out.  The supervisor stays live."""
        supervisor = self._stream_pipeline.supervisor
        if supervisor is None:
            return []
        emissions = supervisor.flush()
        if emissions:
            self._fan_out(emissions)
        return emissions

    @property
    def supervisor(self) -> Optional[StreamSupervisor]:
        """The stream supervisor (None until the first feed)."""
        return self._stream_pipeline.supervisor

    # -- checkpoint / restore ----------------------------------------------

    def checkpoint(self) -> Checkpoint:
        """Snapshot the streaming state (see resilience.checkpoint)."""
        supervisor = self._stream_pipeline.supervisor
        if supervisor is None:
            raise ReproError(
                "nothing to checkpoint: the stream has not started"
            )
        return supervisor.checkpoint()

    def restore(self, checkpoint: Checkpoint) -> int:
        """Adopt a restored supervisor and roll the corpus back to it.

        The cache epoch is bumped **before** any request can observe the
        restored state: digests cached against the pre-restore corpus —
        including ones computed from stream state *newer* than the
        checkpoint — become unreachable, so a rolled-back service can
        never serve results from a future it no longer remembers.
        Returns the new epoch.
        """
        supervisor = StreamSupervisor.restore(
            checkpoint,
            policy=self._resilience.policy,
            arrival_budget=self._resilience.arrival_budget,
            clock=self._resilience.clock,
        )
        self._stream_pipeline = self._build_stream_pipeline()
        self._stream_pipeline.adopt_supervisor(supervisor)
        self._streamed = [
            Document(post.uid, post.value, post.text)
            for post in checkpoint.journal
        ]
        # Kill the warm pool: restore is the rollback path, and workers
        # (or queued jobs) may hold pre-restore state.  The executor
        # stays usable — the next solve lazily builds a fresh pool.
        self.executor.close()
        # Views were maintained against the pre-restore corpus; rebuild
        # the projection from the rolled-back corpus and invalidate them
        # (they re-seed from the first post-restore batch solve).
        if self._views is not None:
            self._rebuild_views("checkpoint-restore")
        _obs.count("service.restores")
        epoch = self.cache.bump_epoch("checkpoint-restore")
        if self._views is not None:
            self._views.commit(epoch)
        return epoch

    def durable_ingest(
        self,
        directory: "Any",
        config: "Optional[Any]" = None,
    ) -> "Any":
        """Wire this service as the apply target of a durable
        :class:`~repro.ingest.pipeline.IngestPipeline` rooted at
        ``directory``.

        Stream arrivals applied through the returned pipeline go through
        the same supervised feed path as :meth:`feed` — admitted
        documents join the corpus and **bump the cache epoch**, so a
        digest computed before a crash can never be served after the
        replay that re-derived the corpus.  Recovery
        (:meth:`~repro.ingest.pipeline.IngestPipeline.recover`) restores
        the service through :meth:`restore`, which also bumps the epoch.
        """
        from ..ingest.pipeline import IngestPipeline, IngestTarget

        def _checkpoint() -> Optional[Checkpoint]:
            supervisor = self._stream_pipeline.supervisor
            return None if supervisor is None \
                else supervisor.checkpoint()

        target = IngestTarget(
            apply=self._feed_document,
            checkpoint=_checkpoint,
            restore=lambda checkpoint: self.restore(checkpoint),
            supervisor=lambda: self._stream_pipeline.supervisor,
        )
        return IngestPipeline(target, directory, config)

    # -- lifecycle / health ------------------------------------------------

    async def finish(self) -> List[Emission]:
        """End the stream: drain everything, fan out the tail."""
        emissions = self._stream_pipeline.finish()
        if emissions:
            self._fan_out(emissions)
        return emissions

    def close(self) -> None:
        """Release pooled resources (the warm solver executor).

        Idempotent, and not terminal: a request served after ``close()``
        simply rebuilds the pool.  Call it when retiring the service so
        worker threads/processes don't linger until interpreter exit.
        """
        self.executor.close()

    # -- observability control plane ---------------------------------------

    def attach_profiler(self, profiler: Any) -> None:
        """Attach a running
        :class:`~repro.observability.profiling.Profiler`; with
        ``profile_slow_s`` set, solves over the threshold record their
        trailing profile window into :attr:`slow_profiles`."""
        self._profiler = profiler

    def _slo_burn_summary(self) -> Dict[str, Any]:
        """Worst-case burn rates across tenants — the compact SLO block
        a scrape ships to the collector's anomaly engine."""
        max_fast = 0.0
        max_slow = 0.0
        worst_p99: Optional[float] = None
        snapshot = self.slo.snapshot()
        for record in snapshot:
            burn = record.get("burn", {})
            max_fast = max(
                max_fast,
                burn.get("fast", {}).get("burn_rate", 0.0),
            )
            max_slow = max(
                max_slow,
                burn.get("slow", {}).get("burn_rate", 0.0),
            )
            p99 = record.get("latency", {}).get("p99")
            if p99 is not None:
                worst_p99 = (
                    p99 if worst_p99 is None else max(worst_p99, p99)
                )
        return {
            "max_fast_burn": max_fast,
            "max_slow_burn": max_slow,
            "worst_p99": worst_p99,
            "series": len(snapshot),
        }

    def scrape(self, cursor: Optional[int] = None) -> Dict[str, Any]:
        """One federation scrape of this service's telemetry.

        Counters and histogram buckets come back as deltas against the
        presented ``cursor`` (or a full ``reset`` snapshot when the
        cursor is unknown — see
        :class:`~repro.observability.collector.ScrapeLedger`); gauges
        are refreshed point-in-time here, and the SLO burn summary plus
        a small ``service`` state block ride along for the anomaly
        rules.  The cluster ``scrape`` op is a thin wrapper over this.
        """
        telemetry = self.telemetry
        telemetry.gauge("service.corpus").set(self.corpus_size())
        telemetry.gauge("service.pending").set(self._pending)
        telemetry.gauge("service.cache_entries").set(len(self.cache))
        telemetry.gauge("service.epoch").set(self.epoch)
        if self._views is not None:
            telemetry.gauge("service.views").set(len(self._views))
        payload = self._telemetry_ledger.scrape(cursor)
        payload["slo"] = self._slo_burn_summary()
        payload["service"] = {
            "epoch": self.epoch,
            "corpus": self.corpus_size(),
            "pending": self._pending,
            "soft_watermark": self.admission.soft_watermark,
            "hard_watermark": self.admission.hard_watermark,
            "views_poisoned": (
                1 if (self._views is not None and self._views_poisoned)
                else 0
            ),
            "view_stale_reads": (
                None if self._views is None
                else self._views.stale_reads
            ),
        }
        return payload

    def health(self) -> Dict[str, Any]:
        """A JSON-safe snapshot of the tier's vitals."""
        supervisor = self._stream_pipeline.supervisor
        return {
            "epoch": self.epoch,
            "corpus": {
                "ingested": len(self._ingested),
                "streamed": len(self._streamed),
            },
            "requests": self.requests,
            "errors": self.errors,
            "solves": self.solves,
            "pending": self._pending,
            "cache": self.cache.stats.as_dict(),
            "cache_entries": len(self.cache),
            "views": None if self._views is None else {
                "poisoned": self._views_poisoned,
                "count": len(self._views),
                "hits": self._views.hits,
                "misses": self._views.misses,
                "stale_reads": self._views.stale_reads,
                "rebuild_reads": self._views.rebuild_reads,
                "seeds": self._views.seeds,
                "hit_rate": self._views.hit_rate(),
            },
            "admission": dict(self.admission.decisions),
            "batches": self.batcher.batches,
            "subscriptions": {
                sub.sid: {
                    "session": sub.session,
                    "delivered": sub.delivered,
                    "dropped": sub.dropped,
                    "filtered": sub.filtered,
                    "queued": len(sub),
                }
                for sub in self._subscriptions.values()
            },
            "supervisor": (
                None if supervisor is None
                else supervisor.health.as_dict()
            ),
            "cluster": (
                None if self.cluster_info is None
                else self.cluster_info()
            ),
        }

    def introspect(self) -> Dict[str, Any]:
        """The debug endpoint: everything an operator asks first.

        Extends :meth:`health` with the observability-era state — queue
        depths, cache occupancy and epoch, admission decisions and token
        balance, per-tenant SLO snapshots, auditor stats, and (when a
        tracer is active) the currently-open spans.  JSON-safe.
        """
        bundle = _obs.active()
        bucket = self.admission.bucket
        supervisor = self._stream_pipeline.supervisor
        return {
            "epoch": self.epoch,
            "corpus": {
                "ingested": len(self._ingested),
                "streamed": len(self._streamed),
            },
            "queues": {
                "pending": self._pending,
                "coalescer_inflight": self.coalescer.inflight(),
                "batcher": {
                    "batches": self.batcher.batches,
                    "jobs": self.batcher.jobs,
                },
                "executor": {
                    "name": self.executor.name,
                    "workers": self.executor.workers,
                    "pool_alive": getattr(
                        self.executor, "alive", False
                    ),
                },
                "subscriptions": {
                    sub.sid: len(sub)
                    for sub in self._subscriptions.values()
                },
            },
            "cache": {
                "entries": len(self.cache),
                "capacity": self.cache.capacity,
                "epoch": self.cache.epoch,
                "hit_rate": self.cache.hit_rate(),
                "stats": self.cache.stats.as_dict(),
            },
            "admission": {
                "decisions": dict(self.admission.decisions),
                "soft_watermark": self.admission.soft_watermark,
                "hard_watermark": self.admission.hard_watermark,
                "tokens": (
                    None if bucket is None else bucket.available()
                ),
            },
            "views": (
                None if self._views is None
                else self._views.snapshot()
            ),
            "slo": self.slo.snapshot(),
            "auditor": self.auditor.snapshot(),
            "supervisor": (
                None if supervisor is None
                else supervisor.health.as_dict()
            ),
            "observability_enabled": bundle is not None,
            "open_spans": (
                [] if bundle is None else bundle.tracer.open_spans()
            ),
            "telemetry": {
                "scrapes": self._telemetry_ledger.scrapes,
                "version": self._telemetry_ledger.version,
                "resets": self._telemetry_ledger.resets,
                "instruments": len(self.telemetry.names()),
            },
            "profiling": {
                "attached": self._profiler is not None,
                "running": (
                    bool(getattr(self._profiler, "running", False))
                ),
                "threshold_s": self.config.profile_slow_s,
                "captured": self.telemetry.counter(
                    "service.slow_profiles"
                ).value,
                "recent": [
                    {
                        key: value
                        for key, value in record.items()
                        if key != "collapsed"
                    }
                    for record in self.slow_profiles
                ],
            },
            "cluster": (
                None if self.cluster_info is None
                else self.cluster_info()
            ),
        }

    def slo_prometheus(self) -> str:
        """Per-tenant SLO series in Prometheus exposition format."""
        return self.slo.to_prometheus()
