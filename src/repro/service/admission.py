"""Admission control: token-bucket rate limiting + queue watermarks.

A serving tier that accepts every request dies of the queue it builds.
This module implements the two standard guards, composed by
:class:`AdmissionController` into a single three-way decision:

* **ADMIT** — tokens available, queue shallow: serve at full quality.
* **DEGRADE** — the pending-queue depth crossed the *soft* watermark:
  serve, but step the request down the configured degradation ladder
  (GreedySC -> Scan+ -> Scan), trading digest size for bounded latency —
  the same quality-for-latency trade the resilience ladders make, applied
  *before* the solver runs instead of after it overruns.
* **SHED** — the token bucket is empty or the queue crossed the *hard*
  watermark: refuse outright.  Refusing early is what keeps the p99 of
  admitted requests bounded.

The token bucket is continuous-refill against an injectable clock:
``rate`` tokens per second accrue up to ``burst``, and each admitted
request spends one.  Both knobs and the watermarks live in
:class:`repro.service.service.ServiceConfig`.

Everything here is lock-guarded: the service calls ``admit`` from the
event loop, but tests (and future multi-loop deployments) hammer it from
threads.
"""

from __future__ import annotations

import threading
import time as _time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..observability import facade as _obs

__all__ = [
    "ADMIT",
    "DEGRADE",
    "SHED",
    "AdmissionDecision",
    "AdmissionController",
    "TokenBucket",
]

ADMIT = "admit"
DEGRADE = "degrade"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionDecision:
    """Outcome of one admission check.

    ``degrade_steps`` tells the service how many ladder rungs to step
    down (0 for a clean admit); ``reason`` is a human-readable account
    that ends up on shed/degraded responses.
    """

    action: str
    degrade_steps: int = 0
    reason: str = ""


class TokenBucket:
    """Continuous-refill token bucket.

    Parameters
    ----------
    rate:
        Tokens added per clock second.  Must be positive.
    burst:
        Bucket capacity — the largest instantaneous request burst that
        can be absorbed.  Defaults to ``rate``.
    clock:
        Injectable monotonic time source.
    """

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        clock: Callable[[], float] = _time.monotonic,
    ):
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else rate)
        if self.burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = now - self._updated
        if elapsed > 0:
            self._tokens = min(
                self.burst, self._tokens + elapsed * self.rate
            )
        self._updated = now

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; never blocks."""
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= tokens:
                self._tokens -= tokens
                return True
            return False

    def available(self) -> float:
        """Current token balance (after refill)."""
        with self._lock:
            self._refill(self._clock())
            return self._tokens


class AdmissionController:
    """Compose the token bucket and queue watermarks into one decision.

    Parameters
    ----------
    bucket:
        Optional :class:`TokenBucket`; ``None`` disables rate limiting.
    soft_watermark:
        Pending-queue depth at which requests start degrading.  Each
        additional ``soft_watermark`` of depth degrades one rung further,
        so pressure maps progressively onto the ladder.
    hard_watermark:
        Pending-queue depth at which requests are shed.  Must be
        >= ``soft_watermark``.
    """

    def __init__(
        self,
        bucket: Optional[TokenBucket] = None,
        soft_watermark: int = 32,
        hard_watermark: int = 128,
    ):
        if soft_watermark < 1:
            raise ValueError(
                f"soft_watermark must be >= 1, got {soft_watermark}"
            )
        if hard_watermark < soft_watermark:
            raise ValueError(
                f"hard_watermark ({hard_watermark}) must be >= "
                f"soft_watermark ({soft_watermark})"
            )
        self.bucket = bucket
        self.soft_watermark = soft_watermark
        self.hard_watermark = hard_watermark
        self._lock = threading.Lock()
        self.decisions: Dict[str, int] = {ADMIT: 0, DEGRADE: 0, SHED: 0}

    def _record(self, decision: AdmissionDecision) -> AdmissionDecision:
        with self._lock:
            self.decisions[decision.action] += 1
        _obs.count(f"service.admission.{decision.action}")
        return decision

    def admit(self, queue_depth: int) -> AdmissionDecision:
        """Decide the fate of one incoming request."""
        if queue_depth >= self.hard_watermark:
            return self._record(AdmissionDecision(
                action=SHED,
                reason=(
                    f"queue depth {queue_depth} at hard watermark "
                    f"{self.hard_watermark}"
                ),
            ))
        if self.bucket is not None and not self.bucket.try_acquire():
            return self._record(AdmissionDecision(
                action=SHED,
                reason="token bucket empty",
            ))
        if queue_depth >= self.soft_watermark:
            steps = queue_depth // self.soft_watermark
            return self._record(AdmissionDecision(
                action=DEGRADE,
                degrade_steps=steps,
                reason=(
                    f"queue depth {queue_depth} over soft watermark "
                    f"{self.soft_watermark}"
                ),
            ))
        return self._record(AdmissionDecision(action=ADMIT))
