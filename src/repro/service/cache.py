"""The versioned digest-result cache.

*Succinct Coverage Oracles* (PAPERS.md) argues that answering diversity
queries at scale hinges on **reusable coverage structures**: the expensive
part of a digest is the solver run, and a solver run is a pure function of
``(corpus, labels, lambda, algorithm, dimension)``.  This cache exploits
exactly that purity.  Every entry is keyed by a :class:`CacheKey` that
embeds the **corpus epoch** — a version counter the service bumps whenever
the corpus changes (batch ingest, stream advance, checkpoint restore) —
so a stale entry is not merely evicted *eventually*: it becomes
unreachable the instant the epoch moves, because no future lookup can
construct its key.  :meth:`ResultCache.bump_epoch` additionally purges the
dead generation eagerly so stale entries stop occupying LRU capacity.

Bounds: LRU capacity (``capacity`` entries) and an optional per-entry TTL
against the injectable clock.  All operations take the cache lock — the
service reads from the event loop while solver threads publish results.

Hit/miss/eviction/invalidation counts are tallied both locally (for the
service health snapshot) and through the observability facade
(``service.cache.*`` counters) when a session is active.
"""

from __future__ import annotations

import threading
import time as _time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterable, NamedTuple, \
    Optional, Tuple

from ..observability import facade as _obs

__all__ = ["CacheKey", "CacheStats", "ResultCache"]


class CacheKey(NamedTuple):
    """Identity of one digest computation.

    ``epoch`` versions the corpus; the remaining fields identify the
    query.  Two requests with equal keys are guaranteed (by solver
    determinism) to produce identical digests, which is what makes both
    caching and request coalescing sound.
    """

    epoch: int
    labels: Tuple[str, ...]
    lam: float
    algorithm: str
    dimension: str


@dataclass
class CacheStats:
    """Monotone counters describing one cache's lifetime."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    expirations: int = 0
    invalidations: int = 0
    stale_drops: int = 0
    carried_forward: int = 0

    def __post_init__(self) -> None:
        # entries invalidated because a write touched this label — a
        # label-targeted bump charges every label it intersected on
        self.invalidations_by_label: Dict[str, int] = {}

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "expirations": self.expirations,
            "invalidations": self.invalidations,
            "stale_drops": self.stale_drops,
            "carried_forward": self.carried_forward,
            "invalidations_by_label": dict(self.invalidations_by_label),
        }


class ResultCache:
    """Epoch-keyed, TTL- and LRU-bounded result cache.

    Parameters
    ----------
    capacity:
        Maximum resident entries; the least recently used entry is
        evicted on overflow.  Must be positive.
    ttl:
        Optional time-to-live in clock seconds; ``None`` disables
        expiry.  Expiry is lazy (checked on lookup) plus purged wholesale
        on :meth:`bump_epoch`.
    clock:
        Injectable monotonic time source, so tests pin TTL behaviour.
    """

    def __init__(
        self,
        capacity: int = 256,
        ttl: Optional[float] = None,
        clock: Callable[[], float] = _time.monotonic,
    ):
        if capacity < 1:
            raise ValueError(f"cache capacity must be >= 1, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"cache ttl must be positive, got {ttl}")
        self.capacity = capacity
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._entries: "OrderedDict[CacheKey, Tuple[float, Any]]" = \
            OrderedDict()
        self._epoch = 0
        self.stats = CacheStats()

    # -- epoch management --------------------------------------------------

    @property
    def epoch(self) -> int:
        """The current corpus version; lookups key against it."""
        return self._epoch

    def key_for(
        self,
        labels: Iterable[str],
        lam: float,
        algorithm: str,
        dimension: str,
    ) -> CacheKey:
        """Build the lookup key for the *current* epoch."""
        return CacheKey(
            epoch=self._epoch,
            labels=tuple(sorted(set(labels))),
            lam=float(lam),
            algorithm=algorithm,
            dimension=dimension,
        )

    def bump_epoch(
        self,
        reason: str = "",
        labels: Optional[Iterable[str]] = None,
    ) -> int:
        """Advance the corpus version and invalidate the dead generation.

        Called by the service on batch ingest, on every stream advance,
        and on checkpoint restore.  Returns the new epoch.

        With ``labels`` (the label sets the write actually touched),
        invalidation is *fine-grained*: entries whose label set is
        disjoint from the affected labels describe digests the write
        cannot have changed — a digest is a pure function of the posts
        matching its labels — so they are carried forward, re-keyed to
        the new epoch, instead of purged.  ``labels=None`` keeps the
        conservative purge-everything behaviour (restore, reprojection).
        """
        affected = None if labels is None else frozenset(labels)
        with self._lock:
            self._epoch += 1
            if affected is None:
                stale = len(self._entries)
                self._entries.clear()
            else:
                stale = 0
                survivors: "OrderedDict[CacheKey, Tuple[float, Any]]" = \
                    OrderedDict()
                for key, entry in self._entries.items():
                    touched = affected.intersection(key.labels)
                    if touched:
                        stale += 1
                        for label in touched:
                            self.stats.invalidations_by_label[label] = \
                                self.stats.invalidations_by_label.get(
                                    label, 0
                                ) + 1
                    else:
                        survivors[key._replace(epoch=self._epoch)] = entry
                self._entries = survivors
                self.stats.carried_forward += len(survivors)
                carried = len(survivors)
            self.stats.invalidations += stale
        if _obs.enabled():
            _obs.count("service.cache.invalidations", stale)
            if affected is not None:
                _obs.count("service.cache.invalidations_by_label", stale)
                _obs.count("service.cache.carried_forward", carried)
            _obs.set_gauge("service.cache.epoch", self._epoch)
        return self._epoch

    # -- lookup / publish --------------------------------------------------

    def get(self, key: CacheKey) -> Optional[Any]:
        """The cached value, or ``None`` on miss/expiry/stale epoch."""
        now = self._clock()
        with self._lock:
            if key.epoch != self._epoch:
                # Unreachable via key_for, but callers may hold old keys
                # across an epoch bump — treat them as plain misses.
                self.stats.misses += 1
                _obs.count("service.cache.misses")
                return None
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                _obs.count("service.cache.misses")
                return None
            stored_at, value = entry
            if self.ttl is not None and now - stored_at > self.ttl:
                del self._entries[key]
                self.stats.expirations += 1
                self.stats.misses += 1
                if _obs.enabled():
                    _obs.count("service.cache.expirations")
                    _obs.count("service.cache.misses")
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            _obs.count("service.cache.hits")
            return value

    def put(self, key: CacheKey, value: Any) -> bool:
        """Publish a result; refuses keys from a dead epoch (a solve
        that straddled an invalidation must not resurrect the old
        corpus).  Returns True when the entry was stored.  A refusal is
        not silent: it lands in ``stats.stale_drops`` and the
        ``service.cache.stale_drops`` counter — the caller holds the
        trace context and is responsible for the correlated event."""
        with self._lock:
            if key.epoch != self._epoch:
                self.stats.stale_drops += 1
                _obs.count("service.cache.stale_drops")
                return False
            self._entries[key] = (self._clock(), value)
            self._entries.move_to_end(key)
            evicted = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evicted += 1
            self.stats.evictions += evicted
        if evicted and _obs.enabled():
            _obs.count("service.cache.evictions", evicted)
        return True

    # -- introspection -----------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        with self._lock:
            return key in self._entries

    def hit_rate(self) -> float:
        """Hits over lookups; 0.0 before any lookup."""
        total = self.stats.hits + self.stats.misses
        return self.stats.hits / total if total else 0.0
