"""Request coalescing and solver micro-batching.

Digest traffic is heavily duplicated: a popular ``(labels, lambda,
algorithm, dimension)`` combination is requested by thousands of sessions
against the same corpus epoch, and solver determinism makes every one of
those runs byte-identical.  Two cooperating pieces exploit that:

* :class:`RequestCoalescer` — single-flight deduplication.  The first
  request for a key becomes the *leader* and actually computes; every
  identical request that arrives while the leader is in flight becomes a
  *follower* and awaits the leader's future.  N concurrent identical
  requests therefore cost exactly one solver run (the
  ``service.coalesced`` counter is the proof the acceptance tests
  assert on).

* :class:`MicroBatcher` — cross-key batching.  *Distinct* keys arriving
  within ``window`` seconds are collected (up to ``max_batch``) and
  dispatched as one task list onto a :mod:`repro.engine` shard executor,
  so a thread executor runs the batch's solves in parallel instead of
  serially waking per request.  The batch window doubles as the
  coalescing window: while the leader sits in a filling batch, identical
  requests keep landing on its future.

Both are asyncio-native: they must be used from a running event loop.
The executor contract is the narrow :class:`~repro.engine.executors
.ShardExecutor` one; the batcher ships live closures, so it supports the
``serial`` and ``thread`` executors (process pools would need picklable
tasks — digests close over matchers and documents, so the service
validates the spec up front).
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Dict, Hashable, List, \
    Optional, Tuple

from ..engine.executors import ShardExecutor
from ..observability import facade as _obs

__all__ = ["RequestCoalescer", "MicroBatcher"]


def _call_guarded(job: Callable[[], Any]) -> Tuple[bool, Any]:
    """Run one batched job, capturing its exception instead of letting it
    poison the whole executor batch."""
    try:
        return True, job()
    except BaseException as error:  # noqa: BLE001 - refanned per future
        return False, error


class RequestCoalescer:
    """Single-flight execution: concurrent identical keys share one run."""

    def __init__(self) -> None:
        self._inflight: Dict[Hashable, "asyncio.Future"] = {}

    def inflight(self) -> int:
        """Number of keys currently being computed."""
        return len(self._inflight)

    async def submit(
        self,
        key: Hashable,
        compute: Callable[[], Awaitable[Any]],
    ) -> Tuple[Any, bool]:
        """Run ``compute`` for ``key``, or piggyback on an in-flight run.

        Returns ``(result, coalesced)`` — ``coalesced`` is True when this
        call was a follower that never computed anything.  A leader's
        exception propagates to the leader *and* every follower; the key
        is released either way, so the next request retries cleanly.
        """
        existing = self._inflight.get(key)
        if existing is not None:
            _obs.count("service.coalesced")
            # shield: a cancelled follower must not cancel the shared run
            return await asyncio.shield(existing), True
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._inflight[key] = future
        try:
            result = await compute()
        except BaseException as error:
            if not future.cancelled():
                future.set_exception(error)
                # mark retrieved: with zero followers nobody awaits it
                future.exception()
            raise
        else:
            if not future.cancelled():
                future.set_result(result)
            return result, False
        finally:
            self._inflight.pop(key, None)


class MicroBatcher:
    """Collect jobs for ``window`` seconds, then run them as one batch on
    a shard executor.

    Parameters
    ----------
    executor:
        A :class:`~repro.engine.executors.ShardExecutor` (``serial`` or
        ``thread``).
    window:
        Seconds to hold the first job while the batch fills.  ``0``
        flushes on the next event-loop tick — still enough to batch
        requests submitted in the same tick, without adding latency.
    max_batch:
        Flush immediately once this many jobs are pending.
    """

    def __init__(
        self,
        executor: ShardExecutor,
        window: float = 0.0,
        max_batch: int = 8,
    ):
        if window < 0:
            raise ValueError(f"window must be >= 0, got {window}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self.executor = executor
        self.window = window
        self.max_batch = max_batch
        self._pending: List[Tuple[Callable[[], Any], "asyncio.Future"]] = []
        self._timer: Optional["asyncio.TimerHandle"] = None
        self.batches = 0
        self.jobs = 0

    async def run(self, job: Callable[[], Any]) -> Any:
        """Schedule ``job`` into the current batch; await its result."""
        loop = asyncio.get_running_loop()
        future: "asyncio.Future" = loop.create_future()
        self._pending.append((job, future))
        self.jobs += 1
        if len(self._pending) >= self.max_batch:
            self._flush(loop)
        elif len(self._pending) == 1:
            if self.window > 0:
                self._timer = loop.call_later(
                    self.window, self._flush, loop
                )
            else:
                loop.call_soon(self._flush, loop)
        return await future

    def _flush(self, loop: "asyncio.AbstractEventLoop") -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.batches += 1
        if _obs.enabled():
            _obs.count("service.batches")
            _obs.observe("service.batch_size", len(batch))
        asyncio.ensure_future(self._execute(loop, batch))

    async def _execute(
        self,
        loop: "asyncio.AbstractEventLoop",
        batch: List[Tuple[Callable[[], Any], "asyncio.Future"]],
    ) -> None:
        jobs = [job for job, _ in batch]
        try:
            outcomes = await loop.run_in_executor(
                None,
                self.executor.run,
                _call_guarded,
                [(job,) for job in jobs],
            )
        except BaseException as error:  # executor itself failed
            for _, future in batch:
                if not future.done():
                    future.set_exception(error)
                    future.exception()
            return
        for (_, future), (ok, value) in zip(batch, outcomes):
            if future.done():
                continue
            if ok:
                future.set_result(value)
            else:
                future.set_exception(value)
                future.exception()
