"""Vectorised set-cover family construction for GreedySC.

Profiling the day-long workloads (Figure 13) shows GreedySC's cost split
between two phases: materialising the within-lambda pair family and the
greedy rounds themselves.  The pure-Python builder pays per-pair tuple
allocation and hashing; this module replaces it with numpy:

* pairs are encoded as flat integers ``post_index * |L| + label_index``
  (int hashing is several times cheaper than tuple hashing, and the
  encoding is reversible);
* for each label, the within-lambda windows come from two
  ``numpy.searchsorted`` calls over the posting values, and the
  (coverer, covered) index pairs from ``repeat``/``arange`` arithmetic —
  no Python-level inner loop;
* the same ulp-widened-then-exact-filter discipline as everywhere else
  guards the float boundaries.

The per-label posting arrays come from the columnar snapshot
(:func:`repro.engine.columnar.snapshot`), built once per instance and
shared with every other accelerated path — the ``np.fromiter`` rebuild
this module used to pay on every call is gone, and the per-label stage
(:func:`_label_window_pairs`) is a flat-array function the parallel
engine fans out across executor workers.

The output is semantically identical to
:func:`repro.core.greedy_sc.build_setcover_family` (property-tested pick
for pick through the greedy), so ``greedy_sc(instance, engine="numpy")``
is a drop-in.  The ``ablation_greedy_heap`` benchmark's sibling,
``benchmarks/test_ablation_engine.py``, times the engines against each
other.
"""

from __future__ import annotations

from typing import List, Set, Tuple

import numpy as np

from ..observability import facade as _obs
from .instance import Instance

__all__ = ["build_family_encoded", "decode_pair"]


def _label_window_pairs(
    values: np.ndarray,
    offsets: np.ndarray,
    lam: float,
    label_index: int,
    n_labels: int,
) -> Tuple[np.ndarray, np.ndarray, int]:
    """One label's (coverer, covered-pair) arrays, fully vectorised.

    ``values``/``offsets`` are the label's posting values and the
    corresponding global post indices (the columnar snapshot's arrays).
    Returns ``(coverer_global, encoded, enumerated)``: for every
    within-lambda ordered pair, the covering post's global index and the
    covered pair's flat encoding; ``enumerated`` counts the ulp-widened
    candidates inspected before the exact filter.

    Module-level and operating on plain arrays so process executors can
    ship it to workers as-is.
    """
    lo = np.searchsorted(values, values - lam, side="left")
    hi = np.searchsorted(values, values + lam, side="right")
    # ulp-widened bisect windows; the exact subtraction filter below
    # is the arbiter (same discipline as the scalar code paths)
    lo = np.maximum(lo - 1, 0)
    hi = np.minimum(hi + 1, len(values))

    counts = hi - lo
    coverer_local = np.repeat(
        np.arange(len(values), dtype=np.int64), counts
    )
    # covered_local: for row j, the indices lo[j] .. hi[j]-1
    starts = np.repeat(lo, counts)
    within_row = (
        np.arange(counts.sum(), dtype=np.int64)
        - np.repeat(np.cumsum(counts) - counts, counts)
    )
    covered_local = starts + within_row

    keep = np.abs(
        values[coverer_local] - values[covered_local]
    ) <= lam
    enumerated = int(counts.sum())
    coverer_local = coverer_local[keep]
    covered_local = covered_local[keep]

    encoded = offsets[covered_local] * n_labels + label_index
    coverer_global = offsets[coverer_local]
    return coverer_global, encoded, enumerated


def _update_family(
    family: List[Set[int]],
    coverer_global: np.ndarray,
    encoded: np.ndarray,
) -> None:
    """Merge one label's pair arrays into the family's Python sets,
    grouped per coverer so each set gets one bulk ``update``."""
    if len(coverer_global) == 0:
        return
    order = np.argsort(coverer_global, kind="stable")
    coverer_sorted = coverer_global[order]
    encoded_sorted = encoded[order]
    boundaries = np.flatnonzero(np.diff(coverer_sorted)) + 1
    groups = np.split(encoded_sorted, boundaries)
    group_owners = coverer_sorted[np.concatenate(([0], boundaries))]
    for owner, group in zip(group_owners, groups):
        family[int(owner)].update(group.tolist())


def build_family_encoded(
    instance: Instance,
) -> Tuple[List[Set[int]], Set[int], List[str]]:
    """The GreedySC family with integer-encoded pair elements.

    Returns ``(family, universe, label_order)``: ``family[k]`` holds the
    encoded pairs post ``k`` covers, and a pair encodes as
    ``post_index * len(label_order) + label_order.index(label)``.
    """
    from ..engine.columnar import snapshot

    snap = snapshot(instance)
    labels = list(snap.labels)
    n_labels = len(labels)
    lam = instance.lam

    family: List[Set[int]] = [set() for _ in instance.posts]
    universe: Set[int] = set()
    enumerated = 0
    kept = 0

    for label_index, label in enumerate(labels):
        values = snap.posting_values[label]
        if len(values) == 0:
            continue
        offsets = snap.posting_indices[label]
        coverer_global, encoded, label_enumerated = _label_window_pairs(
            values, offsets, lam, label_index, n_labels
        )
        enumerated += label_enumerated
        kept += len(coverer_global)
        _update_family(family, coverer_global, encoded)
        universe.update(
            (offsets * n_labels + label_index).tolist()
        )
    if _obs.enabled():
        # enumerated counts the ulp-widened windows before the exact
        # filter — comparable with the scalar builder's enumeration count
        _obs.count("fastpath.family_pairs_enumerated", enumerated)
        _obs.count("fastpath.family_pairs_kept", kept)
        _obs.count("fastpath.universe_size", len(universe))
    return family, universe, labels


def decode_pair(
    encoded: int, instance: Instance, labels: List[str]
) -> Tuple[int, str]:
    """Inverse of the encoding: ``(post uid, label)`` for a pair id."""
    post_index, label_index = divmod(encoded, len(labels))
    return instance.posts[post_index].uid, labels[label_index]
