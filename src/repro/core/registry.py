"""Name-based access to the batch MQDP solvers.

The experiment drivers and the command-line interface refer to algorithms by
the names the paper uses; this registry is the single mapping from those
names to callables.  Every registered solver has the uniform signature
``solver(instance) -> Solution``.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..errors import UnknownAlgorithmError
from .brute_force import brute_force, exact_via_setcover
from .greedy_sc import greedy_sc
from .instance import Instance
from .opt import opt
from .scan import scan, scan_plus
from .solution import Solution

__all__ = ["solve", "available_algorithms", "register", "unregister"]

_REGISTRY: Dict[str, Callable[[Instance], Solution]] = {
    "opt": opt,
    "brute_force": brute_force,
    "exact_setcover": exact_via_setcover,
    "greedy_sc": greedy_sc,
    "scan": scan,
    "scan+": scan_plus,
}


def available_algorithms() -> List[str]:
    """Names of every registered batch solver, sorted."""
    return sorted(_REGISTRY)


def register(name: str, solver: Callable[[Instance], Solution]) -> None:
    """Register a custom solver under ``name`` (overwriting is an error)."""
    if name in _REGISTRY:
        raise ValueError(f"algorithm {name!r} is already registered")
    _REGISTRY[name] = solver


def unregister(name: str) -> None:
    """Remove a custom solver; the built-in algorithms are permanent."""
    if name not in _REGISTRY:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: "
            + ", ".join(available_algorithms())
        )
    if name in ("opt", "brute_force", "exact_setcover",
                "greedy_sc", "scan", "scan+"):
        raise ValueError(f"cannot unregister built-in algorithm {name!r}")
    del _REGISTRY[name]


def solve(name: str, instance: Instance, **kwargs) -> Solution:
    """Run the named batch algorithm on ``instance``."""
    try:
        solver = _REGISTRY[name]
    except KeyError:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: "
            + ", ".join(available_algorithms())
        ) from None
    return solver(instance, **kwargs)
