"""The post data model.

A *post* is the atomic unit of the Multi-Query Diversification Problem: a
microblogging message projected onto (i) a value on an ordered *diversity
dimension* (publication time, sentiment polarity, distance from a location,
...) and (ii) the set of *labels* (user queries / topics / hashtags) the post
is relevant to.  Following Section 2 of the paper we write a post as
``P_i = (F(P_i), label(P_i))``.

The raw text and any auxiliary metadata are deliberately optional: every
algorithm in :mod:`repro.core` consumes only ``value`` and ``labels``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, Mapping, Optional

__all__ = ["Post", "make_posts"]


@dataclass(frozen=True)
class Post:
    """A single microblogging post.

    Parameters
    ----------
    uid:
        A stable identifier, unique within one instance.  Algorithms use it
        to refer to posts unambiguously (two posts may share ``value`` and
        ``labels`` yet still be distinct messages).
    value:
        The post's coordinate on the diversity dimension ``F``.  For the time
        dimension this is the publication timestamp in seconds; for the
        sentiment dimension a polarity in ``[-1, 1]``.
    labels:
        The set of labels (queries) the post matches.  Must be non-empty for
        posts that take part in an MQDP instance — a post matching no query
        is simply not part of the problem.
    text:
        Optional raw text, kept for display and for the text substrates
        (tokenisation, SimHash, sentiment).
    """

    uid: int
    value: float
    labels: FrozenSet[str]
    text: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        # Normalise labels to a frozenset so callers may pass any iterable.
        if not isinstance(self.labels, frozenset):
            object.__setattr__(self, "labels", frozenset(self.labels))

    @property
    def time(self) -> float:
        """Alias of :attr:`value` for the common time-dimension reading."""
        return self.value

    def matches(self, label: str) -> bool:
        """Return True when this post is relevant to ``label``."""
        return label in self.labels

    def distance(self, other: "Post") -> float:
        """Absolute distance to ``other`` on the diversity dimension."""
        return abs(self.value - other.value)

    def covers(self, label: str, other: "Post", lam: float) -> bool:
        """Return True when this post lambda-covers ``label in other``.

        Per Section 2: both posts must be relevant to ``label`` and lie at
        distance at most ``lam`` on the diversity dimension.
        """
        return (
            label in self.labels
            and label in other.labels
            and self.distance(other) <= lam
        )

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-safe representation; labels are sorted for stability."""
        return {
            "uid": self.uid,
            "value": self.value,
            "labels": sorted(self.labels),
            "text": self.text,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Post":
        """Inverse of :meth:`to_dict`; raises ``KeyError``/``TypeError``/
        ``ValueError`` on malformed payloads (callers wrap as needed)."""
        return cls(
            uid=int(payload["uid"]),
            value=float(payload["value"]),
            labels=frozenset(payload["labels"]),
            text=str(payload.get("text", "")),
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        labels = ",".join(sorted(self.labels))
        return f"Post(uid={self.uid}, value={self.value:g}, labels={{{labels}}})"


def make_posts(specs: Iterable[tuple], start_uid: int = 0) -> list:
    """Build a list of posts from compact ``(value, labels)`` tuples.

    A convenience used pervasively by tests and examples::

        posts = make_posts([(1.0, "ab"), (2.0, ["a"]), (3.0, {"b", "c"})])

    Labels given as a plain string are interpreted character-wise, matching
    the single-letter label names used in the paper's figures.

    Parameters
    ----------
    specs:
        Iterable of ``(value, labels)`` or ``(value, labels, text)`` tuples.
    start_uid:
        The uid assigned to the first post; subsequent posts get consecutive
        uids.
    """
    posts = []
    for offset, spec in enumerate(specs):
        text: Optional[str] = ""
        if len(spec) == 3:
            value, labels, text = spec
        else:
            value, labels = spec
        if isinstance(labels, str):
            labels = frozenset(labels)
        posts.append(
            Post(uid=start_uid + offset, value=float(value),
                 labels=frozenset(labels), text=text or "")
        )
    return posts
