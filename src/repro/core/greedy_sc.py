"""Algorithm GreedySC: MQDP via greedy set cover (Section 4.2).

The transform: each element of the set-cover universe is a pair
``<P_i, a>`` with ``a in label(P_i)``; the set ``S_k`` induced by post
``P_k`` contains every pair ``<P_i, a>`` such that ``a in label(P_k)`` and
``|t_k - t_i| <= lambda`` — i.e. everything that *selecting* ``P_k`` would
lambda-cover.  Greedy set cover on this family yields a
``ln(|P| |L|)``-approximate MQDP solution; in practice ``|P| >> |L|`` so the
bound is essentially ``ln |P|``.

The family is materialised with per-label two-pointer windows over the
posting lists (the same ranges Algorithm 2 enumerates), then handed to
:func:`repro.setcover.greedy_set_cover`.  The paper's implementation note —
linear rescan beating a heap on bursty data — is honoured by defaulting to
the rescan strategy; the heap variant is kept for the ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Set, Tuple

from ..observability import facade as _obs
from ..setcover import greedy_set_cover
from .instance import Instance
from .post import Post
from .solution import Solution, timed_solution

__all__ = ["greedy_sc", "build_setcover_family"]


def build_setcover_family(
    instance: Instance,
) -> Tuple[List[Set[Tuple[int, str]]], Set[Tuple[int, str]]]:
    """Materialise the set-cover family induced by an MQDP instance.

    Returns ``(family, universe)`` where ``family[k]`` is the pair set of
    ``instance.posts[k]`` and the universe is every ``(uid, label)`` pair.
    Cost is linear in the total number of within-lambda same-label pairs.
    """
    lam = instance.lam
    posts = instance.posts
    index_of: Dict[int, int] = {p.uid: k for k, p in enumerate(posts)}
    family: List[Set[Tuple[int, str]]] = [set() for _ in posts]
    universe: Set[Tuple[int, str]] = set()
    # candidate pairs enumerated — the builder's unit of work; one int
    # add per window is noise next to the inner set updates
    enumerated = 0

    for label in instance.labels:
        plist = instance.posting(label)
        values = [p.value for p in plist]
        n = len(values)
        hi = 0
        for j in range(n):
            universe.add((plist[j].uid, label))
            # advance hi to the last index within lambda of j
            if hi < j:
                hi = j
            while hi + 1 < n and values[hi + 1] - values[j] <= lam:
                hi += 1
            enumerated += hi - j + 1
            # posts j..hi mutually relevant: each covers the others' pairs
            pair_j = (plist[j].uid, label)
            set_j = family[index_of[plist[j].uid]]
            for i in range(j, hi + 1):
                pair_i = (plist[i].uid, label)
                set_j.add(pair_i)
                family[index_of[plist[i].uid]].add(pair_j)
    if _obs.enabled():
        _obs.count("greedy_sc.family_pairs_enumerated", enumerated)
        _obs.count("greedy_sc.universe_size", len(universe))
    return family, universe


def _greedy_posts(
    instance: Instance, strategy: str, engine: str
) -> List[Post]:
    if engine == "auto":
        from ..engine.auto import choose_engine

        engine = choose_engine(instance)
    if engine == "numpy":
        from .fastpath import build_family_encoded

        family, universe, _ = build_family_encoded(instance)
    elif engine == "python":
        family, universe = build_setcover_family(instance)
    else:
        raise ValueError(f"unknown engine {engine!r}")
    chosen = greedy_set_cover(family, universe=universe, strategy=strategy)
    return [instance.posts[k] for k in chosen]


def greedy_sc(
    instance: Instance,
    strategy: str = "rescan",
    engine: str = "auto",
) -> Solution:
    """Algorithm GreedySC.

    Parameters
    ----------
    instance:
        The MQDP instance.
    strategy:
        Candidate maintenance for the underlying greedy set cover:
        ``"rescan"`` (paper's choice) or ``"lazy_heap"``.
    engine:
        Family construction: ``"python"`` (the paper's Algorithm 2 shape)
        or ``"numpy"`` (vectorised, integer-encoded pairs — identical
        picks, see :mod:`repro.core.fastpath`).  The default ``"auto"``
        probes the instance's within-lambda pair density and picks the
        cheaper builder per instance (:mod:`repro.engine.auto`) — the
        builders are pick-identical, so only speed is at stake.
    """
    return timed_solution(
        "greedy_sc", _greedy_posts, instance, strategy, engine
    )
