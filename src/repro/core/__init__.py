"""The paper's primary contribution: MQDP models and solvers.

Layout:

* :mod:`~repro.core.post`, :mod:`~repro.core.instance` — the data model
  (posts on a diversity dimension, label universe, posting lists);
* :mod:`~repro.core.coverage` — lambda-cover semantics and verification;
* :mod:`~repro.core.opt` — exact end-pattern dynamic programming;
* :mod:`~repro.core.greedy_sc`, :mod:`~repro.core.scan` — the two
  approximation families (set-cover greedy; per-label scan);
* :mod:`~repro.core.streaming` — the StreamMQDP algorithms;
* :mod:`~repro.core.proportional` — variable-lambda proportional diversity;
* :mod:`~repro.core.brute_force` — exact baselines for cross-checking;
* :mod:`~repro.core.registry` — name-based solver dispatch.
"""

from .budgeted import coverage_curve, max_coverage
from .brute_force import brute_force, exact_via_setcover, optimal_size
from .coverage import (
    CoverageModel,
    FixedLambda,
    VariableLambda,
    is_cover,
    uncovered_pairs,
    verify_cover,
)
from .greedy_sc import greedy_sc
from .instance import Instance, PostingList
from .opt import opt, opt_size
from .post import Post, make_posts
from .proportional import (
    ProportionalLambda,
    exact_variable,
    greedy_sc_variable,
    scan_variable,
)
from .registry import available_algorithms, register, solve, unregister
from .scan import scan, scan_plus
from .solution import Solution
from .stream_proportional import (
    OnlineDensityEstimator,
    StreamScanProportional,
)
from .streaming import (
    InstantCover,
    StreamGreedySC,
    StreamGreedySCPlus,
    StreamScan,
    StreamScanPlus,
    stream_solve,
)

__all__ = [
    "Post",
    "make_posts",
    "Instance",
    "PostingList",
    "Solution",
    "CoverageModel",
    "FixedLambda",
    "VariableLambda",
    "is_cover",
    "uncovered_pairs",
    "verify_cover",
    "opt",
    "opt_size",
    "brute_force",
    "exact_via_setcover",
    "optimal_size",
    "greedy_sc",
    "scan",
    "scan_plus",
    "StreamScan",
    "StreamScanPlus",
    "StreamScanProportional",
    "OnlineDensityEstimator",
    "InstantCover",
    "StreamGreedySC",
    "StreamGreedySCPlus",
    "stream_solve",
    "ProportionalLambda",
    "scan_variable",
    "greedy_sc_variable",
    "exact_variable",
    "max_coverage",
    "coverage_curve",
    "solve",
    "register",
    "unregister",
    "available_algorithms",
]
