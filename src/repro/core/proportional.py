"""Proportional diversity through a variable lambda (Section 6).

A uniform lambda returns roughly evenly spaced representatives.  To make the
output *proportional* — more posts where the data is dense (popular topics,
busy hours, dominant sentiment) — the paper assigns every (post, label) pair
its own coverage radius via the smooth formula of Equation (2)::

    lambda_a(P_i) = lambda0 * exp(1 - density_a(t_i - lambda0, t_i + lambda0)
                                      / density_0)

where ``density_a`` is the local rate of label-``a`` posts around ``P_i`` and
``density_0`` the global average rate of relevant posts.  Dense regions get
small radii (so more representatives survive), sparse regions get radii up to
``e * lambda0`` (so rare perspectives still appear) — the non-linearity is
deliberate, see the paper's discussion of rare-but-important viewpoints.

With unequal radii coverage becomes *directional* (``P_i`` may cover
``a in P_j`` without the converse); this module adapts each solver:

* :func:`scan_variable` — per label, the classical optimal greedy for
  covering points with heterogeneous intervals: repeatedly pick, among the
  candidates covering the leftmost uncovered post, the one reaching furthest
  right.  Retains the ``s`` bound.
* :func:`greedy_sc_variable` — greedy set cover over the directional family.
* :func:`exact_variable` — exact branch-and-bound over the same family, the
  ground truth for the proportionality ablation.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..setcover import exact_set_cover, greedy_set_cover
from .coverage import CoverageModel, VariableLambda, covered_pairs_by
from .instance import Instance
from .post import Post
from .solution import Solution, timed_solution

__all__ = [
    "ProportionalLambda",
    "scan_variable",
    "greedy_sc_variable",
    "exact_variable",
]


class ProportionalLambda(VariableLambda):
    """Equation (2): density-modulated per-(post, label) radii.

    Parameters
    ----------
    instance:
        The post collection; densities are measured on its posting lists.
    lam0:
        The expert-set base threshold ``lambda0``.
    density0:
        The reference density (posts per dimension unit).  Defaults to the
        overall rate of relevant posts, ``|P| / span`` — the natural reading
        of the paper's "average number of posts per minute relevant to any
        label".
    """

    def __init__(
        self,
        instance: Instance,
        lam0: float,
        density0: Optional[float] = None,
    ):
        if lam0 <= 0:
            raise ValueError(f"lambda0 must be positive, got {lam0}")
        self.instance = instance
        self.lam0 = float(lam0)
        if density0 is None:
            span = instance.span()
            density0 = len(instance) / span if span > 0 else float(
                len(instance)
            )
        if density0 <= 0:
            raise ValueError(f"density0 must be positive, got {density0}")
        self.density0 = float(density0)
        self._radii: Dict[Tuple[int, str], float] = {}
        for post in instance.posts:
            for label in post.labels:
                self._radii[(post.uid, label)] = self._compute(post, label)
        super().__init__(
            radius_fn=lambda post, label: self._radii[(post.uid, label)],
            upper_bound=self.lam0 * math.e,
        )

    def _compute(self, post: Post, label: str) -> float:
        plist = self.instance.posting(label)
        count = plist.count_in(post.value - self.lam0, post.value + self.lam0)
        local_density = count / (2.0 * self.lam0)
        return self.lam0 * math.exp(1.0 - local_density / self.density0)

    def radius_of(self, uid: int, label: str) -> float:
        """The precomputed radius for a (post uid, label) pair."""
        return self._radii[(uid, label)]


def _variable_family(instance: Instance, model: CoverageModel):
    family = [
        covered_pairs_by(instance, post, model) for post in instance.posts
    ]
    universe = {
        (post.uid, label)
        for post in instance.posts
        for label in post.labels
    }
    return family, universe


def _scan_variable_posts(
    instance: Instance, model: CoverageModel
) -> List[Post]:
    picks: List[Post] = []
    upper = model.max_radius()
    for label in sorted(instance.labels):
        plist = instance.posting(label)
        n = len(plist)
        i = 0
        while i < n:
            target = plist[i]
            # Candidates able to cover the leftmost uncovered post: any
            # label-carrying post whose own radius spans the gap.
            candidates = plist.range(
                target.value - upper, target.value + upper
            )
            best: Optional[Post] = None
            best_reach = float("-inf")
            for candidate in candidates:
                radius = model.radius(candidate, label)
                if abs(candidate.value - target.value) > radius:
                    continue
                reach = candidate.value + radius
                if reach > best_reach:
                    best_reach = reach
                    best = candidate
            if best is None:
                # A post always covers itself (radius > 0), so this would be
                # a model bug; selecting the target keeps the cover valid.
                best = target
            picks.append(best)
            # Coverage by the pick is contiguous from the target onward, so
            # a single forward skip reaches the next uncovered post.
            while i < n and model.covers(best, label, plist[i]):
                i += 1
    return picks


def scan_variable(instance: Instance, model: CoverageModel) -> Solution:
    """Scan under directional (variable-lambda) coverage; bound ``s``."""
    return timed_solution(
        "scan_variable", _scan_variable_posts, instance, model
    )


def _greedy_variable_posts(
    instance: Instance, model: CoverageModel
) -> List[Post]:
    family, universe = _variable_family(instance, model)
    chosen = greedy_set_cover(family, universe=universe)
    return [instance.posts[k] for k in chosen]


def greedy_sc_variable(instance: Instance, model: CoverageModel) -> Solution:
    """GreedySC under directional (variable-lambda) coverage."""
    return timed_solution(
        "greedy_sc_variable", _greedy_variable_posts, instance, model
    )


def _exact_variable_posts(
    instance: Instance, model: CoverageModel, node_budget: int
) -> List[Post]:
    family, universe = _variable_family(instance, model)
    chosen = exact_set_cover(family, universe=universe,
                             node_budget=node_budget)
    return [instance.posts[k] for k in chosen]


def exact_variable(
    instance: Instance, model: CoverageModel, node_budget: int = 2_000_000
) -> Solution:
    """Minimum directional cover via exact set cover (small instances)."""
    return timed_solution(
        "exact_variable", _exact_variable_posts, instance, model, node_budget
    )
