"""Coverage semantics and solution verification.

This module is the single source of truth for the paper's lambda-cover
definitions (Definitions 1 and 2):

* post ``P_i`` *lambda-covers* ``a in P_j`` when both posts carry label ``a``
  and their distance on the diversity dimension is at most lambda;
* a set ``Z`` lambda-covers post ``P_j`` when every label of ``P_j`` is
  lambda-covered by some member of ``Z``;
* ``Z`` is a lambda-cover of the instance when it lambda-covers every post.

Section 6 generalises the threshold to a post/label-specific radius, which
makes coverage *directional*; both semantics are expressed through the
:class:`CoverageModel` strategy so that every solver and the verifier share
one implementation.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from ..errors import InvalidCoverError
from .instance import Instance
from .post import Post

__all__ = [
    "CoverageModel",
    "FixedLambda",
    "VariableLambda",
    "is_cover",
    "uncovered_pairs",
    "verify_cover",
    "covered_pairs_by",
]


class CoverageModel:
    """Strategy describing when one post covers a label of another."""

    def radius(self, coverer: Post, label: str) -> float:
        """The coverage radius the ``coverer`` projects for ``label``."""
        raise NotImplementedError

    def max_radius(self) -> float:
        """An upper bound on any radius, used to window candidate searches."""
        raise NotImplementedError

    def covers(self, coverer: Post, label: str, covered: Post) -> bool:
        """True when ``coverer`` lambda-covers ``label in covered``."""
        return (
            label in coverer.labels
            and label in covered.labels
            and abs(coverer.value - covered.value) <= self.radius(coverer, label)
        )


class FixedLambda(CoverageModel):
    """The uniform threshold of Sections 2-5: one lambda for everything."""

    def __init__(self, lam: float):
        self.lam = float(lam)

    def radius(self, coverer: Post, label: str) -> float:
        return self.lam

    def max_radius(self) -> float:
        return self.lam

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FixedLambda({self.lam:g})"


class VariableLambda(CoverageModel):
    """Post/label-specific radii (Section 6, proportional diversity).

    The radius belongs to the *covering* post: ``P_i`` covers ``a in P_j``
    iff ``|t_i - t_j| <= lambda_a(P_i)``.  With unequal radii the relation is
    directional — exactly the subtlety the paper points out.

    Parameters
    ----------
    radius_fn:
        Maps ``(post, label)`` to that post's coverage radius for the label.
    upper_bound:
        A value no radius exceeds; lets algorithms window their searches.
    """

    def __init__(self, radius_fn: Callable[[Post, str], float],
                 upper_bound: float):
        self._radius_fn = radius_fn
        self._upper = float(upper_bound)

    def radius(self, coverer: Post, label: str) -> float:
        return self._radius_fn(coverer, label)

    def max_radius(self) -> float:
        return self._upper


def _model_for(instance: Instance,
               model: Optional[CoverageModel]) -> CoverageModel:
    return model if model is not None else FixedLambda(instance.lam)


def covered_pairs_by(
    instance: Instance, post: Post, model: Optional[CoverageModel] = None
) -> Set[Tuple[int, str]]:
    """All ``(uid, label)`` pairs that selecting ``post`` would cover."""
    model = _model_for(instance, model)
    pairs: Set[Tuple[int, str]] = set()
    for label in post.labels:
        radius = model.radius(post, label)
        plist = instance.posting(label)
        lo, hi = plist.range_indices(
            post.value - radius, post.value + radius
        )
        # Widen by one step per side, then re-check with the verifier's
        # exact arithmetic: the bisect bounds can both overreach (admit a
        # boundary float the subtraction rejects) and undershoot (skip a
        # candidate the subtraction accepts).
        lo = max(0, lo - 1)
        hi = min(len(plist), hi + 1)
        for idx in range(lo, hi):
            other = plist[idx]
            if abs(other.value - post.value) <= radius:
                pairs.add((other.uid, label))
    return pairs


def uncovered_pairs(
    instance: Instance,
    selected: Iterable[Post],
    model: Optional[CoverageModel] = None,
) -> List[Tuple[int, str]]:
    """The ``(uid, label)`` pairs left uncovered by ``selected``.

    Runs in ``O(sum_a (|LP(a)| + |Z_a|) log)`` time using per-label sorted
    sweeps, so it is cheap enough to call inside property-based tests.
    """
    model = _model_for(instance, model)
    selected = list(selected)
    by_label: Dict[str, List[Tuple[float, Post]]] = {}
    for post in selected:
        for label in post.labels:
            by_label.setdefault(label, []).append((post.value, post))
    for entries in by_label.values():
        entries.sort(key=lambda pair: pair[0])

    missing: List[Tuple[int, str]] = []
    max_radius = model.max_radius()
    for label in sorted(instance.labels):
        plist = instance.posting(label)
        entries = by_label.get(label, [])
        values = [value for value, _ in entries]
        for post in plist:
            left = bisect.bisect_left(values, post.value - max_radius)
            right = bisect.bisect_right(values, post.value + max_radius)
            # Widen by one step per side: `post.value - max_radius` can
            # round up past a candidate whose exact distance is within the
            # radius (float non-associativity); the abs() check below is
            # the arbiter, the bisect is only a pre-filter.
            if left > 0:
                left -= 1
            if right < len(values):
                right += 1
            hit = False
            for _, candidate in entries[left:right]:
                if abs(candidate.value - post.value) <= model.radius(
                    candidate, label
                ):
                    hit = True
                    break
            if not hit:
                missing.append((post.uid, label))
    return missing


def is_cover(
    instance: Instance,
    selected: Iterable[Post],
    model: Optional[CoverageModel] = None,
) -> bool:
    """True when ``selected`` is a lambda-cover of the instance."""
    return not uncovered_pairs(instance, selected, model)


def verify_cover(
    instance: Instance,
    selected: Iterable[Post],
    model: Optional[CoverageModel] = None,
) -> None:
    """Raise :class:`InvalidCoverError` when ``selected`` is not a cover.

    The exception message enumerates (a sample of) the uncovered pairs,
    which makes algorithm regressions immediately diagnosable in tests.
    """
    missing = uncovered_pairs(instance, selected, model)
    if missing:
        sample = ", ".join(f"(post {u}, label {a!r})" for u, a in missing[:8])
        more = "" if len(missing) <= 8 else f" and {len(missing) - 8} more"
        raise InvalidCoverError(
            f"{len(missing)} uncovered (post, label) pairs: {sample}{more}"
        )
