"""Algorithm Scan and its Scan+ optimisation (Section 4.3).

Scan processes each label's posting list ``LP(a)`` independently with the
classical optimal greedy for 1-D interval covering: take the leftmost
uncovered post, pick the furthest post within ``lambda`` of it (that pick
covers everything in between and ``lambda`` to its right), repeat.  The union
over labels is an ``s``-approximation, where ``s`` is the maximum number of
labels per post, and the whole pass costs ``O(s |P|)``.

Scan+ (the paper's optimisation) exploits that a post picked for one label
also covers posts of its *other* labels: after each pick, the covered
``(post, label)`` pairs are struck from the still-unprocessed lists, so later
labels only pay for what remains.  The label processing order therefore
matters; it is exposed as a parameter and examined by the
``ablation_scan_order`` benchmark.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..observability import facade as _obs
from .instance import Instance, PostingList
from .post import Post
from .solution import Solution, timed_solution

__all__ = ["scan", "scan_plus", "scan_label", "order_labels"]


def scan_label(
    plist: PostingList,
    lam: float,
    is_covered: Optional[Callable[[int], bool]] = None,
    on_pick: Optional[Callable[[Post], None]] = None,
) -> List[Post]:
    """Optimally cover a single posting list (the inner loop of Scan).

    Parameters
    ----------
    plist:
        The label's time-sorted posting list.
    lam:
        Coverage threshold.
    is_covered:
        Optional predicate on the *index into plist*; posts reported covered
        are skipped as coverage targets (they can still be picked, since a
        pick is chosen for its reach, not its own coverage state).  Scan+
        supplies this to strike pairs covered by earlier labels' picks.
    on_pick:
        Callback invoked with each picked post, used by Scan+ to propagate
        cross-label coverage.

    Returns
    -------
    list of Post
        The picks for this label, in time order.  Without ``is_covered``
        this is an *optimal* cover of the list (proved in Section 4.3).
    """
    picks: List[Post] = []
    posts = plist.posts
    n = len(posts)
    i = 0
    while i < n:
        if is_covered is not None and is_covered(i):
            i += 1
            continue
        left = posts[i]
        # Furthest post within lambda of the leftmost uncovered post: it
        # covers `left`, everything in between, and lambda to its right.
        j = i
        while j + 1 < n and posts[j + 1].value - left.value <= lam:
            j += 1
        picked = posts[j]
        picks.append(picked)
        if on_pick is not None:
            on_pick(picked)
        # Skip everything the pick covers.
        i = j + 1
        while i < n and posts[i].value - picked.value <= lam:
            i += 1
    return picks


def _scan_label_counted(
    plist: PostingList,
    lam: float,
    is_covered: Optional[Callable[[int], bool]] = None,
    on_pick: Optional[Callable[[Post], None]] = None,
) -> Tuple[List[Post], int]:
    """:func:`scan_label` plus an exact posting-list advance count.

    This is the observability twin of :func:`scan_label`: same loop, same
    picks (``tests/observability`` asserts parity), but every index
    advance — the unit of Scan work — is tallied.  It exists as a
    separate function so the uninstrumented path stays byte-identical
    when observability is disabled; keep the two loops in lockstep.
    """
    picks: List[Post] = []
    advances = 0
    posts = plist.posts
    n = len(posts)
    i = 0
    while i < n:
        if is_covered is not None and is_covered(i):
            i += 1
            advances += 1
            continue
        left = posts[i]
        j = i
        while j + 1 < n and posts[j + 1].value - left.value <= lam:
            j += 1
            advances += 1
        picked = posts[j]
        picks.append(picked)
        if on_pick is not None:
            on_pick(picked)
        i = j + 1
        advances += 1
        while i < n and posts[i].value - picked.value <= lam:
            i += 1
            advances += 1
    return picks, advances


def order_labels(instance: Instance, order: str = "sorted") -> List[str]:
    """Resolve a label processing order for Scan/Scan+.

    ``"sorted"`` (default, deterministic), ``"longest_first"`` and
    ``"shortest_first"`` order by posting-list length — the ablation knob for
    Scan+'s sensitivity to label order.
    """
    labels = sorted(instance.labels)
    if order == "sorted":
        return labels
    if order == "longest_first":
        return sorted(labels, key=lambda a: (-len(instance.posting(a)), a))
    if order == "shortest_first":
        return sorted(labels, key=lambda a: (len(instance.posting(a)), a))
    raise ValueError(f"unknown label order {order!r}")


def _scan_posts(instance: Instance, label_order: Sequence[str]) -> List[Post]:
    if _obs.enabled():
        return _scan_posts_observed(instance, label_order)
    picks: List[Post] = []
    for label in label_order:
        picks.extend(scan_label(instance.posting(label), instance.lam))
    return picks


def _scan_posts_observed(
    instance: Instance, label_order: Sequence[str]
) -> List[Post]:
    picks: List[Post] = []
    advances = 0
    for label in label_order:
        label_picks, label_advances = _scan_label_counted(
            instance.posting(label), instance.lam
        )
        picks.extend(label_picks)
        advances += label_advances
    _obs.count("scan.window_advances", advances)
    _obs.count("scan.labels_processed", len(label_order))
    _obs.count("scan.picks", len(picks))
    return picks


def _scan_plus_posts(
    instance: Instance, label_order: Sequence[str]
) -> List[Post]:
    lam = instance.lam
    observed = _obs.enabled()
    # covered[a] is a bitmap over LP(a) indices marking pairs already
    # lambda-covered by picks made for earlier labels.
    covered: Dict[str, List[bool]] = {
        a: [False] * len(instance.posting(a)) for a in instance.labels
    }
    # Striking is only useful for labels still to be processed: flags of
    # the current label are never consulted again past the pick's own
    # lambda window (the value-based advance skips it anyway), and flags
    # of earlier labels are never read again at all.  Restricting strikes
    # to strictly-later labels is therefore pick-preserving (asserted by
    # the full-strike reference parity test) and skips the dead work.
    label_rank = {a: rank for rank, a in enumerate(label_order)}
    # single-cell accumulator: positions examined while striking pairs
    # (per pick per label — far off the inner loop, so always counted)
    strike_window = [0]

    def mark(picked: Post, current_rank: int) -> None:
        for other_label in picked.labels:
            rank = label_rank.get(other_label)
            if rank is None or rank <= current_rank:
                continue
            plist = instance.posting(other_label)
            lo, hi = plist.range_indices(
                picked.value - lam, picked.value + lam
            )
            lo = max(0, lo - 1)
            hi = min(len(plist), hi + 1)
            strike_window[0] += hi - lo
            flags = covered[other_label]
            for idx in range(lo, hi):
                # exact re-check: bisect bounds may overreach by one ulp
                if abs(plist[idx].value - picked.value) <= lam:
                    flags[idx] = True

    picks: List[Post] = []
    advances = 0
    for rank, label in enumerate(label_order):
        flags = covered[label]
        is_covered = lambda idx, flags=flags: flags[idx]  # noqa: E731
        on_pick = lambda post, rank=rank: mark(post, rank)  # noqa: E731
        if observed:
            label_picks, label_advances = _scan_label_counted(
                instance.posting(label), lam,
                is_covered=is_covered, on_pick=on_pick,
            )
            picks.extend(label_picks)
            advances += label_advances
        else:
            picks.extend(
                scan_label(
                    instance.posting(label),
                    lam,
                    is_covered=is_covered,
                    on_pick=on_pick,
                )
            )
    if observed:
        _obs.count("scan_plus.window_advances", advances)
        _obs.count("scan_plus.strike_positions", strike_window[0])
        _obs.count("scan_plus.labels_processed", len(label_order))
        _obs.count("scan_plus.picks", len(picks))
    return picks


def scan(instance: Instance, label_order: str = "sorted") -> Solution:
    """Algorithm Scan: independent optimal per-label covering.

    Approximation bound ``s`` (max labels per post); time ``O(s |P|)``.
    """
    labels = order_labels(instance, label_order)
    return timed_solution("scan", _scan_posts, instance, labels)


def scan_plus(instance: Instance, label_order: str = "sorted") -> Solution:
    """Algorithm Scan+: Scan with cross-label coverage propagation."""
    labels = order_labels(instance, label_order)
    return timed_solution("scan+", _scan_plus_posts, instance, labels)
