"""Algorithm OPT: the exact end-pattern dynamic program (Section 4.1).

The DP sweeps the posts in time order.  After processing post ``P_j`` it
keeps, for every feasible *j-end-pattern* ``xi`` (the map sending each label
``a`` to the index of the latest selected post carrying ``a``), the minimum
cardinality ``h_{j,xi}`` of a ``(lambda, j)``-cover realising that pattern.
Patterns may reference posts up to ``f(j)`` — the last post within ``lambda``
after ``t_j`` — because such "future" posts can cover ``P_j``.

Transitions follow Equation (1) of the paper: a ``j``-pattern ``xi`` extends
a ``(j-1)``-pattern ``eta`` when they agree on every index that is already
"old" (``<= f(j-1)``); the cost grows by the number of distinct newly
introduced posts.  A virtual post ``P_0`` carrying every label seeds the
recursion and is subtracted from the final count.

Two structural observations keep the implementation lean (both are proved in
the module tests by exhaustive comparison against brute force):

* the paper's validity condition (ii) — no uncovered same-label post may
  hide between the last selected post and ``t_j`` — holds *by construction*
  under our candidate generation, because a label of ``P_j`` may only map to
  posts within ``lambda`` of ``t_j``, inherited values were valid at
  ``j - 1``, and ``P_j`` is the only post added since;
* condition (i) — the pattern must truly name the latest selected post per
  label — only needs checking against newly introduced posts.

Complexity is ``O(|P|^{2|L|+1})`` as in the paper; a configurable work
budget aborts instances that would blow up instead of hanging the caller.
"""

from __future__ import annotations

import bisect
from itertools import product
from typing import Dict, List, Optional, Tuple

from ..errors import AlgorithmBudgetExceeded
from .instance import Instance
from .post import Post
from .solution import Solution, timed_solution

__all__ = ["opt", "opt_size"]

Pattern = Tuple[int, ...]


class _EndPatternDP:
    """One run of the end-pattern DP over a fixed instance."""

    def __init__(self, instance: Instance, budget: int):
        self.instance = instance
        self.budget = budget
        self.work = 0
        self.labels: List[str] = sorted(instance.labels)
        self.nlabels = len(self.labels)
        # 1-based post array; index 0 is the virtual all-label post.
        self.posts: List[Optional[Post]] = [None]
        self.posts.extend(instance.posts)
        self.values: List[float] = [float("-inf")]
        self.values.extend(p.value for p in instance.posts)
        self.n = len(instance.posts)
        # Per label: sorted global indices (and their values) of posts
        # carrying it, for windowed candidate generation.
        self.label_indices: Dict[str, List[int]] = {a: [] for a in self.labels}
        for idx in range(1, self.n + 1):
            for label in self.posts[idx].labels:
                self.label_indices[label].append(idx)
        self.label_values: Dict[str, List[float]] = {
            a: [self.values[i] for i in idxs]
            for a, idxs in self.label_indices.items()
        }
        # label sets as index tuples for the condition-(i) check
        self.label_pos = {a: k for k, a in enumerate(self.labels)}

    def _charge(self, amount: int) -> None:
        self.work += amount
        if self.work > self.budget:
            raise AlgorithmBudgetExceeded(
                f"OPT exceeded its work budget of {self.budget}; "
                "use a smaller lambda/|L| or an approximation algorithm"
            )

    def _f(self, j: int) -> int:
        """``f(j)``: largest index ``j'`` with ``t_j' - t_j <= lambda``.

        Computed with the same subtraction predicate the candidate windows
        and the cover verifier use — mixing it with the addition form
        ``t_j' <= t_j + lambda`` lets boundary floats classify a post as
        "old" that no window ever offered, dead-ending the DP.
        """
        if j == 0:
            return 0
        lam = self.instance.lam
        tj = self.values[j]
        limit = tj + lam
        # bisect lands within one ulp of the right boundary; correct it
        # against the exact subtraction test.
        idx = bisect.bisect_right(self.values, limit, lo=1,
                                  hi=self.n + 1) - 1
        while idx + 1 <= self.n and self.values[idx + 1] - tj <= lam:
            idx += 1
        while idx > j and self.values[idx] - tj > lam:
            idx -= 1
        return max(idx, j)

    def _window(self, label: str, j: int) -> List[int]:
        """Indices of label-carrying posts within ``lambda`` of ``t_j``.

        Filtered with the verifier's exact subtraction test so a boundary
        float admitted by the bisect bounds cannot yield an invalid cover.
        """
        lam = self.instance.lam
        tj = self.values[j]
        values = self.label_values[label]
        lo = bisect.bisect_left(values, tj - lam)
        hi = bisect.bisect_right(values, tj + lam)
        lo = max(0, lo - 1)
        hi = min(len(values), hi + 1)
        return [
            idx
            for idx in self.label_indices[label][lo:hi]
            if abs(self.values[idx] - tj) <= lam
        ]

    def solve(self, reconstruct: bool = True):
        """Run the DP.

        With ``reconstruct`` (default) parent pointers are kept at every
        position for backtracking the post set — the paper's
        ``O(|P|^{|L|+1})`` space.  Without it only two frontiers live at
        a time (``O(|P|^{|L|})`` space, as the paper notes suffices for
        the cardinality alone) and the return value is the optimal size.
        """
        if self.n == 0:
            return [] if reconstruct else 0
        zero: Pattern = tuple([0] * self.nlabels)
        frontier: Dict[Pattern, int] = {zero: 1}
        # parents[j][pattern] = (previous pattern, newly introduced indices)
        parents: List[Dict[Pattern, Tuple[Pattern, Tuple[int, ...]]]] = [
            {} for _ in range(self.n + 1)
        ]

        for j in range(1, self.n + 1):
            prev_f = self._f(j - 1)
            post_j = self.posts[j]
            # Candidate choices that are *new* (> f(j-1)) per label; the
            # inherited choice is handled per predecessor pattern.
            new_choices: List[List[int]] = []
            mandatory: List[bool] = []
            for label in self.labels:
                window = [c for c in self._window(label, j) if c > prev_f]
                new_choices.append(window)
                mandatory.append(label in post_j.labels)

            next_frontier: Dict[Pattern, int] = {}
            next_parents = parents[j]
            lam = self.instance.lam
            tj = self.values[j]

            for eta, cost in frontier.items():
                options: List[List[int]] = []
                feasible = True
                for k in range(self.nlabels):
                    opts = list(new_choices[k])
                    inherited = eta[k]
                    if mandatory[k]:
                        # keeping the old post is allowed only if it still
                        # lambda-covers this label of P_j
                        if inherited != 0 and abs(
                            self.values[inherited] - tj
                        ) <= lam:
                            opts.append(inherited)
                    else:
                        opts.append(inherited)
                    if not opts:
                        feasible = False
                        break
                    options.append(opts)
                if not feasible:
                    continue

                combos = 1
                for opts in options:
                    combos *= len(opts)
                self._charge(combos)

                for combo in product(*options):
                    pattern: Pattern = tuple(combo)
                    new_indices = frozenset(
                        v for v in pattern if v > prev_f
                    )
                    if not self._latest_consistent(pattern, new_indices):
                        continue
                    new_cost = cost + len(new_indices)
                    known = next_frontier.get(pattern)
                    if known is None or new_cost < known:
                        next_frontier[pattern] = new_cost
                        if reconstruct:
                            next_parents[pattern] = (
                                eta, tuple(sorted(new_indices))
                            )
            if not next_frontier:
                raise AssertionError(
                    "DP frontier became empty; instance invariant violated"
                )
            frontier = next_frontier

        best_pattern = min(frontier, key=lambda p: (frontier[p], p))
        if not reconstruct:
            # subtract the virtual all-label post P_0
            return frontier[best_pattern] - 1
        return self._backtrack(parents, best_pattern)

    def _latest_consistent(
        self, pattern: Pattern, new_indices
    ) -> bool:
        """Condition (i): each newly introduced post must be the latest
        selected post for *every* label it carries."""
        for idx in new_indices:
            for label in self.posts[idx].labels:
                pos = self.label_pos.get(label)
                if pos is not None and pattern[pos] < idx:
                    return False
        return True

    def _backtrack(self, parents, best_pattern: Pattern) -> List[Post]:
        chosen: set = set()
        pattern = best_pattern
        for j in range(self.n, 0, -1):
            eta, new_indices = parents[j][pattern]
            chosen.update(new_indices)
            pattern = eta
        return [self.posts[idx] for idx in sorted(chosen)]


def _opt_posts(instance: Instance, budget: int) -> List[Post]:
    return _EndPatternDP(instance, budget).solve(reconstruct=True)


def opt(instance: Instance, budget: int = 20_000_000) -> Solution:
    """Solve MQDP exactly with the end-pattern dynamic program.

    Parameters
    ----------
    instance:
        The MQDP instance.  Practical for small ``|L|`` (2-3) and lambdas
        that keep only a handful of posts per window, mirroring the paper's
        usage ("feasible ... where the number of queries is up to 2-3 and
        lambda is less than a minute").
    budget:
        Abort (with :class:`~repro.errors.AlgorithmBudgetExceeded`) once the
        number of examined transitions exceeds this.
    """
    return timed_solution("opt", _opt_posts, instance, budget)


def opt_size(instance: Instance, budget: int = 20_000_000) -> int:
    """Cardinality of the optimum cover.

    Runs the DP in its two-frontier mode — ``O(|P|^{|L|})`` space instead
    of the ``O(|P|^{|L|+1})`` the backtracking pointers need (the trade-off
    Section 4.1 describes) — so it handles instances whose full
    reconstruction would not fit.
    """
    return _EndPatternDP(instance, budget).solve(reconstruct=False)
