"""MQDP problem instances.

An :class:`Instance` bundles everything an algorithm needs: the posts sorted
by diversity value, the distance threshold ``lam`` (the paper's lambda) and,
derived from those, the per-label posting lists ``LP(a)`` of Section 2.

Instances are immutable once built; algorithms never mutate them.  Posting
lists are computed once and shared, which mirrors the inverted-index feeding
described in the paper's system architecture (Figure 1).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterable, List, Mapping, Optional, \
    Sequence, Tuple

import numpy as np

from ..errors import InvalidInstanceError
from .post import Post, make_posts

__all__ = ["Instance", "PostingList"]

# Below this length the numpy searchsorted call overhead exceeds what
# bisect pays walking the list; above it the vectorised path wins.
_SEARCHSORTED_MIN = 64


class PostingList:
    """The time-sorted list ``LP(a)`` of posts relevant to one label.

    Provides the two primitives every algorithm needs:

    * ordered iteration (``Scan`` and friends), and
    * O(log n) range queries for the window ``[value - lam, value + lam]``
      (the exact DP and the greedy set-cover transform).
    """

    __slots__ = ("label", "posts", "_values", "_np_values")

    def __init__(self, label: str, posts: Sequence[Post]):
        self.label = label
        self.posts: Tuple[Post, ...] = tuple(posts)
        self._values: List[float] = [p.value for p in self.posts]
        # lazily materialised float64 view for searchsorted range queries
        self._np_values: Optional[np.ndarray] = None

    @property
    def values_array(self) -> np.ndarray:
        """The posting values as a float64 array (built once, cached)."""
        arr = self._np_values
        if arr is None:
            arr = np.asarray(self._values, dtype=np.float64)
            self._np_values = arr
        return arr

    def __len__(self) -> int:
        return len(self.posts)

    def __iter__(self):
        return iter(self.posts)

    def __getitem__(self, idx):
        return self.posts[idx]

    def range(self, lo: float, hi: float) -> Tuple[Post, ...]:
        """Posts with value in the closed interval ``[lo, hi]``."""
        left = bisect.bisect_left(self._values, lo)
        right = bisect.bisect_right(self._values, hi)
        return self.posts[left:right]

    def range_indices(self, lo: float, hi: float) -> Tuple[int, int]:
        """Half-open index range of posts with value in ``[lo, hi]``."""
        if len(self._values) >= _SEARCHSORTED_MIN:
            arr = self.values_array
            left = int(np.searchsorted(arr, lo, side="left"))
            right = int(np.searchsorted(arr, hi, side="right"))
            return left, right
        left = bisect.bisect_left(self._values, lo)
        right = bisect.bisect_right(self._values, hi)
        return left, right

    def count_in(self, lo: float, hi: float) -> int:
        """Number of posts with value in ``[lo, hi]``."""
        left, right = self.range_indices(lo, hi)
        return right - left

    def first_after(self, value: float) -> Optional[Post]:
        """The earliest post with value strictly greater than ``value``."""
        idx = bisect.bisect_right(self._values, value)
        if idx >= len(self.posts):
            return None
        return self.posts[idx]


class Instance:
    """An immutable MQDP instance ``<P, lam>``.

    Parameters
    ----------
    posts:
        The post collection.  They are re-sorted by ``(value, uid)``; uids
        must be unique.  Every post must carry at least one label.
    lam:
        The lambda distance threshold on the diversity dimension.  Must be
        non-negative.
    labels:
        Optional explicit label universe ``L``.  Defaults to the union of the
        posts' labels.  Declaring extra labels is allowed (they simply have
        empty posting lists); declaring fewer than the posts use is an error.
    """

    def __init__(
        self,
        posts: Iterable[Post],
        lam: float,
        labels: Optional[Iterable[str]] = None,
    ):
        post_list = sorted(posts, key=lambda p: (p.value, p.uid))
        if lam < 0:
            raise InvalidInstanceError(f"lambda must be >= 0, got {lam}")
        seen_uids = set()
        for post in post_list:
            if post.uid in seen_uids:
                raise InvalidInstanceError(f"duplicate post uid {post.uid}")
            seen_uids.add(post.uid)
            if not post.labels:
                raise InvalidInstanceError(
                    f"post {post.uid} has an empty label set"
                )

        used = set()
        for post in post_list:
            used |= post.labels
        if labels is None:
            universe = frozenset(used)
        else:
            universe = frozenset(labels)
            missing = used - universe
            if missing:
                raise InvalidInstanceError(
                    "posts reference labels outside the declared universe: "
                    + ", ".join(sorted(missing))
                )

        self._posts: Tuple[Post, ...] = tuple(post_list)
        self._lam = float(lam)
        self._labels = universe
        self._by_uid: Dict[int, Post] = {p.uid: p for p in self._posts}
        self._posting: Dict[str, PostingList] = {}
        buckets: Dict[str, List[Post]] = {a: [] for a in universe}
        for post in self._posts:
            for label in post.labels:
                buckets[label].append(post)
        for label, bucket in buckets.items():
            self._posting[label] = PostingList(label, bucket)

    # -- basic accessors ---------------------------------------------------

    @property
    def posts(self) -> Tuple[Post, ...]:
        """All posts, sorted by diversity value (ties broken by uid)."""
        return self._posts

    @property
    def lam(self) -> float:
        """The lambda distance threshold."""
        return self._lam

    @property
    def labels(self) -> frozenset:
        """The label universe ``L``."""
        return self._labels

    def __len__(self) -> int:
        return len(self._posts)

    def post(self, uid: int) -> Post:
        """Look a post up by uid."""
        return self._by_uid[uid]

    def posting(self, label: str) -> PostingList:
        """The posting list ``LP(label)``."""
        return self._posting[label]

    def posting_lists(self) -> Mapping[str, PostingList]:
        """All posting lists, keyed by label."""
        return dict(self._posting)

    # -- derived statistics --------------------------------------------------

    def overlap_rate(self) -> float:
        """Average number of labels per post (the paper's *overlap rate*)."""
        if not self._posts:
            return 0.0
        return sum(len(p.labels) for p in self._posts) / len(self._posts)

    def max_labels_per_post(self) -> int:
        """``s`` — the largest label-set size over all posts."""
        if not self._posts:
            return 0
        return max(len(p.labels) for p in self._posts)

    def span(self) -> float:
        """Extent of the diversity dimension covered by the posts."""
        if not self._posts:
            return 0.0
        return self._posts[-1].value - self._posts[0].value

    # -- construction helpers -------------------------------------------------

    @classmethod
    def from_sorted(
        cls,
        posts: Sequence[Post],
        lam: float,
        labels: Iterable[str],
    ) -> "Instance":
        """Trusted fast constructor for pre-validated, pre-sorted posts.

        Skips the sort and the per-post invariant checks of ``__init__``;
        the caller guarantees ``posts`` is sorted by ``(value, uid)`` with
        unique uids, non-empty label sets, and labels inside ``labels``.
        Used by the incremental view store, whose internal order already
        satisfies all of the above — re-validating on every materialize
        would put an O(n log n) sort on the near-O(1) read path.
        """
        if lam < 0:
            raise InvalidInstanceError(f"lambda must be >= 0, got {lam}")
        self = cls.__new__(cls)
        self._posts = tuple(posts)
        self._lam = float(lam)
        self._labels = frozenset(labels)
        self._by_uid = {p.uid: p for p in self._posts}
        self._posting = {}
        buckets: Dict[str, List[Post]] = {a: [] for a in self._labels}
        for post in self._posts:
            for label in post.labels:
                buckets[label].append(post)
        for label, bucket in buckets.items():
            self._posting[label] = PostingList(label, bucket)
        return self

    @classmethod
    def from_specs(
        cls,
        specs: Iterable[tuple],
        lam: float,
        labels: Optional[Iterable[str]] = None,
    ) -> "Instance":
        """Build an instance from compact ``(value, labels)`` tuples.

        See :func:`repro.core.post.make_posts` for the spec format.
        """
        return cls(make_posts(specs), lam, labels=labels)

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation: posts, lambda and the label universe.

        Posting lists are derived state and are rebuilt on
        :meth:`from_dict` rather than shipped.
        """
        return {
            "posts": [post.to_dict() for post in self._posts],
            "lam": self._lam,
            "labels": sorted(self._labels),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Instance":
        """Inverse of :meth:`to_dict` (revalidates all invariants)."""
        return cls(
            (Post.from_dict(p) for p in payload["posts"]),
            float(payload["lam"]),
            labels=payload.get("labels"),
        )

    def restricted_to(self, lo: float, hi: float) -> "Instance":
        """A sub-instance containing only posts with value in ``[lo, hi]``."""
        subset = [p for p in self._posts if lo <= p.value <= hi]
        return Instance(subset, self._lam)

    def with_lam(self, lam: float) -> "Instance":
        """The same posts under a different lambda threshold."""
        return Instance(self._posts, lam, labels=self._labels)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Instance(|P|={len(self._posts)}, |L|={len(self._labels)}, "
            f"lam={self._lam:g})"
        )
