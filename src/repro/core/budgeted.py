"""Budgeted diversification: the best digest of at most k posts.

MQDP minimises the number of posts subject to full coverage.  Real feeds
often have the dual constraint — "show at most k posts" — so the library
also ships the budgeted variant: select at most ``k`` posts maximising the
number of lambda-covered ``(post, label)`` pairs.  This is maximum
coverage, and the classical greedy gives the optimal ``1 - 1/e``
approximation guarantee (Nemhauser et al.), which is also the best
possible under standard assumptions.

The same machinery answers "how good is a k-post digest?" via
:func:`coverage_curve`, the coverage-vs-budget profile a UI would use to
pick its cut-off.
"""

from __future__ import annotations

import time as _time
from typing import List, Optional, Set, Tuple

from .coverage import CoverageModel, covered_pairs_by
from .greedy_sc import build_setcover_family
from .instance import Instance
from .post import Post
from .solution import Solution

__all__ = ["max_coverage", "coverage_curve"]


def _family_for(
    instance: Instance, model: Optional[CoverageModel]
) -> Tuple[List[Set[Tuple[int, str]]], Set[Tuple[int, str]]]:
    if model is None:
        return build_setcover_family(instance)
    family = [
        covered_pairs_by(instance, post, model) for post in instance.posts
    ]
    universe = {
        (post.uid, label)
        for post in instance.posts
        for label in post.labels
    }
    return family, universe


def max_coverage(
    instance: Instance,
    k: int,
    model: Optional[CoverageModel] = None,
) -> Tuple[Solution, float]:
    """Greedy maximum coverage under a budget of ``k`` posts.

    Returns ``(solution, covered_fraction)``; the fraction is over all
    ``(post, label)`` pairs.  Guarantee: at least ``1 - 1/e`` (~63%) of
    what the best k-post selection could cover.  Stops early when full
    coverage is reached, so ``covered_fraction == 1.0`` certifies the
    budget was sufficient.
    """
    if k < 0:
        raise ValueError(f"budget must be >= 0, got {k}")
    started = _time.perf_counter()
    family, universe = _family_for(instance, model)
    remaining = set(universe)
    total = len(universe)
    picks: List[Post] = []
    residual = [set(s) for s in family]
    for _ in range(min(k, len(instance))):
        best_idx = -1
        best_gain = 0
        for idx, pairs in enumerate(residual):
            gain = len(pairs)
            if gain > best_gain:
                best_gain = gain
                best_idx = idx
        if best_idx < 0:
            break  # everything already covered
        picks.append(instance.posts[best_idx])
        newly = set(residual[best_idx])
        remaining -= newly
        for pairs in residual:
            if pairs:
                pairs -= newly
    covered = 1.0 if total == 0 else (total - len(remaining)) / total
    solution = Solution.from_posts(
        "max_coverage", picks, elapsed=_time.perf_counter() - started
    )
    return solution, covered


def coverage_curve(
    instance: Instance,
    max_k: Optional[int] = None,
    model: Optional[CoverageModel] = None,
) -> List[Tuple[int, float]]:
    """The coverage-vs-budget profile ``[(k, fraction)] for k = 0..max_k``.

    One greedy run produces the whole curve (greedy picks are nested), so
    this costs the same as a single :func:`max_coverage` call at the
    largest budget.
    """
    if max_k is None:
        max_k = len(instance)
    family, universe = _family_for(instance, model)
    total = len(universe)
    remaining = set(universe)
    residual = [set(s) for s in family]
    curve: List[Tuple[int, float]] = [
        (0, 0.0 if total else 1.0)
    ]
    for k in range(1, min(max_k, len(instance)) + 1):
        best_idx = -1
        best_gain = 0
        for idx, pairs in enumerate(residual):
            gain = len(pairs)
            if gain > best_gain:
                best_gain = gain
                best_idx = idx
        if best_idx < 0:
            curve.append((k, curve[-1][1]))
            continue
        newly = set(residual[best_idx])
        remaining -= newly
        for pairs in residual:
            if pairs:
                pairs -= newly
        fraction = 1.0 if total == 0 else (total - len(remaining)) / total
        curve.append((k, fraction))
    return curve
