"""Proportional diversity in the streaming setting.

Section 6 defines the variable lambda of Equation (2) over a *static*
collection — the density around a post looks both backwards and forwards.
A streaming algorithm cannot see forward, so this module supplies the
missing piece (the paper leaves it implicit): a **causal** density
estimate, and a StreamScan variant that assigns every arriving post its
Equation (2) radius from that estimate.

* :class:`OnlineDensityEstimator` — per-label exponentially-decayed
  arrival rates: on each arrival the decayed counter is bumped, so
  ``rate = counter / decay`` estimates posts-per-time-unit over roughly
  the last ``decay`` seconds.  Deterministic given the stream, so a run
  can be *replayed* into an offline
  :class:`~repro.core.coverage.VariableLambda` model for verification.
* :class:`StreamScanProportional` — per-label pending windows as in
  StreamScan, but every post carries its own radius (assigned on
  arrival): an emitted post covers an arrival iff their distance is
  within the *emitted* post's radius (the coverer-radius convention of
  Section 6), and each emission clears exactly the pending posts it
  covers, leaving the rest to a later decision.

The output is always a valid cover under the replayed radii, every
emission happens within ``tau`` of publication (or within the post's own
radius, whichever deadline fires first), and on a bursty stream the dense
region receives proportionally more representatives than fixed-lambda
StreamScan gives it — all asserted in the tests.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Tuple

from ..stream.events import Emission, StreamingAlgorithm
from .coverage import VariableLambda
from .post import Post

__all__ = ["OnlineDensityEstimator", "StreamScanProportional"]


class OnlineDensityEstimator:
    """Exponentially-decayed per-label arrival rates.

    ``counter_a <- counter_a * exp(-(t - t_prev)/decay) + 1`` on each
    label-``a`` arrival; ``rate_a = counter_a / decay``.  The same
    machinery tracks the global rate of relevant posts, which serves as
    Equation (2)'s ``density_0`` unless a static one is supplied.
    """

    def __init__(self, decay: float):
        if decay <= 0:
            raise ValueError(f"decay must be positive, got {decay}")
        self.decay = float(decay)
        self._counters: Dict[str, float] = {}
        self._stamps: Dict[str, float] = {}
        self._global_counter = 0.0
        self._global_stamp: Optional[float] = None

    def _decayed(self, counter: float, last: Optional[float],
                 now: float) -> float:
        if last is None:
            return counter
        return counter * math.exp(-(now - last) / self.decay)

    def observe(self, post: Post) -> None:
        """Fold one arrival into the per-label and global counters."""
        now = post.value
        self._global_counter = self._decayed(
            self._global_counter, self._global_stamp, now
        ) + 1.0
        self._global_stamp = now
        for label in post.labels:
            counter = self._decayed(
                self._counters.get(label, 0.0),
                self._stamps.get(label), now,
            )
            self._counters[label] = counter + 1.0
            self._stamps[label] = now

    def rate(self, label: str, now: float) -> float:
        """Estimated label arrivals per time unit at time ``now``."""
        counter = self._decayed(
            self._counters.get(label, 0.0), self._stamps.get(label), now
        )
        return counter / self.decay

    def global_rate(self, now: float) -> float:
        """Estimated relevant arrivals per time unit at time ``now``."""
        counter = self._decayed(
            self._global_counter, self._global_stamp, now
        )
        return counter / self.decay


class StreamScanProportional(StreamingAlgorithm):
    """StreamScan with per-post Equation (2) radii from a causal estimator.

    Parameters
    ----------
    labels:
        The subscription's label universe.
    lam0:
        Equation (2)'s base threshold; radii live in ``(0, e * lam0]``.
    tau:
        Maximum decision delay, as in StreamMQDP.
    density0:
        Static reference density.  ``None`` uses the online global rate
        (floored at a tenth of a post per ``decay`` so early radii do not
        explode).
    decay:
        Estimator memory; defaults to ``4 * lam0`` — long enough to be
        stable across a window, short enough to track bursts.
    """

    name = "stream_scan_prop"

    def __init__(
        self,
        labels,
        lam0: float,
        tau: float,
        density0: Optional[float] = None,
        decay: Optional[float] = None,
    ):
        if lam0 <= 0:
            raise ValueError(f"lam0 must be positive, got {lam0}")
        if tau < 0:
            raise ValueError(f"tau must be >= 0, got {tau}")
        self.labels = sorted(labels)
        self.lam0 = float(lam0)
        self.tau = float(tau)
        self.density0 = density0
        self.estimator = OnlineDensityEstimator(
            decay if decay is not None else 4.0 * lam0
        )
        # causal radii per (uid, label), recorded for offline replay
        self.assigned_radii: Dict[Tuple[int, str], float] = {}
        self._pending: Dict[str, List[Post]] = {a: [] for a in self.labels}
        self._last_emitted: Dict[str, Optional[Post]] = {
            a: None for a in self.labels
        }
        self._emitted_uids: set = set()

    # -- Equation (2), causally ---------------------------------------------

    def _radius(self, post: Post, label: str) -> float:
        baseline = self.density0
        if baseline is None:
            baseline = max(
                self.estimator.global_rate(post.value),
                0.1 / self.estimator.decay,
            )
        local = self.estimator.rate(label, post.value)
        return self.lam0 * math.exp(1.0 - local / baseline)

    def radius_of(self, uid: int, label: str) -> float:
        """The radius assigned to a pair when its post arrived."""
        return self.assigned_radii[(uid, label)]

    def replay_model(self, upper: Optional[float] = None) -> VariableLambda:
        """The offline coverage model induced by this run's causal radii
        (posts never seen get the neutral ``lam0``)."""
        radii = dict(self.assigned_radii)
        lam0 = self.lam0
        return VariableLambda(
            radius_fn=lambda post, label: radii.get(
                (post.uid, label), lam0
            ),
            upper_bound=upper if upper is not None
            else self.lam0 * math.e,
        )

    # -- streaming mechanics ---------------------------------------------------

    def _covered(self, label: str, post: Post) -> bool:
        last = self._last_emitted[label]
        if last is None:
            return False
        radius = self.assigned_radii[(last.uid, label)]
        return abs(last.value - post.value) <= radius

    def _deadline(self, label: str) -> Optional[float]:
        pending = self._pending[label]
        if not pending:
            return None
        oldest = pending[0]
        oldest_radius = self.assigned_radii[(oldest.uid, label)]
        return min(
            pending[-1].value + self.tau, oldest.value + oldest_radius
        )

    def next_deadline(self) -> Optional[float]:
        deadlines = [
            d for d in (self._deadline(a) for a in self.labels)
            if d is not None
        ]
        return min(deadlines) if deadlines else None

    def on_arrival(self, post: Post) -> List[Emission]:
        self.estimator.observe(post)
        emissions: List[Emission] = []
        for label in post.labels:
            if label not in self._pending:
                continue
            self.assigned_radii[(post.uid, label)] = self._radius(
                post, label
            )
            if self._covered(label, post):
                continue
            # Admitting the post must keep the window invariant: some
            # single pick covers every pending post.  Emitting removes at
            # least the pick itself, so this loop terminates; leftovers
            # that an emission's radius missed stay pending for a later
            # decision.
            while self._pending[label] and not self._pick_covers_all(
                label, post
            ):
                emissions.extend(self._emit(label, post.value))
            if not self._covered(label, post):
                self._pending[label].append(post)
        return emissions

    def _pick_covers_all(self, label: str, incoming: Post) -> bool:
        """Would some pending-or-incoming post cover the whole window
        including ``incoming``?  (Checked with each candidate's own
        radius, the directional-coverage convention.)"""
        window = self._pending[label] + [incoming]
        for candidate in window:
            radius = self.assigned_radii[(candidate.uid, label)]
            if all(
                abs(candidate.value - other.value) <= radius
                for other in window
            ):
                return True
        return False

    def _best_pick(self, label: str) -> Post:
        """The pending post that covers the whole window and reaches
        furthest forward; the window invariant guarantees one exists."""
        pending = self._pending[label]
        best = None
        best_reach = float("-inf")
        for candidate in pending:
            radius = self.assigned_radii[(candidate.uid, label)]
            if all(
                abs(candidate.value - other.value) <= radius
                for other in pending
            ):
                reach = candidate.value + radius
                if reach > best_reach:
                    best_reach = reach
                    best = candidate
        if best is None:  # pragma: no cover - invariant violation guard
            best = pending[-1]
        return best

    def _emit(self, label: str, now: float) -> List[Emission]:
        picked = self._best_pick(label)
        radius = self.assigned_radii[(picked.uid, label)]
        self._last_emitted[label] = picked
        self._pending[label] = [
            p for p in self._pending[label]
            if abs(p.value - picked.value) > radius
        ]
        if picked.uid in self._emitted_uids:
            return []
        self._emitted_uids.add(picked.uid)
        return [Emission(post=picked, emitted_at=now)]

    def on_deadline(self, now: float) -> List[Emission]:
        emissions: List[Emission] = []
        for label in self.labels:
            if self._deadline(label) != now:
                continue
            emissions.extend(self._emit(label, now))
        return emissions
