"""Exact baselines used to cross-check OPT and the approximation bounds.

Two independent exact solvers:

* :func:`brute_force` — enumerate subsets in order of increasing cardinality.
  Exponential in ``|P|``; only for very small instances, but its correctness
  is self-evident, which makes it the anchor of the whole test pyramid.
* :func:`exact_via_setcover` — run the branch-and-bound exact set cover of
  :mod:`repro.setcover.exact` on the GreedySC transform.  Handles noticeably
  larger instances and provides the "optimal" reference for the
  effectiveness experiments (Figures 6, 7, 9, 10, 11) exactly as the paper
  uses OPT.
"""

from __future__ import annotations

from itertools import combinations
from typing import List

from ..errors import AlgorithmBudgetExceeded
from ..setcover import exact_set_cover
from .coverage import is_cover
from .greedy_sc import build_setcover_family
from .instance import Instance
from .post import Post
from .solution import Solution, timed_solution

__all__ = ["brute_force", "exact_via_setcover", "optimal_size"]


def _brute_posts(instance: Instance, max_posts: int) -> List[Post]:
    posts = instance.posts
    if len(posts) > max_posts:
        raise AlgorithmBudgetExceeded(
            f"brute force capped at {max_posts} posts, got {len(posts)}"
        )
    for size in range(0, len(posts) + 1):
        for subset in combinations(posts, size):
            if is_cover(instance, subset):
                return list(subset)
    raise AssertionError("the full post set always covers itself")


def brute_force(instance: Instance, max_posts: int = 18) -> Solution:
    """Minimum lambda-cover by subset enumeration (tiny instances only)."""
    return timed_solution("brute_force", _brute_posts, instance, max_posts)


def _exact_sc_posts(instance: Instance, node_budget: int) -> List[Post]:
    family, universe = build_setcover_family(instance)
    chosen = exact_set_cover(family, universe=universe,
                             node_budget=node_budget)
    return [instance.posts[k] for k in chosen]


def exact_via_setcover(
    instance: Instance, node_budget: int = 2_000_000
) -> Solution:
    """Minimum lambda-cover via exact set cover on the GreedySC transform."""
    return timed_solution(
        "exact_setcover", _exact_sc_posts, instance, node_budget
    )


def optimal_size(instance: Instance, node_budget: int = 2_000_000) -> int:
    """Cardinality of a minimum lambda-cover (convenience for experiments)."""
    return exact_via_setcover(instance, node_budget=node_budget).size
