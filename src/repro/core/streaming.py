"""Streaming MQDP algorithms (Section 5).

Posts arrive in timestamp order; every selected post must be reported within
``tau`` of its publication time.  Five solvers are provided:

* :class:`StreamScan` — the per-label adaptation of Scan.  Each label tracks
  its oldest and latest uncovered posts and emits the latest one at time
  ``min(t(P_lu) + tau, t(P_ou) + lambda)``.  Matches batch Scan exactly when
  ``tau >= lambda`` (bound ``s``); bound ``2s`` otherwise.
* :class:`StreamScanPlus` — StreamScan with cross-label propagation: an
  emitted post immediately covers the pending posts of *all* its labels.
* :class:`InstantCover` — the ``tau = 0`` algorithm shared by both families:
  a cache holds the most recently selected post per label; an arriving post
  is emitted on the spot iff some of its labels is uncovered.  Bound ``2s``.
* :class:`StreamGreedySC` — windowed greedy set cover: when the oldest
  uncovered post ``P'`` turns ``tau`` old, run greedy set cover over the
  window ``[t(P'), t(P') + tau]`` until every pending pair is covered.
* :class:`StreamGreedySCPlus` — same, but stop the greedy as soon as ``P'``
  itself is covered and reschedule for the next uncovered post.

All classes implement :class:`repro.stream.events.StreamingAlgorithm` and
are driven by :func:`repro.stream.runner.run_stream`.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..observability import facade as _obs
from ..stream.events import Emission, StreamingAlgorithm
from ..stream.runner import StreamResult, run_stream
from .instance import Instance
from .post import Post

__all__ = [
    "StreamScan",
    "StreamScanPlus",
    "InstantCover",
    "StreamGreedySC",
    "StreamGreedySCPlus",
    "stream_solve",
]


class _SelectedIndex:
    """Per-label sorted index of selected posts, for coverage queries."""

    def __init__(self) -> None:
        self._values: Dict[str, List[float]] = {}

    def add(self, post: Post) -> None:
        for label in post.labels:
            values = self._values.setdefault(label, [])
            bisect.insort(values, post.value)

    def covers(self, label: str, value: float, lam: float) -> bool:
        values = self._values.get(label)
        if not values:
            return False
        # The abs() re-check keeps this arithmetically identical to the
        # cover verifier: `v <= value + lam` can hold at boundary floats
        # where `v - value > lam` does not.
        idx = max(0, bisect.bisect_left(values, value - lam) - 1)
        return any(
            abs(candidate - value) <= lam
            for candidate in values[idx:idx + 3]
        )


class StreamScan(StreamingAlgorithm):
    """Per-label streaming Scan with decision delay ``tau``."""

    name = "stream_scan"
    propagate = False

    def __init__(self, labels, lam: float, tau: float):
        if lam < 0 or tau < 0:
            raise ValueError("lambda and tau must be non-negative")
        self.labels = sorted(labels)
        self.lam = float(lam)
        self.tau = float(tau)
        # pending[a]: uncovered posts for label a, in arrival order; the
        # oldest is the paper's P_ou(a) and the newest its P_lu(a).
        self._pending: Dict[str, List[Post]] = {a: [] for a in self.labels}
        self._last_emitted: Dict[str, Optional[Post]] = {
            a: None for a in self.labels
        }
        self._emitted_uids: Set[int] = set()

    # -- deadline bookkeeping ---------------------------------------------

    def _deadline(self, label: str) -> Optional[float]:
        pending = self._pending[label]
        if not pending:
            return None
        return min(pending[-1].value + self.tau, pending[0].value + self.lam)

    def next_deadline(self) -> Optional[float]:
        deadlines = [
            d for d in (self._deadline(a) for a in self.labels)
            if d is not None
        ]
        return min(deadlines) if deadlines else None

    # -- events -------------------------------------------------------------

    def on_arrival(self, post: Post) -> List[Emission]:
        emissions: List[Emission] = []
        for label in post.labels:
            if label not in self._pending:
                continue
            last = self._last_emitted[label]
            if last is not None and abs(last.value - post.value) <= self.lam:
                continue  # still covered by the previous output
            pending = self._pending[label]
            if pending and post.value - pending[0].value > self.lam:
                # The label's lambda-deadline coincides with this arrival
                # up to float rounding (`t_ou + lam >= t` can hold while
                # `t - t_ou > lam` does), so admitting the post would break
                # the invariant that one emission covers all pending posts.
                # Fire the deadline first, exactly as the batch Scan's
                # subtraction test would.
                emissions.extend(self._emit(label, post.value))
            self._pending[label].append(post)
        return emissions

    def on_deadline(self, now: float) -> List[Emission]:
        emissions: List[Emission] = []
        for label in self.labels:
            if self._deadline(label) != now:
                continue
            emissions.extend(self._emit(label, now))
        return emissions

    def _emit(self, label: str, now: float) -> List[Emission]:
        pending = self._pending[label]
        picked = pending[-1]
        self._last_emitted[label] = picked
        pending.clear()
        emissions: List[Emission] = []
        if picked.uid not in self._emitted_uids:
            self._emitted_uids.add(picked.uid)
            emissions.append(Emission(post=picked, emitted_at=now))
        if self.propagate:
            self._propagate(picked)
        return emissions

    def _propagate(self, picked: Post) -> None:
        """Scan+-style improvement: an output covers all its labels."""
        for label in picked.labels:
            if label not in self._pending:
                continue
            last = self._last_emitted[label]
            if last is None or picked.value > last.value:
                self._last_emitted[label] = picked
            self._pending[label] = [
                p for p in self._pending[label]
                if abs(p.value - picked.value) > self.lam
            ]


class StreamScanPlus(StreamScan):
    """StreamScan with cross-label coverage propagation."""

    name = "stream_scan+"
    propagate = True


class InstantCover(StreamingAlgorithm):
    """The instant-decision algorithm (``tau = 0``), bound ``2s``.

    A small cache keeps the most recently selected post per label; an
    arriving post is output immediately iff at least one of its labels has
    no cached post within ``lambda``.

    The cache stores only ``(value, uid)`` per label — holding whole
    :class:`Post` objects would pin every selected post's text and label
    set in memory for the stream's lifetime.  With ``window`` set, entries
    older than ``now - window`` are evicted on arrival; any ``window >=
    lam`` leaves the emission sequence untouched on time-ordered streams,
    because an entry that old can never cover a future arrival again.
    """

    name = "instant"

    def __init__(self, labels, lam: float, window: Optional[float] = None):
        if window is not None and window < lam:
            raise ValueError(
                "window must be >= lambda: an entry younger than lambda "
                f"can still cover arrivals (window={window}, lam={lam})"
            )
        self.labels = set(labels)
        self.lam = float(lam)
        self.window = None if window is None else float(window)
        self._cache: Dict[str, Tuple[float, int]] = {}
        self.evicted = 0

    def _expire(self, now: float) -> None:
        if self.window is None:
            return
        horizon = now - self.window
        dead = [
            label
            for label, (value, _) in self._cache.items()
            if value < horizon
        ]
        for label in dead:
            del self._cache[label]
        self.evicted += len(dead)

    def on_arrival(self, post: Post) -> List[Emission]:
        self._expire(post.value)
        covered = all(
            label in self._cache
            and abs(self._cache[label][0] - post.value) <= self.lam
            for label in post.labels
        )
        if covered:
            return []
        entry = (post.value, post.uid)
        for label in post.labels:
            self._cache[label] = entry
        return [Emission(post=post, emitted_at=post.value)]

    def next_deadline(self) -> Optional[float]:
        return None

    def on_deadline(self, now: float) -> List[Emission]:  # pragma: no cover
        return []


class StreamGreedySC(StreamingAlgorithm):
    """Windowed greedy set cover over ``[t(P'), t(P') + tau]``."""

    name = "stream_greedy_sc"
    stop_at_oldest = False

    def __init__(self, labels, lam: float, tau: float):
        if lam < 0 or tau < 0:
            raise ValueError("lambda and tau must be non-negative")
        self.labels = set(labels)
        self.lam = float(lam)
        self.tau = float(tau)
        self._selected = _SelectedIndex()
        # pending: posts with >= 1 uncovered (post, label) pair, in arrival
        # order, with the set of still-uncovered labels alongside.
        self._pending: List[Tuple[Post, Set[str]]] = []
        # buffer: recent posts (covered or not) eligible as greedy picks.
        self._buffer: List[Post] = []

    # -- helpers ---------------------------------------------------------

    def _uncovered_labels(self, post: Post) -> Set[str]:
        return {
            label
            for label in post.labels
            if label in self.labels
            and not self._selected.covers(label, post.value, self.lam)
        }

    def _prune_buffer(self, threshold: float) -> None:
        if self._buffer and self._buffer[0].value < threshold:
            self._buffer = [
                p for p in self._buffer if p.value >= threshold
            ]

    # -- events -------------------------------------------------------------

    def on_arrival(self, post: Post) -> List[Emission]:
        if not post.labels & self.labels:
            return []
        self._buffer.append(post)
        uncovered = self._uncovered_labels(post)
        if uncovered:
            self._pending.append((post, uncovered))
        threshold = (
            self._pending[0][0].value if self._pending else post.value
        )
        self._prune_buffer(threshold)
        return []

    def next_deadline(self) -> Optional[float]:
        if not self._pending:
            return None
        return self._pending[0][0].value + self.tau

    def on_deadline(self, now: float) -> List[Emission]:
        oldest = self._pending[0][0]
        window_start = oldest.value
        candidates = [
            p for p in self._buffer if window_start <= p.value <= now
        ]
        emissions: List[Emission] = []
        # (candidate, pending) pairs examined across this window's greedy
        # rounds — the windowed set cover's unit of work
        gain_evaluations = 0
        while self._pending:
            if self.stop_at_oldest and not self._pending[0][1]:
                # P' got covered: reschedule around the next uncovered post.
                self._pending = [
                    entry for entry in self._pending if entry[1]
                ]
                break
            if not any(labels for _, labels in self._pending):
                self._pending = []
                break
            gain_evaluations += len(candidates) * len(self._pending)
            picked = self._best_candidate(candidates)
            if picked is None:  # pragma: no cover - every pending post is
                break  # its own candidate, so this cannot happen
            self._selected.add(picked)
            emissions.append(Emission(post=picked, emitted_at=now))
            self._apply_coverage(picked)
        if self._pending:
            self._prune_buffer(self._pending[0][0].value)
        if _obs.enabled():
            _obs.count("stream_greedy.windows")
            _obs.count("stream_greedy.gain_evaluations", gain_evaluations)
            _obs.count("stream_greedy.window_emissions", len(emissions))
        return emissions

    def _best_candidate(self, candidates: Sequence[Post]) -> Optional[Post]:
        best: Optional[Post] = None
        best_gain = 0
        for candidate in candidates:
            gain = 0
            for post, labels in self._pending:
                if abs(post.value - candidate.value) > self.lam:
                    continue
                gain += len(labels & candidate.labels)
            # Ties break towards the *latest* candidate: equal pending
            # coverage, but the later post also covers lambda further into
            # the future, exactly like Scan picking the furthest post.
            if gain > best_gain or (
                gain == best_gain
                and best is not None
                and gain > 0
                and candidate.value > best.value
            ):
                best_gain = gain
                best = candidate
        return best

    def _apply_coverage(self, picked: Post) -> None:
        for post, labels in self._pending:
            if abs(post.value - picked.value) <= self.lam:
                labels -= picked.labels


class StreamGreedySCPlus(StreamGreedySC):
    """StreamGreedySC that stops each window once ``P'`` is covered."""

    name = "stream_greedy_sc+"
    stop_at_oldest = True


_STREAM_FACTORIES = {
    "stream_scan": lambda labels, lam, tau: StreamScan(labels, lam, tau),
    "stream_scan+": lambda labels, lam, tau: StreamScanPlus(labels, lam, tau),
    "instant": lambda labels, lam, tau: InstantCover(labels, lam),
    "stream_greedy_sc": lambda labels, lam, tau: StreamGreedySC(
        labels, lam, tau
    ),
    "stream_greedy_sc+": lambda labels, lam, tau: StreamGreedySCPlus(
        labels, lam, tau
    ),
}


def stream_solve(
    name: str, instance: Instance, tau: float
) -> StreamResult:
    """Run the named streaming algorithm over an instance's posts.

    The instance's posts play the role of the arriving stream (they are
    already time-ordered) and its ``lam`` is the coverage threshold.
    """
    try:
        factory = _STREAM_FACTORIES[name]
    except KeyError:
        raise KeyError(
            f"unknown streaming algorithm {name!r}; "
            f"choose from {sorted(_STREAM_FACTORIES)}"
        ) from None
    algorithm = factory(instance.labels, instance.lam, tau)
    with _obs.span("stream.solve", algorithm=name, tau=tau):
        return run_stream(algorithm, instance.posts)
