"""The common result type returned by every MQDP solver."""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple

from .instance import Instance
from .post import Post

__all__ = ["Solution", "timed_solution"]


@dataclass(frozen=True)
class Solution:
    """A (candidate) lambda-cover produced by a solver.

    Attributes
    ----------
    algorithm:
        Name of the producing algorithm (``"opt"``, ``"scan"``, ...).
    posts:
        The selected posts, sorted by diversity value.
    elapsed:
        Wall-clock seconds spent inside the solver, for the efficiency
        studies (Figures 13-15); ``0.0`` when not measured.
    """

    algorithm: str
    posts: Tuple[Post, ...]
    elapsed: float = field(default=0.0, compare=False)

    @property
    def size(self) -> int:
        """Solution cardinality ``|Z|`` — the objective the paper minimises."""
        return len(self.posts)

    @property
    def uids(self) -> Tuple[int, ...]:
        """The selected posts' uids, in value order."""
        return tuple(post.uid for post in self.posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self.posts)

    def __len__(self) -> int:
        return len(self.posts)

    def relative_error(self, optimum: int) -> float:
        """``(|Z| - |OPT|) / |OPT|`` — the paper's relative solution size error."""
        if optimum <= 0:
            raise ValueError("optimum size must be positive")
        return (self.size - optimum) / optimum

    @staticmethod
    def from_posts(algorithm: str, posts: List[Post],
                   elapsed: float = 0.0) -> "Solution":
        """Normalise an unordered post list into a :class:`Solution`."""
        unique = {post.uid: post for post in posts}
        ordered = sorted(unique.values(), key=lambda p: (p.value, p.uid))
        return Solution(algorithm=algorithm, posts=tuple(ordered),
                        elapsed=elapsed)


def timed_solution(algorithm: str, solve, instance: Instance,
                   *args, **kwargs) -> Solution:
    """Run ``solve(instance, *args, **kwargs)`` and wrap the timing.

    ``solve`` must return a list of posts; the wall-clock time is recorded on
    the resulting :class:`Solution`.
    """
    start = _time.perf_counter()
    posts = solve(instance, *args, **kwargs)
    elapsed = _time.perf_counter() - start
    return Solution.from_posts(algorithm, posts, elapsed=elapsed)
