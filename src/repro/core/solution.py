"""The common result type returned by every MQDP solver."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, \
    Optional, Tuple

from ..observability import facade as _obs
from .instance import Instance
from .post import Post

__all__ = ["Solution", "timed_solution"]


@dataclass(frozen=True)
class Solution:
    """A (candidate) lambda-cover produced by a solver.

    Attributes
    ----------
    algorithm:
        Name of the producing algorithm (``"opt"``, ``"scan"``, ...).
    posts:
        The selected posts, sorted by diversity value.
    elapsed:
        Wall-clock seconds spent inside the solver, for the efficiency
        studies (Figures 13-15); ``0.0`` when not measured.
    """

    algorithm: str
    posts: Tuple[Post, ...]
    elapsed: float = field(default=0.0, compare=False)

    @property
    def size(self) -> int:
        """Solution cardinality ``|Z|`` — the objective the paper minimises."""
        return len(self.posts)

    @property
    def uids(self) -> Tuple[int, ...]:
        """The selected posts' uids, in value order."""
        return tuple(post.uid for post in self.posts)

    def __iter__(self) -> Iterator[Post]:
        return iter(self.posts)

    def __len__(self) -> int:
        return len(self.posts)

    def relative_error(self, optimum: int) -> float:
        """``(|Z| - |OPT|) / |OPT|`` — the paper's relative solution size error."""
        if optimum <= 0:
            raise ValueError("optimum size must be positive")
        return (self.size - optimum) / optimum

    # -- wire format -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe representation (posts in value order)."""
        return {
            "algorithm": self.algorithm,
            "posts": [post.to_dict() for post in self.posts],
            "elapsed": self.elapsed,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Solution":
        """Inverse of :meth:`to_dict`."""
        return cls(
            algorithm=str(payload["algorithm"]),
            posts=tuple(Post.from_dict(p) for p in payload["posts"]),
            elapsed=float(payload.get("elapsed", 0.0)),
        )

    @staticmethod
    def from_posts(algorithm: str, posts: List[Post],
                   elapsed: float = 0.0) -> "Solution":
        """Normalise an unordered post list into a :class:`Solution`."""
        unique = {post.uid: post for post in posts}
        ordered = sorted(unique.values(), key=lambda p: (p.value, p.uid))
        return Solution(algorithm=algorithm, posts=tuple(ordered),
                        elapsed=elapsed)


def timed_solution(algorithm: str, solve, instance: Instance,
                   *args, clock: Optional[Callable[[], float]] = None,
                   **kwargs) -> Solution:
    """Run ``solve(instance, *args, **kwargs)`` and wrap the timing.

    ``solve`` must return a list of posts; the wall-clock time is recorded
    on the resulting :class:`Solution`.  The time source is, in order:
    the ``clock`` argument, the active observability clock
    (:func:`repro.observability.clock`), else ``time.perf_counter`` — so
    enabling observability with a fake clock makes every solver's
    recorded ``elapsed`` deterministic.
    """
    tick = clock if clock is not None else _obs.clock()
    with _obs.span(f"solver.{algorithm}", algorithm=algorithm) as span:
        start = tick()
        posts = solve(instance, *args, **kwargs)
        elapsed = tick() - start
        solution = Solution.from_posts(algorithm, posts, elapsed=elapsed)
        span.set_attribute("solution_size", solution.size)
        span.set_attribute("elapsed", elapsed)
    if _obs.enabled():
        _obs.count(f"solver.{algorithm}.calls")
        _obs.observe(f"solver.{algorithm}.elapsed", elapsed)
        _obs.set_gauge(f"solver.{algorithm}.last_solution_size",
                       solution.size)
    return solution
