"""Metrics used throughout the Section 7 evaluation.

The paper's effectiveness metric is the *relative solution size error*
``(estimated - optimal) / optimal`` against an exact solver's optimum, and
its efficiency metric is *execution time per post* (throughput is what
matters when the algorithm runs per user across millions of users).
"""

from __future__ import annotations

import statistics
from typing import Dict, Iterable, Sequence

from ..core.instance import Instance
from ..core.solution import Solution

__all__ = ["relative_error", "per_post_time", "mean", "summary"]


def relative_error(estimated: int, optimal: int) -> float:
    """``(estimated - optimal) / optimal`` — Section 7.2's error measure.

    Raises ``ValueError`` on a non-positive optimum (an empty-instance
    optimum means the experiment itself is degenerate) and on an estimate
    below the optimum (which would mean the "optimal" reference was not
    optimal — a bug worth failing loudly for).
    """
    if optimal <= 0:
        raise ValueError(f"optimal size must be positive, got {optimal}")
    if estimated < optimal:
        raise ValueError(
            f"estimate {estimated} beats the optimum {optimal}; "
            "the reference solver is not optimal"
        )
    return (estimated - optimal) / optimal


def per_post_time(solution: Solution, instance: Instance) -> float:
    """Execution seconds per input post (Figures 13-15's y-axis)."""
    if len(instance) == 0:
        return 0.0
    return solution.elapsed / len(instance)


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence (grid cells may be)."""
    values = list(values)
    return statistics.fmean(values) if values else 0.0


def summary(values: Sequence[float]) -> Dict[str, float]:
    """``{mean, median, min, max, stdev}`` for a measurement series."""
    if not values:
        return {
            "mean": 0.0, "median": 0.0, "min": 0.0, "max": 0.0, "stdev": 0.0
        }
    return {
        "mean": statistics.fmean(values),
        "median": statistics.median(values),
        "min": min(values),
        "max": max(values),
        "stdev": statistics.stdev(values) if len(values) > 1 else 0.0,
    }
