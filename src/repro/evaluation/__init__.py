"""Measurement and reporting utilities for the Section 7 experiments.

* :mod:`~repro.evaluation.metrics` — relative solution-size error, overlap
  rate, per-post execution time, summary statistics;
* :mod:`~repro.evaluation.harness` — grid running, row collection, aligned
  text tables and CSV export shared by every experiment driver.
"""

from .harness import format_table, rows_to_csv, run_grid
from .metrics import (
    mean,
    per_post_time,
    relative_error,
    summary,
)

__all__ = [
    "relative_error",
    "per_post_time",
    "mean",
    "summary",
    "run_grid",
    "format_table",
    "rows_to_csv",
]
