"""Experiment harness: grid running, tables, CSV.

Every experiment driver in :mod:`repro.experiments` produces *rows* (lists
of dicts with scalar values); this module owns the shared mechanics so the
drivers stay declarative.
"""

from __future__ import annotations

import csv
import io
from typing import Callable, Dict, Iterable, List, Optional, Sequence

__all__ = ["run_grid", "format_table", "rows_to_csv"]

Row = Dict[str, object]


def run_grid(
    points: Iterable[object],
    runner: Callable[[object], List[Row]],
) -> List[Row]:
    """Run ``runner`` at every grid point and concatenate the row lists."""
    rows: List[Row] = []
    for point in points:
        rows.extend(runner(point))
    return rows


def _format_value(value: object) -> str:
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Row], columns: Optional[Sequence[str]] = None,
    title: str = "",
) -> str:
    """Render rows as an aligned text table (the benches print these).

    Column order defaults to first-appearance order across the rows, which
    keeps the output stable for drivers that emit uniform rows.
    """
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        seen: Dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)
    rendered = [
        [_format_value(row.get(col, "")) for col in columns] for row in rows
    ]
    widths = [
        max(len(col), *(len(line[idx]) for line in rendered))
        for idx, col in enumerate(columns)
    ]
    header = "  ".join(col.ljust(widths[idx])
                       for idx, col in enumerate(columns))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(line[idx].ljust(widths[idx])
                  for idx in range(len(columns)))
        for line in rendered
    ]
    lines = ([title] if title else []) + [header, separator] + body
    return "\n".join(lines)


def rows_to_csv(rows: Sequence[Row],
                columns: Optional[Sequence[str]] = None) -> str:
    """Serialise rows to CSV text (for piping results into plotting)."""
    if not rows:
        return ""
    if columns is None:
        seen: Dict[str, None] = {}
        for row in rows:
            for key in row:
                seen.setdefault(key, None)
        columns = list(seen)
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=list(columns),
                            extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return buffer.getvalue()
