"""repro — a full reproduction of *Multi-Query Diversification in
Microblogging Posts* (Cheng, Arvanitis, Chrobak, Hristidis; EDBT 2014).

The package implements the Multi-Query Diversification Problem (MQDP) and
its streaming variant end to end: the exact dynamic program, both
approximation families, the streaming adaptations, proportional diversity,
the NP-hardness reduction, and every substrate the paper's evaluation rests
on (inverted index, SimHash dedup, sentiment scoring, synthetic topic model
and tweet stream).

Quickstart::

    from repro import Instance, scan, greedy_sc, is_cover

    instance = Instance.from_specs(
        [(0, "a"), (30, "ab"), (65, "b"), (70, "ab"), (120, "a")], lam=40
    )
    solution = greedy_sc(instance)
    assert is_cover(instance, solution.posts)

See ``examples/quickstart.py`` for the guided tour and DESIGN.md for the
paper-to-module map.
"""

from .core import (
    CoverageModel,
    FixedLambda,
    Instance,
    InstantCover,
    Post,
    PostingList,
    ProportionalLambda,
    Solution,
    StreamGreedySC,
    StreamGreedySCPlus,
    OnlineDensityEstimator,
    StreamScan,
    StreamScanPlus,
    StreamScanProportional,
    VariableLambda,
    available_algorithms,
    brute_force,
    coverage_curve,
    exact_via_setcover,
    exact_variable,
    greedy_sc,
    greedy_sc_variable,
    is_cover,
    make_posts,
    max_coverage,
    opt,
    opt_size,
    optimal_size,
    register,
    scan,
    scan_plus,
    scan_variable,
    solve,
    unregister,
    stream_solve,
    uncovered_pairs,
    verify_cover,
)
from .errors import (
    AlgorithmBudgetExceeded,
    CheckpointError,
    EmissionInvariantError,
    IngestError,
    InvalidCoverError,
    InvalidInstanceError,
    LoaderError,
    ReproError,
    SanitizationError,
    ServiceOverloadError,
    StreamOrderError,
    UnknownAlgorithmError,
    WalCorruptionError,
)
from .stream import Emission, StreamResult, run_stream
from .resilience import (
    Checkpoint,
    CrashSchedule,
    DowngradeEvent,
    FaultInjector,
    KillPoint,
    QuarantineRecord,
    ResilienceConfig,
    SanitizationPolicy,
    StreamSupervisor,
    SupervisorHealth,
    run_supervised,
    solve_with_ladder,
)
from . import observability
from .engine import (
    make_parallel_solver,
    parallel_greedy_sc,
    parallel_scan,
    parallel_scan_plus,
)
from .ingest import (
    ConsumerGroup,
    IngestConfig,
    IngestPipeline,
    IngestTarget,
    WriteAheadLog,
)
from .pipeline import DigestResult, DiversificationPipeline
from .service import (
    DigestRequest,
    DiversificationService,
    ResultCache,
    ServiceConfig,
    ServiceResponse,
    Subscription,
)
from .viz import budget_bars, label_lanes, timeline

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # data model
    "Post",
    "make_posts",
    "Instance",
    "PostingList",
    "Solution",
    # coverage
    "CoverageModel",
    "FixedLambda",
    "VariableLambda",
    "is_cover",
    "uncovered_pairs",
    "verify_cover",
    # batch solvers
    "opt",
    "opt_size",
    "brute_force",
    "exact_via_setcover",
    "optimal_size",
    "greedy_sc",
    "scan",
    "scan_plus",
    "solve",
    "register",
    "unregister",
    "available_algorithms",
    "make_parallel_solver",
    "max_coverage",
    "coverage_curve",
    # sharded parallel engine
    "parallel_scan",
    "parallel_scan_plus",
    "parallel_greedy_sc",
    # streaming
    "StreamScan",
    "StreamScanPlus",
    "InstantCover",
    "StreamGreedySC",
    "StreamGreedySCPlus",
    "StreamScanProportional",
    "OnlineDensityEstimator",
    "stream_solve",
    "run_stream",
    "Emission",
    "StreamResult",
    # proportional diversity
    "ProportionalLambda",
    "scan_variable",
    "greedy_sc_variable",
    "exact_variable",
    # resilience
    "StreamSupervisor",
    "SupervisorHealth",
    "SanitizationPolicy",
    "QuarantineRecord",
    "ResilienceConfig",
    "Checkpoint",
    "CrashSchedule",
    "DowngradeEvent",
    "FaultInjector",
    "KillPoint",
    "run_supervised",
    "solve_with_ladder",
    # durable ingest
    "IngestPipeline",
    "IngestTarget",
    "IngestConfig",
    "ConsumerGroup",
    "WriteAheadLog",
    # errors
    "ReproError",
    "InvalidInstanceError",
    "InvalidCoverError",
    "AlgorithmBudgetExceeded",
    "StreamOrderError",
    "EmissionInvariantError",
    "SanitizationError",
    "CheckpointError",
    "IngestError",
    "WalCorruptionError",
    "LoaderError",
    "ServiceOverloadError",
    "UnknownAlgorithmError",
    # pipeline facade
    "DiversificationPipeline",
    "DigestResult",
    # serving layer
    "DiversificationService",
    "ServiceConfig",
    "DigestRequest",
    "ServiceResponse",
    "Subscription",
    "ResultCache",
    # observability (metrics, tracing, exporters, bench trajectories)
    "observability",
    # visualisation
    "timeline",
    "label_lanes",
    "budget_bars",
]
