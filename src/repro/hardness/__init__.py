"""NP-hardness machinery for MQDP (Section 3, Lemma 1).

The paper proves MQDP NP-hard — even with at most two labels per post — by a
polynomial reduction from CNF satisfiability.  This package makes the proof
executable:

* :mod:`~repro.hardness.cnf` — CNF formulas, evaluation, DIMACS I/O and
  random formula generation;
* :mod:`~repro.hardness.sat` — a DPLL satisfiability solver (unit
  propagation + pure-literal elimination), the independent oracle the
  reduction is validated against;
* :mod:`~repro.hardness.reduction` — the Lemma 1 construction mapping a
  formula to an MQDP instance and a cover budget ``n(2m+3)``, together with
  the certificate translations in both directions (assignment -> cover,
  cover -> assignment);
* :mod:`~repro.hardness.sound` — a **sound** replacement reduction.

Reproduction finding: Lemma 1's budget argument is incorrect as printed —
covers cheaper than ``n(2m+3)`` exist for unsatisfiable formulas (see the
counterexample pinned in ``tests/hardness/test_reduction.py``), because a
post at unit spacing covers three rail slots, not two.  The forward
direction (satisfiable => budget-sized cover) *does* hold and is tested;
the sound module restores the equivalence via the paper's own
"all posts at one timestamp = set cover" observation.
"""

from .cnf import CNFFormula, parse_dimacs, random_cnf, to_dimacs
from .reduction import (
    MQDPReduction,
    assignment_to_cover,
    cover_to_assignment,
    reduce_cnf_to_mqdp,
)
from .sat import dpll_satisfiable
from .sound import SoundReduction, reduce_cnf_sound, setcover_to_mqdp

__all__ = [
    "SoundReduction",
    "reduce_cnf_sound",
    "setcover_to_mqdp",
    "CNFFormula",
    "parse_dimacs",
    "to_dimacs",
    "random_cnf",
    "dpll_satisfiable",
    "MQDPReduction",
    "reduce_cnf_to_mqdp",
    "assignment_to_cover",
    "cover_to_assignment",
]
