"""CNF formulas: representation, evaluation, DIMACS I/O, random generation.

Literals follow the DIMACS convention: variable ``i`` (1-based) appears as
the integer ``i``, its negation as ``-i``.  A clause is a tuple of literals;
a formula is a conjunction of clauses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ReductionError

__all__ = ["CNFFormula", "parse_dimacs", "to_dimacs", "random_cnf"]


@dataclass(frozen=True)
class CNFFormula:
    """An immutable CNF formula ``C_1 and ... and C_m``."""

    num_vars: int
    clauses: Tuple[Tuple[int, ...], ...]

    def __post_init__(self) -> None:
        for clause in self.clauses:
            if not clause:
                raise ReductionError("empty clause makes the formula trivial")
            for literal in clause:
                var = abs(literal)
                if literal == 0 or var > self.num_vars:
                    raise ReductionError(
                        f"literal {literal} out of range for "
                        f"{self.num_vars} variables"
                    )

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def evaluate(self, assignment: Dict[int, bool]) -> bool:
        """True when ``assignment`` (var -> bool) satisfies every clause."""
        for clause in self.clauses:
            satisfied = False
            for literal in clause:
                value = assignment.get(abs(literal))
                if value is None:
                    continue
                if value == (literal > 0):
                    satisfied = True
                    break
            if not satisfied:
                return False
        return True

    def variables(self) -> List[int]:
        """The variables that actually occur, sorted."""
        present = {abs(literal) for clause in self.clauses
                   for literal in clause}
        return sorted(present)

    @classmethod
    def from_clauses(cls, clauses: Iterable[Sequence[int]],
                     num_vars: Optional[int] = None) -> "CNFFormula":
        """Build a formula, inferring ``num_vars`` when omitted."""
        tupled = tuple(tuple(clause) for clause in clauses)
        if num_vars is None:
            num_vars = max(
                (abs(lit) for clause in tupled for lit in clause), default=0
            )
        return cls(num_vars=num_vars, clauses=tupled)


def parse_dimacs(text: str) -> CNFFormula:
    """Parse the standard DIMACS CNF format.

    Comment lines (``c ...``) are skipped; the problem line
    (``p cnf <vars> <clauses>``) is honoured; clauses are
    zero-terminated integer sequences and may span lines.
    """
    num_vars = None
    declared_clauses = None
    clauses: List[Tuple[int, ...]] = []
    current: List[int] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise ReductionError(f"malformed problem line: {line!r}")
            num_vars = int(parts[2])
            declared_clauses = int(parts[3])
            continue
        for token in line.split():
            literal = int(token)
            if literal == 0:
                if current:
                    clauses.append(tuple(current))
                    current = []
            else:
                current.append(literal)
    if current:
        clauses.append(tuple(current))
    if num_vars is None:
        raise ReductionError("missing 'p cnf' problem line")
    if declared_clauses is not None and declared_clauses != len(clauses):
        raise ReductionError(
            f"problem line declares {declared_clauses} clauses, "
            f"found {len(clauses)}"
        )
    return CNFFormula(num_vars=num_vars, clauses=tuple(clauses))


def to_dimacs(formula: CNFFormula) -> str:
    """Serialise a formula to DIMACS CNF."""
    lines = [f"p cnf {formula.num_vars} {formula.num_clauses}"]
    for clause in formula.clauses:
        lines.append(" ".join(str(lit) for lit in clause) + " 0")
    return "\n".join(lines) + "\n"


def random_cnf(
    rng: random.Random, num_vars: int, num_clauses: int,
    clause_size: int = 3,
) -> CNFFormula:
    """A uniform random k-CNF formula (no tautological clauses).

    At ratio ``m/n ~ 4.26`` random 3-CNF sits at the satisfiability phase
    transition; tests use ratios on either side to exercise both outcomes.
    """
    if clause_size > num_vars:
        raise ReductionError("clause size cannot exceed variable count")
    clauses = []
    for _ in range(num_clauses):
        chosen = rng.sample(range(1, num_vars + 1), clause_size)
        clause = tuple(
            var if rng.random() < 0.5 else -var for var in chosen
        )
        clauses.append(clause)
    return CNFFormula(num_vars=num_vars, clauses=tuple(clauses))
