"""A sound CNF -> MQDP reduction (replacement for the flawed Lemma 1 gadget).

Reproduction finding
--------------------
The paper's Lemma 1 construction does **not** establish NP-hardness as
printed.  Its counting argument claims that covering a label rail of
``2m + 3`` posts at unit-spaced times with ``lambda = 1`` requires at least
``m + 1`` posts, the minimum being achieved only by the even-time fillers.
Both claims are false: a post covers *three* consecutive slots (itself and
one neighbour on each side), so ``ceil((2m+3)/3)`` posts suffice and the
minimising covers are far from unique.  Concretely, for the unsatisfiable
formula ``x1 and not-x1 and not-x1`` (``n = 1``, ``m = 3``) the instance
admits an 8-post cover — under the budget ``n(2m+3) = 9`` — so the decision
procedure would wrongly report "satisfiable".
``tests/hardness/test_reduction.py`` pins this counterexample.

The repair implemented here uses the paper's *own* Section 3 observation:
when every post carries the same timestamp, MQDP **is** set cover.  We chain
the textbook reduction

    CNF -SAT  ->  SET COVER  ->  single-timestamp MQDP

* elements: one per variable (``x_i``) and one per clause (``C_j``);
* sets: one per literal — the positive literal's set is
  ``{x_i} + {C_j : x_i in C_j}``, the negative literal's mirrors it;
* a cover of at most ``n`` sets exists iff the formula is satisfiable
  (one literal per variable must be chosen, and every clause element forces
  a true literal).

Unlike Lemma 1's gadget this does not bound the labels per post (a post
carries one label per occurrence of its literal, plus one), but it is
correct, certificate-preserving in both directions, and NP-hardness of
MQDP follows.  Both reductions ship: the faithful gadget in
:mod:`repro.hardness.reduction` (still useful for its forward direction and
as a documented negative result) and this sound one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

from ..core.instance import Instance
from ..core.post import Post
from ..errors import ReductionError
from .cnf import CNFFormula

__all__ = ["SoundReduction", "reduce_cnf_sound", "setcover_to_mqdp"]


@dataclass(frozen=True)
class SoundReduction:
    """Output of the sound reduction.

    ``uid_to_literal`` maps each post to the DIMACS literal whose set it
    represents; the formula is satisfiable iff ``instance`` has a cover of
    at most ``budget`` posts.
    """

    formula: CNFFormula
    instance: Instance
    budget: int
    uid_to_literal: Dict[int, int]

    def decode(self, cover: Iterable[Post]) -> Dict[int, bool]:
        """Translate a budget-respecting cover into a satisfying assignment.

        For each variable, the selected literal-post fixes its value; a
        variable with no selected literal (possible when the cover is below
        budget) is unconstrained and defaults to False.
        """
        assignment = {
            var: False for var in range(1, self.formula.num_vars + 1)
        }
        for post in cover:
            literal = self.uid_to_literal[post.uid]
            assignment[abs(literal)] = literal > 0
        return assignment

    def encode(self, assignment: Dict[int, bool]) -> List[Post]:
        """Translate a satisfying assignment into a budget-sized cover."""
        if not self.formula.evaluate(assignment):
            raise ReductionError("assignment does not satisfy the formula")
        wanted = {
            (var if assignment.get(var, False) else -var)
            for var in range(1, self.formula.num_vars + 1)
        }
        return [
            self.instance.post(uid)
            for uid, literal in self.uid_to_literal.items()
            if literal in wanted
        ]


def setcover_to_mqdp(
    family: Iterable[Iterable[str]], lam: float = 1.0
) -> Instance:
    """Embed a set-cover family as a single-timestamp MQDP instance.

    Every set becomes a post at time 0 labelled with its elements; since all
    posts coincide, a subset of posts lambda-covers the instance exactly
    when the corresponding sets cover the union — the Section 3 observation.
    """
    posts = [
        Post(uid=idx, value=0.0, labels=frozenset(s))
        for idx, s in enumerate(family)
    ]
    if any(not post.labels for post in posts):
        raise ReductionError("empty set in the family")
    return Instance(posts, lam=lam)


def reduce_cnf_sound(formula: CNFFormula) -> SoundReduction:
    """CNF -> set cover -> MQDP, satisfiable iff cover of size <= n exists."""
    n = formula.num_vars
    if n == 0:
        raise ReductionError("formula has no variables")
    literals: List[int] = []
    family: List[frozenset] = []
    for var in range(1, n + 1):
        for sign in (1, -1):
            literal = sign * var
            elements = {f"x{var}"}
            for j, clause in enumerate(formula.clauses, start=1):
                if literal in clause:
                    elements.add(f"C{j}")
            literals.append(literal)
            family.append(frozenset(elements))
    instance = setcover_to_mqdp(family)
    uid_to_literal = {uid: literals[uid] for uid in range(len(literals))}
    return SoundReduction(
        formula=formula,
        instance=instance,
        budget=n,
        uid_to_literal=uid_to_literal,
    )
