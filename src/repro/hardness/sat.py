"""A DPLL satisfiability solver.

Serves as the independent oracle for validating the CNF-to-MQDP reduction:
the reduction's verdict (via an exact MQDP solver) must agree with DPLL on
every formula.  Plain recursive DPLL with unit propagation, pure-literal
elimination, and most-frequent-variable branching — entirely adequate for
the formula sizes the exact MQDP solvers can keep up with.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, List, Optional, Tuple

from .cnf import CNFFormula

__all__ = ["dpll_satisfiable"]

Clause = Tuple[int, ...]


def _simplify(clauses: List[Clause], literal: int) -> Optional[List[Clause]]:
    """Assign ``literal`` true; return simplified clauses or None on conflict."""
    result: List[Clause] = []
    for clause in clauses:
        if literal in clause:
            continue  # clause satisfied
        if -literal in clause:
            reduced = tuple(lit for lit in clause if lit != -literal)
            if not reduced:
                return None  # empty clause: conflict
            result.append(reduced)
        else:
            result.append(clause)
    return result


def _dpll(clauses: List[Clause],
          assignment: Dict[int, bool]) -> Optional[Dict[int, bool]]:
    # Unit propagation.
    while True:
        unit = next((c[0] for c in clauses if len(c) == 1), None)
        if unit is None:
            break
        assignment[abs(unit)] = unit > 0
        clauses = _simplify(clauses, unit)
        if clauses is None:
            return None

    # Pure-literal elimination.
    literals = {lit for clause in clauses for lit in clause}
    pures = [lit for lit in literals if -lit not in literals]
    for pure in pures:
        if abs(pure) not in assignment:
            assignment[abs(pure)] = pure > 0
            clauses = _simplify(clauses, pure)
            if clauses is None:  # pragma: no cover - pure cannot conflict
                return None

    if not clauses:
        return assignment

    counts = Counter(abs(lit) for clause in clauses for lit in clause)
    variable = counts.most_common(1)[0][0]
    for value in (True, False):
        literal = variable if value else -variable
        simplified = _simplify(clauses, literal)
        if simplified is None:
            continue
        attempt = dict(assignment)
        attempt[variable] = value
        found = _dpll(simplified, attempt)
        if found is not None:
            return found
    return None


def dpll_satisfiable(formula: CNFFormula) -> Optional[Dict[int, bool]]:
    """Return a satisfying assignment, or None when unsatisfiable.

    Variables absent from the returned assignment are unconstrained; the
    caller may fix them arbitrarily.  The reduction tests complete them
    with False.
    """
    result = _dpll(list(formula.clauses), {})
    if result is None:
        return None
    for var in range(1, formula.num_vars + 1):
        result.setdefault(var, False)
    return result
