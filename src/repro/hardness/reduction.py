"""The Lemma 1 reduction: CNF satisfiability -> MQDP.

Given a CNF formula with ``n`` variables and ``m`` clauses, the construction
builds an MQDP instance with ``lambda = 1``, labels
``{u_i, v_i, w_i}_{i<=n} + {c_j}_{j<=m}`` (``v_i`` encodes the paper's
``u-bar``), and the following posts for every variable ``x_i``:

* anchors ``(1, {u_i, w_i})``, ``(1, {v_i, w_i})`` and the mirrored pair at
  time ``2m + 3``;
* fillers ``(2j, {u_i})``, ``(2j, {v_i})`` for ``j = 1..m+1``;
* clause posts ``(2j+1, U_ij)`` and ``(2j+1, V_ij)`` for ``j = 1..m``,
  where ``U_ij`` gains label ``c_j`` when ``x_i`` occurs positively in
  clause ``C_j`` and ``V_ij`` gains it when ``x_i`` occurs negated.

Lemma 1 claims the formula is satisfiable **iff** the instance admits a
1-cover of at most ``n(2m + 3)`` posts.  **Reproduction finding: only the
forward direction holds.**  The proof's counting argument assumes covering
a rail of ``2m + 3`` unit-spaced same-label posts needs at least ``m + 1``
selections, achieved only by the even fillers; in fact a selection covers
*three* consecutive slots, so ``ceil((2m+3)/3)`` suffice and phase-mixed
covers beat the budget — e.g. the unsatisfiable ``x1 and not-x1 and
not-x1`` (``n=1, m=3``) admits an 8-post cover against the budget of 9.
The construction is kept faithfully for study (its forward certificate
:func:`assignment_to_cover` is correct and tested); use
:mod:`repro.hardness.sound` for a reduction whose equivalence actually
holds.

Every post carries at most two labels — the stronger form of hardness the
paper emphasises, since realistic microblogging posts match few queries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..core.instance import Instance
from ..core.post import Post
from ..errors import ReductionError
from .cnf import CNFFormula

__all__ = [
    "MQDPReduction",
    "reduce_cnf_to_mqdp",
    "assignment_to_cover",
    "cover_to_assignment",
]

# Post roles, keyed structurally so certificates can be translated.
# ("anchor", i, side, t) / ("filler", i, side, j) / ("clause", i, side, j)
Role = Tuple


def _u(i: int) -> str:
    return f"u{i}"


def _v(i: int) -> str:
    return f"v{i}"


def _w(i: int) -> str:
    return f"w{i}"


def _c(j: int) -> str:
    return f"c{j}"


@dataclass(frozen=True)
class MQDPReduction:
    """The reduction output: instance, budget, and the role maps."""

    formula: CNFFormula
    instance: Instance
    budget: int
    role_to_uid: Dict[Role, int]
    uid_to_role: Dict[int, Role]

    def post_for(self, role: Role) -> Post:
        """The instance post playing a structural role."""
        return self.instance.post(self.role_to_uid[role])


def reduce_cnf_to_mqdp(formula: CNFFormula) -> MQDPReduction:
    """Build the Lemma 1 instance for ``formula`` (lambda = 1)."""
    n = formula.num_vars
    m = formula.num_clauses
    if n == 0:
        raise ReductionError("formula has no variables")
    top = 2 * m + 3

    positive: Dict[Tuple[int, int], bool] = {}
    negative: Dict[Tuple[int, int], bool] = {}
    for j, clause in enumerate(formula.clauses, start=1):
        for literal in clause:
            if literal > 0:
                positive[(literal, j)] = True
            else:
                negative[(-literal, j)] = True

    posts: List[Post] = []
    role_to_uid: Dict[Role, int] = {}

    def add(role: Role, time: int, labels: Iterable[str]) -> None:
        uid = len(posts)
        role_to_uid[role] = uid
        posts.append(Post(uid=uid, value=float(time),
                          labels=frozenset(labels)))

    for i in range(1, n + 1):
        add(("anchor", i, "u", 1), 1, {_u(i), _w(i)})
        add(("anchor", i, "v", 1), 1, {_v(i), _w(i)})
        add(("anchor", i, "u", top), top, {_u(i), _w(i)})
        add(("anchor", i, "v", top), top, {_v(i), _w(i)})
        for j in range(1, m + 2):
            add(("filler", i, "u", j), 2 * j, {_u(i)})
            add(("filler", i, "v", j), 2 * j, {_v(i)})
        for j in range(1, m + 1):
            u_labels = {_u(i), _c(j)} if (i, j) in positive else {_u(i)}
            v_labels = {_v(i), _c(j)} if (i, j) in negative else {_v(i)}
            add(("clause", i, "u", j), 2 * j + 1, u_labels)
            add(("clause", i, "v", j), 2 * j + 1, v_labels)

    labels = (
        {_u(i) for i in range(1, n + 1)}
        | {_v(i) for i in range(1, n + 1)}
        | {_w(i) for i in range(1, n + 1)}
        | {_c(j) for j in range(1, m + 1)}
    )
    instance = Instance(posts, lam=1.0, labels=labels)
    uid_to_role = {uid: role for role, uid in role_to_uid.items()}
    return MQDPReduction(
        formula=formula,
        instance=instance,
        budget=n * (2 * m + 3),
        role_to_uid=role_to_uid,
        uid_to_role=uid_to_role,
    )


def assignment_to_cover(
    reduction: MQDPReduction, assignment: Dict[int, bool]
) -> List[Post]:
    """The forward certificate: a satisfying assignment yields a cover of
    exactly ``n(2m+3)`` posts (the ``=>`` direction of Lemma 1)."""
    formula = reduction.formula
    if not formula.evaluate(assignment):
        raise ReductionError("assignment does not satisfy the formula")
    n, m = formula.num_vars, formula.num_clauses
    top = 2 * m + 3
    cover: List[Post] = []
    for i in range(1, n + 1):
        # `side` carries the chosen literal's clause posts and anchors;
        # `other` supplies the even fillers that cover the opposite rail.
        side, other = ("u", "v") if assignment.get(i, False) else ("v", "u")
        cover.append(reduction.post_for(("anchor", i, side, 1)))
        cover.append(reduction.post_for(("anchor", i, side, top)))
        for j in range(1, m + 1):
            cover.append(reduction.post_for(("clause", i, side, j)))
        for j in range(1, m + 2):
            cover.append(reduction.post_for(("filler", i, other, j)))
    return cover


def cover_to_assignment(
    reduction: MQDPReduction, cover: Iterable[Post]
) -> Dict[int, bool]:
    """The backward certificate: decode a budget-respecting cover.

    Follows the ``<=`` direction of the Lemma 1 proof: within the budget
    each variable's gadget admits only two shapes, distinguished by which
    time-1 anchor was selected.
    """
    uids = {post.uid for post in cover}
    formula = reduction.formula
    assignment: Dict[int, bool] = {}
    for i in range(1, formula.num_vars + 1):
        u_anchor = reduction.role_to_uid[("anchor", i, "u", 1)]
        v_anchor = reduction.role_to_uid[("anchor", i, "v", 1)]
        has_u = u_anchor in uids
        has_v = v_anchor in uids
        if has_u == has_v:
            # Non-canonical covers (both or neither anchor): fall back to
            # counting which rail's clause posts dominate.
            u_count = sum(
                1
                for j in range(1, formula.num_clauses + 1)
                if reduction.role_to_uid[("clause", i, "u", j)] in uids
            )
            v_count = sum(
                1
                for j in range(1, formula.num_clauses + 1)
                if reduction.role_to_uid[("clause", i, "v", j)] in uids
            )
            assignment[i] = u_count >= v_count
        else:
            assignment[i] = has_u
    return assignment
