"""Spatiotemporal diversification: tracking a storm across the map.

The paper's conclusions name the spatiotemporal extension as future work:
"the selected posts need to cover both the time and geospatial dimension".
This example exercises the :mod:`repro.multidim` implementation of it.

A hurricane moves along the coast; reports stream in, clustered around the
eye's position at each hour.  Time-only diversification keeps one report
per hour — losing where things happened; the spatiotemporal cover keeps a
representative per (hour x region) box, so the digest shows the storm's
*track*.

Run with::

    python examples/storm_tracker.py
"""

import random

from repro.multidim import MultiInstance, MultiPost, exact_box, greedy_box


def synthesize_reports(rng: random.Random) -> list:
    """Reports around a storm eye moving 1 degree of longitude per hour."""
    reports = []
    uid = 0
    for hour in range(12):
        eye_longitude = -90.0 + hour  # moving east
        for _ in range(rng.randint(4, 8)):
            reports.append(
                MultiPost(
                    uid=uid,
                    values=(
                        hour * 3600.0 + rng.uniform(0, 3600.0),
                        eye_longitude + rng.gauss(0.0, 0.4),
                    ),
                    labels=frozenset({"hurricane"}),
                )
            )
            uid += 1
        # scattered inland damage reports away from the eye
        if rng.random() < 0.5:
            reports.append(
                MultiPost(
                    uid=uid,
                    values=(
                        hour * 3600.0 + rng.uniform(0, 3600.0),
                        eye_longitude - rng.uniform(3.0, 6.0),
                    ),
                    labels=frozenset({"hurricane"}),
                )
            )
            uid += 1
    return reports


def main() -> None:
    rng = random.Random(5)
    reports = synthesize_reports(rng)
    print(f"{len(reports)} storm reports over 12 hours")
    print()

    # Time-only view: one representative per 2h, wherever it happened.
    time_only = MultiInstance(reports, radii=(7200.0, 360.0))
    flat = greedy_box(time_only)
    print(f"time-only cover (lam_t=2h): {flat.size} posts")

    # Spatiotemporal: a representative per 2h x 1.5-degree box.
    spatiotemporal = MultiInstance(reports, radii=(7200.0, 1.5))
    track = greedy_box(spatiotemporal)
    assert spatiotemporal.is_cover(track.posts)
    optimum = exact_box(spatiotemporal)
    print(
        f"spatiotemporal cover (lam_t=2h, lam_geo=1.5deg): "
        f"{track.size} posts (optimum {optimum.size})"
    )
    print()

    print("the storm track, as the digest shows it:")
    print(f"{'hour':>6} {'longitude':>10}")
    for post in track.posts:
        hour = post.values[0] / 3600.0
        print(f"{hour:>6.1f} {post.values[1]:>10.2f}")
    print()
    print(
        "note the inland outliers the time-only view would have collapsed "
        "into the nearest-in-time eye report"
    )


if __name__ == "__main__":
    main()
