"""Tracing one digest request through the serving stack.

An operator's question — "why was *this* response slow, and who solved
it?" — answered with the observability layer: serve a handful of
requests (cold, cache hit, coalesced pair), then assemble each
response's span tree, follow the link-spans to the trace that actually
did the solving, and read the per-tenant SLO and audit state off
``service.introspect()``.

Run with::

    python examples/trace_a_request.py
"""

import asyncio

from repro import observability
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.service import DigestRequest, DiversificationService, ServiceConfig

TOPICS = [
    TopicQuery("golf", ["golf", "putt"]),
    TopicQuery("nba", ["nba", "dunk"]),
    TopicQuery("tech", ["cpu", "kernel"]),
]
TEXTS = ("golf putt", "nba dunk", "cpu kernel")


def make_docs(n: int = 24):
    return [
        Document(i, i * 10.0, f"{TEXTS[i % 3]} update{i} token{i * 7}")
        for i in range(n)
    ]


def print_tree(node, depth: int = 0) -> None:
    """One assembled span, indented by nesting depth."""
    duration = node["ended"] - node["started"]
    print(f"  {'  ' * depth}{node['name']}  ({duration * 1e3:.2f} ms)")
    for child in node["children"]:
        print_tree(child, depth + 1)
    linked = node.get("linked")
    if linked:
        print(f"  {'  ' * (depth + 1)}--> linked trace "
              f"{linked['trace_id'][:8]} ({linked['spans']} spans)")


async def serve(service):
    cold = await service.digest(
        DigestRequest(lam=25.0, session="alice"))
    hit = await service.digest(
        DigestRequest(lam=25.0, session="bob"))
    pair = await asyncio.gather(
        service.digest(DigestRequest(lam=40.0, session="carol")),
        service.digest(DigestRequest(lam=40.0, session="dave")),
    )
    return cold, hit, pair


def main() -> None:
    with observability.session() as bundle:
        service = DiversificationService(
            TOPICS,
            ServiceConfig(dedup_distance=None, coalesce_window=0.02,
                          audit_sample=1.0),
        )
        service.ingest(make_docs())
        cold, hit, (a, b) = asyncio.run(serve(service))

        # -- the cold request: its own trace did the solving ----------
        tree = bundle.tracer.assemble(cold.trace_id)
        print(f"assembled trace {cold.trace_id[:8]} "
              f"(alice, cold): {tree['spans']} spans")
        for root in tree["roots"]:
            print_tree(root)
        print()

        # -- the cache hit: a link-span names the producing trace -----
        assert hit.cached and hit.result.trace_id == cold.trace_id
        tree = bundle.tracer.assemble(hit.trace_id)
        print(f"assembled trace {hit.trace_id[:8]} (bob, cache hit) "
              f"links back to {hit.result.trace_id[:8]}:")
        for root in tree["roots"]:
            print_tree(root)
        print()

        # -- the coalesced pair: one solve, two traces -----------------
        follower = a if a.coalesced else b
        leader = b if a.coalesced else a
        print(f"coalesced pair: leader {leader.trace_id[:8]} solved; "
              f"follower {follower.trace_id[:8]} awaited it "
              f"(service.solves = {service.solves})")
        print()

        # -- per-tenant SLO and audit state off introspect() -----------
        service.auditor.audit_pending()
        snap = service.introspect()
        print("per-tenant SLO snapshot:")
        for record in snap["slo"]:
            latency = record["latency"]
            print(
                f"  {record['tenant']:>6} / {record['algorithm']}: "
                f"p95 = {latency['p95'] * 1e3:.2f} ms, burn = "
                f"{record['burn']['fast']['burn_rate']:.2f}, budget = "
                f"{record['error_budget_remaining']:.2f}"
            )
        audit = snap["auditor"]
        print(
            f"audit: {audit['audited']} digests re-verified, "
            f"pass rate {audit['pass_rate']:.2f}, "
            f"violations {audit['coverage_violations']}"
        )


if __name__ == "__main__":
    main()
