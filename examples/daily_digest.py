"""A budgeted daily digest: "show me the day in at most k posts".

MQDP minimises the digest size for *full* coverage; a product usually
fixes the budget instead.  This example uses the budgeted variant
(greedy maximum coverage, 1 - 1/e guarantee) plus the terminal
visualisation helpers to pick a sensible budget:

1. build a day of labelled posts (scaled Table 2 rates, bursty arrivals);
2. plot the coverage-vs-budget curve and the full-coverage baseline;
3. render the chosen digest on a per-label lane view.

Run with::

    python examples/daily_digest.py
"""

import random

from repro import (
    Instance,
    budget_bars,
    coverage_curve,
    greedy_sc,
    label_lanes,
    max_coverage,
    timeline,
)
from repro.datagen import day_workload


def main() -> None:
    rng = random.Random(11)
    instance = day_workload(
        rng, num_labels=4, lam=1800.0, scale=0.004, duration=43_200.0
    )
    print(
        f"half a day of posts: {len(instance)} posts, "
        f"{len(instance.labels)} topics, lambda = 30min"
    )
    print()

    full = greedy_sc(instance)
    print(f"full coverage needs {full.size} posts (GreedySC)")
    print()

    curve = coverage_curve(instance, max_k=full.size)
    print("coverage vs budget:")
    print(budget_bars(curve, max_rows=12))
    print()

    # Pick the knee: the smallest budget reaching 90% pair coverage.
    knee = next(k for k, fraction in curve if fraction >= 0.9)
    digest, fraction = max_coverage(instance, knee)
    print(
        f"budget {knee} covers {fraction * 100:.1f}% of all "
        f"(post, label) pairs — "
        f"{full.size - digest.size} posts cheaper than full coverage"
    )
    print()

    print("the day at a glance ('#' = digest posts):")
    print(timeline(instance, selected=digest.posts))
    print()
    print("per topic:")
    print(label_lanes(instance, selected=digest.posts))


if __name__ == "__main__":
    main()
