"""Sentiment as the diversity dimension, with proportional diversity.

The paper's second flagship dimension: instead of spreading representatives
over *time*, spread them over *sentiment polarity* — e.g. a brand monitor
wants to see the full spectrum of reactions, not fifty variations of the
same complaint.  Section 6's variable lambda then makes the selection
*proportional*: if reactions skew negative, show more negative posts while
keeping at least one voice from the positive tail.

Run with::

    python examples/sentiment_timeline.py
"""

import random

from repro import (
    Instance,
    Post,
    ProportionalLambda,
    scan,
    scan_variable,
    verify_cover,
)
from repro.text.sentiment import sentiment_score

# Reactions to a (bad) earnings report: a dense, varied negative cluster
# and a sparse positive tail — the distribution Section 6 motivates.
REACTIONS = [
    ("earnings", "extremely terrible awful disaster crash numbers"),
    ("earnings", "so bad concern growth worry"),
    ("earnings", "really bad disappointing weak results"),
    ("earnings", "terrible awful crash miss"),
    ("earnings", "awful horrible numbers"),
    ("earnings", "bad miss this quarter"),
    ("earnings", "mixed results concern and hope"),
    ("earnings", "decent but unexciting cash flow"),
    ("earnings", "good cost control quietly solid"),
    ("earnings", "extremely great amazing buying opportunity love it"),
    ("guidance", "absolutely horrible worst collapse painful outlook"),
    ("guidance", "very bad terrible guidance miss"),
    ("guidance", "so bad demand worry fear"),
    ("guidance", "awful horrible roadmap"),
    ("guidance", "weak but stable not a disaster"),
    ("guidance", "very good pipeline promising roadmap"),
]


def main() -> None:
    posts = [
        Post(
            uid=i,
            value=sentiment_score(text),
            labels=frozenset({label}),
            text=text,
        )
        for i, (label, text) in enumerate(REACTIONS)
    ]
    instance = Instance(posts, lam=0.25)

    print("sentiment spectrum of the reactions:")
    for post in instance.posts:
        bar = "#" * int((post.value + 1) * 12)
        print(f"  {post.value:+.2f} {bar:<26} {post.text[:44]}")
    print()

    # -- fixed lambda: evenly spread representatives -------------------------
    fixed = scan(instance)
    verify_cover(instance, fixed.posts)
    print(f"fixed lambda=0.25 selects {fixed.size} posts:")
    for post in fixed.posts:
        print(f"  {post.value:+.2f} {post.text[:52]}")
    print()

    # -- proportional (variable) lambda: density-weighted --------------------
    model = ProportionalLambda(instance, lam0=0.25)
    proportional = scan_variable(instance, model)
    verify_cover(instance, proportional.posts, model)
    print(
        f"proportional lambda selects {proportional.size} posts "
        "(more where opinion concentrates):"
    )
    for post in proportional.posts:
        radius = min(
            model.radius(post, label) for label in post.labels
        )
        print(
            f"  {post.value:+.2f} (radius {radius:.2f}) {post.text[:52]}"
        )

    negative = sum(1 for p in proportional.posts if p.value < 0)
    positive = proportional.size - negative
    print()
    print(
        f"proportional split: {negative} negative vs {positive} "
        "non-negative representatives — tracking the skew of the input "
        "while keeping the positive tail visible"
    )


if __name__ == "__main__":
    main()
