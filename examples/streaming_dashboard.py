"""StreamMQDP: a live market-monitoring dashboard.

The investor scenario from the paper's introduction: subscribe to ticker
topics ('GOOG', 'MSFT', 'NASDAQ'); posts stream in; the dashboard must show
a deduplicated, diverse sub-stream — and every shown post must appear
within tau seconds of publication, or it is stale news.

This example drives all five streaming algorithms over one synthetic
trading hour, audits the delay guarantee, and prints the size/delay
trade-off that Section 5 analyses (small tau -> instant but larger output;
tau >= lambda -> batch-Scan quality).

Run with::

    python examples/streaming_dashboard.py
"""

import random

from repro import Instance, is_cover, optimal_size, stream_solve
from repro.datagen.arrivals import bursty_times
from repro.datagen.workload import labelled_posts

ALGORITHMS = (
    "instant",
    "stream_scan",
    "stream_scan+",
    "stream_greedy_sc",
    "stream_greedy_sc+",
)

TICKERS = ["GOOG", "MSFT", "NASDAQ"]


def build_stream(seed: int) -> Instance:
    """One synthetic trading hour: bursty posts tagged with tickers."""
    rng = random.Random(seed)
    times, _ = bursty_times(
        rng, base_rate=0.15, start=0.0, end=3600.0,
        n_bursts=2, burst_rate=0.6, burst_decay=300.0,
    )
    posts = labelled_posts(rng, TICKERS, times, overlap=1.4)
    return Instance(posts, lam=300.0, labels=TICKERS)


def main() -> None:
    instance = build_stream(seed=7)
    lam = instance.lam
    print(
        f"stream: {len(instance)} posts over 1h, "
        f"tickers {TICKERS}, lambda = {lam:.0f}s"
    )
    reference = optimal_size(instance)
    print(f"offline optimum for the hour: {reference} posts")
    print()

    print(f"{'algorithm':>20} {'tau':>6} {'shown':>6} "
          f"{'error':>6} {'max delay':>10}")
    for tau in (0.0, 60.0, 150.0, 300.0, 450.0):
        for name in ALGORITHMS:
            result = stream_solve(name, instance, tau=tau)
            assert is_cover(instance, result.to_solution().posts)
            bound = max(tau, lam) + 1e-9
            assert result.max_delay() <= bound, (name, tau)
            error = (result.size - reference) / reference
            print(
                f"{name:>20} {tau:>6.0f} {result.size:>6} "
                f"{error:>6.2f} {result.max_delay():>9.1f}s"
            )
        print()

    # The Section 5.1 equivalence, demonstrated live: with tau >= lambda
    # StreamScan's output is exactly batch Scan's.
    from repro import scan

    batch = scan(instance)
    streamed = stream_solve("stream_scan", instance, tau=lam + 1.0)
    assert set(streamed.to_solution().uids) == set(batch.uids)
    print(
        "check: StreamScan with tau >= lambda emits exactly the batch "
        f"Scan cover ({batch.size} posts) — Section 5.1's equivalence"
    )


if __name__ == "__main__":
    main()
