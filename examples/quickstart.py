"""Quickstart: the MQDP public API in five minutes.

Builds a small hand-made instance (the paper's Figure 2 example extended a
little), runs every solver, verifies the covers and prints a comparison.

Run with::

    python examples/quickstart.py
"""

from repro import (
    Instance,
    available_algorithms,
    is_cover,
    opt,
    solve,
    stream_solve,
    verify_cover,
)


def main() -> None:
    # An instance is a list of (value-on-diversity-dimension, labels)
    # pairs plus the lambda threshold.  Values here are minutes; labels
    # are the user's subscribed queries.
    instance = Instance.from_specs(
        [
            (0.0, {"obama"}),
            (1.0, {"obama"}),
            (2.0, {"obama", "economy"}),
            (3.0, {"economy"}),
            (7.0, {"obama"}),
            (7.5, {"economy"}),
            (8.0, {"obama", "economy"}),
            (15.0, {"obama"}),
        ],
        lam=1.5,
    )
    print(f"instance: {instance}")
    print(f"overlap rate: {instance.overlap_rate():.2f}")
    print()

    # The exact optimum (feasible here: tiny instance, 2 labels).
    optimum = opt(instance)
    verify_cover(instance, optimum.posts)  # raises if not a cover
    print(f"OPT selects {optimum.size} posts: uids {optimum.uids}")
    print()

    # Every registered batch algorithm, via the registry.
    print(f"{'algorithm':>16}  size  error   selected uids")
    for name in available_algorithms():
        solution = solve(name, instance)
        assert is_cover(instance, solution.posts)
        error = solution.relative_error(optimum.size)
        print(
            f"{name:>16}  {solution.size:>4}  {error:>5.2f}   "
            f"{solution.uids}"
        )
    print()

    # The streaming variant: posts arrive over time, each output must be
    # reported within tau of its publication.
    for name in ("stream_scan", "stream_greedy_sc", "instant"):
        result = stream_solve(name, instance, tau=1.0)
        assert is_cover(instance, result.to_solution().posts)
        print(
            f"{name:>18}: {result.size} posts, "
            f"max delay {result.max_delay():.2f} min"
        )


if __name__ == "__main__":
    main()
