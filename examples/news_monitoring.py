"""News monitoring: the journalist scenario from the paper's introduction.

A journalist follows a handful of politics topics.  This example runs the
full pipeline of Figure 1's *index path*:

1. train the (synthetic) topic model and build a user profile;
2. synthesize a morning of tweets and index them (our Lucene stand-in);
3. drop near-duplicates with SimHash;
4. search the index with the profile's keywords and label the hits;
5. diversify over the time dimension with GreedySC, and show the digest.

Run with::

    python examples/news_monitoring.py
"""

import random

from repro import Instance, greedy_sc, scan, verify_cover
from repro.datagen.arrivals import bursty_times
from repro.datagen.tweets import TweetGenerator
from repro.index import InvertedIndex, LabelMatcher, SimHashIndex
from repro.topics import SyntheticTopicModel, discard_ambiguous, make_label_set


def main() -> None:
    rng = random.Random(2014)

    # -- 1. topics and the journalist's profile -----------------------------
    model = discard_ambiguous(rng, SyntheticTopicModel.train(rng))
    profile = make_label_set(rng, model, size=3)
    print("profile topics:")
    for topic in profile:
        print(f"  {topic.label}: {' '.join(topic.top_keywords(6))} ...")
    print()

    # -- 2. a bursty morning of tweets, indexed ------------------------------
    MORNING = 2 * 3600.0  # two hours, in seconds
    times, burst_epochs = bursty_times(
        rng, base_rate=1.0, start=0.0, end=MORNING, n_bursts=3
    )
    generator = TweetGenerator(model, rng, duplicate_prob=0.08)
    documents = generator.generate(times)
    print(
        f"generated {len(documents)} tweets over 2h "
        f"(news bursts at {[f'{e / 60:.0f}min' for e in burst_epochs]})"
    )

    # -- 3. near-duplicate elimination (SimHash, as in the paper) ------------
    # distance 3 over 64 bits is the classic web-dedup setting [17];
    # larger budgets shrink the bands and explode candidate fan-out.
    dedup = SimHashIndex(max_distance=3)
    kept_ids, dropped = dedup.deduplicate(
        (doc.doc_id, doc.text) for doc in documents
    )
    kept = set(kept_ids)
    documents = [doc for doc in documents if doc.doc_id in kept]
    print(f"SimHash dropped {len(dropped)} near-duplicates")

    index = InvertedIndex()
    for doc in documents:
        index.add(doc.doc_id, doc.timestamp, doc.text)

    # -- 4. search the index with the profile ---------------------------------
    matcher = LabelMatcher(profile)
    posts = matcher.search_posts(index)
    if not posts:
        raise SystemExit("no tweets matched the profile; reseed")
    print(f"{len(posts)} tweets match the profile "
          f"({len(posts) / (MORNING / 60):.1f}/min)")
    print()

    # -- 5. diversify: one representative per 10 minutes per topic ------------
    instance = Instance(posts, lam=600.0, labels=matcher.labels)
    digest = greedy_sc(instance)
    verify_cover(instance, digest.posts)
    baseline = scan(instance)
    print(
        f"digest: {digest.size} posts cover all {len(posts)} "
        f"(Scan would need {baseline.size})"
    )
    print()
    print("the digest, as the journalist would see it:")
    for post in digest.posts:
        stamp = f"{post.value / 60:6.1f}min"
        labels = ",".join(sorted(post.labels))
        print(f"  [{stamp}] ({labels}) {post.text[:64]}")


if __name__ == "__main__":
    main()
