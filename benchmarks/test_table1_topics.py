"""Table 1 — example topics with their highest-weight keywords.

Paper artifact: two Sports and two Politics topics, each shown as its
top keywords.  Ours regenerates the same table from the synthetic topic
model; the shape to hold is structural — topics grouped under their broad
topic, keyword lists dominated by that broad topic's vocabulary.
"""

from repro.experiments import table1_topics
from repro.text.vocab import BROAD_TOPICS

from .conftest import report


def test_table1_topics(benchmark):
    rows = benchmark.pedantic(
        lambda: table1_topics.run(seed=0),
        rounds=1, iterations=1,
    )
    report(rows, table1_topics.DESCRIPTION)

    assert len(rows) == 4
    assert [r["broad_topic"] for r in rows] == [
        "sports", "sports", "politics", "politics"
    ]
    # keywords must be rooted in the right broad vocabulary: every shown
    # keyword is a pool word or a compound of pool words of its broad topic
    for row in rows:
        pool = BROAD_TOPICS[row["broad_topic"]]
        for keyword in row["keywords"].split():
            rooted = keyword in pool or any(
                keyword.startswith(word) and keyword != word
                for word in pool
            )
            assert rooted, (row["broad_topic"], keyword)
