"""Figure 12 — streaming solution sizes on a (scaled) day of posts vs |L|.

Paper shapes: outputs grow with |L| for every algorithm; larger lambda
shrinks everyone's output; the greedy family stays at or below the
Scan-based family.
"""

from repro.experiments import fig12_stream_daylong

from .conftest import report


def test_fig12_stream_daylong(benchmark):
    rows = benchmark.pedantic(
        lambda: fig12_stream_daylong.run(
            seed=0,
            sizes=(2, 5, 10),
            lam_minutes=(10.0, 30.0),
            tau=30.0,
            scale=0.005,
            duration=21_600.0,
        ),
        rounds=1, iterations=1,
    )
    report(rows, fig12_stream_daylong.DESCRIPTION)

    for lam_min in (10.0, 30.0):
        series = [r for r in rows if r["lam_min"] == lam_min]
        # output grows with |L|
        for name in ("stream_scan", "stream_greedy_sc"):
            sizes = [r[f"{name}_size"] for r in series]
            assert sizes == sorted(sizes)
        # greedy at or below scan+ at or below scan
        for row in series:
            assert (
                row["stream_greedy_sc_size"]
                <= row["stream_scan_size"] * 1.05
            )
            assert (
                row["stream_scan+_size"] <= row["stream_scan_size"]
            )
    narrow = [r for r in rows if r["lam_min"] == 10.0]
    wide = [r for r in rows if r["lam_min"] == 30.0]
    for n_row, w_row in zip(narrow, wide):
        assert w_row["stream_scan_size"] < n_row["stream_scan_size"]
