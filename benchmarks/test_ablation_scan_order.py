"""Ablation — Scan+'s label processing order (Section 4.3's remark).

The paper notes Scan+'s effectiveness "depends on the ordering of the
labels processed"; this bench quantifies the spread across three orders.
No winner is asserted (the paper names none) — only that all orders yield
valid covers of comparable size, i.e. the knob matters but is not a trap.
"""

from repro.experiments import ablation_scan_order

from .conftest import report


def test_ablation_scan_order(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation_scan_order.run(
            seed=0, overlaps=(1.2, 1.6, 2.0), trials=4
        ),
        rounds=1, iterations=1,
    )
    report(rows, ablation_scan_order.DESCRIPTION)

    for row in rows:
        sizes = [
            row["sorted_size"],
            row["longest_first_size"],
            row["shortest_first_size"],
        ]
        assert max(sizes) <= min(sizes) * 1.5
