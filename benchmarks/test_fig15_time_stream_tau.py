"""Figure 15 — streaming execution time per post versus tau (fixed lambda).

Paper shapes: the Scan-based algorithms' timing is stable in tau; the
windowed greedy algorithms get slightly slower as tau grows (each deadline
processes a larger window).
"""

from repro.evaluation.metrics import mean
from repro.experiments import fig15_time_stream_tau

from .conftest import report


def test_fig15_time_stream_tau(benchmark):
    rows = benchmark.pedantic(
        lambda: fig15_time_stream_tau.run(
            seed=0,
            sizes=(2, 5),
            lam=300.0,
            taus=(60.0, 150.0, 300.0, 600.0),
            scale=0.005,
            duration=21_600.0,
        ),
        rounds=1, iterations=1,
    )
    report(rows, fig15_time_stream_tau.DESCRIPTION)

    for size in (2, 5):
        series = [r for r in rows if r["num_labels"] == size]
        # StreamScan flat in tau
        times = [r["stream_scan_us_per_post"] for r in series]
        assert max(times) <= 5 * max(min(times), 0.5)
        # greedy slower at the largest tau than at the smallest, or at
        # least not dramatically faster (window growth effect)
        assert (
            series[-1]["stream_greedy_sc_us_per_post"]
            >= series[0]["stream_greedy_sc_us_per_post"] * 0.5
        )
        # scan-based cheaper than greedy-based on average
        assert mean(
            r["stream_scan_us_per_post"] for r in series
        ) <= mean(
            r["stream_greedy_sc_us_per_post"] for r in series
        )
