"""Sharded-serving benchmarks: nodes vs throughput/p99, failover recovery.

Two experiments over the fig13 day workload, both emitted into
``BENCH_cluster.json``:

* ``test_nodes_vs_throughput`` boots a :class:`LocalCluster` at several
  node counts, drives a mixed single-/multi-label digest load through
  the router (each request a fresh ``(labels, lam)`` pair so worker
  caches cannot flatter the numbers), and records throughput plus
  p50/p99 latency per node count.
* ``test_failover_recovery`` kills the primary owner of a label
  mid-load on a replicated cluster and measures how long the router
  takes to serve that label again (replica failover), then how long a
  revive + heartbeat resync takes.

Workers run with views off so responses are byte-comparable across
placements; every served cover is still pushed through the verifier.
``BENCH_SMOKE=1`` shrinks the corpus and request counts so the CI
cluster-smoke job finishes in seconds.
"""

from __future__ import annotations

import asyncio
import time
from typing import List, Optional

from repro.cluster.harness import LocalCluster
from repro.cluster.protocol import canonical_fingerprint
from repro.cluster.router import ClusterConfig
from repro.cluster.worker import default_worker_config
from repro.core.coverage import verify_cover
from repro.experiments.common import make_day_instance
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.service import DigestRequest

from .conftest import SMOKE, report

SEED = 20140328
LAM_S = 300.0
NUM_LABELS = 5
SCALE = 0.002 if SMOKE else 0.004
DURATION = 21_600.0 if SMOKE else 43_200.0
NODE_COUNTS = (1, 3) if SMOKE else (1, 2, 3, 4)
REQUEST_ROUNDS = 3 if SMOKE else 10
CONCURRENCY = 8

# the request mix: singles route whole, pairs and the full universe
# scatter-gather (the day workload's multi-label posts produce seams)
LABEL_MIX = (
    ("q0",),
    ("q2",),
    ("q0", "q1"),
    ("q2", "q4"),
    None,  # every label -> every shard
    ("q1", "q3", "q4"),
)

_DAY_DOCS: Optional[List[Document]] = None


def day_queries() -> List[TopicQuery]:
    return [TopicQuery(f"q{i}", [f"kwq{i}"]) for i in range(NUM_LABELS)]


def day_documents() -> List[Document]:
    global _DAY_DOCS
    if _DAY_DOCS is None:
        instance = make_day_instance(
            seed=SEED, num_labels=NUM_LABELS, lam=LAM_S,
            scale=SCALE, duration=DURATION,
        )
        _DAY_DOCS = [
            Document(
                post.uid,
                post.value,
                " ".join(sorted(f"kw{label}" for label in post.labels))
                + f" body{post.uid}",
            )
            for post in instance.posts
        ]
    return _DAY_DOCS


def request_mix() -> List[DigestRequest]:
    """REQUEST_ROUNDS passes over LABEL_MIX, each pass at a fresh
    lambda so no request repeats and worker caches stay cold."""
    requests = []
    for round_index in range(REQUEST_ROUNDS):
        for labels in LABEL_MIX:
            requests.append(DigestRequest(
                lam=LAM_S + 2.0 * round_index, labels=labels,
            ))
    return requests


def batch_config():
    return default_worker_config(views=False)


def percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = int(round(q * (len(ordered) - 1)))
    return ordered[max(0, min(index, len(ordered) - 1))]


def run(coro):
    return asyncio.run(coro)


async def timed_digest(router, request):
    start = time.perf_counter()
    response = await router.digest(request)
    return response, (time.perf_counter() - start) * 1000.0


async def drive(router, requests, concurrency: int = CONCURRENCY):
    """Issue the requests in waves of ``concurrency``; returns
    (responses, per-request latencies in ms, total wall seconds)."""
    responses, latencies = [], []
    start = time.perf_counter()
    for offset in range(0, len(requests), concurrency):
        wave = requests[offset:offset + concurrency]
        outcomes = await asyncio.gather(
            *(timed_digest(router, request) for request in wave)
        )
        for response, elapsed_ms in outcomes:
            responses.append(response)
            latencies.append(elapsed_ms)
    return responses, latencies, time.perf_counter() - start


def test_nodes_vs_throughput(cluster_record, cluster_figure):
    docs = day_documents()
    requests = request_mix()
    rows = []

    async def one_count(nodes: int):
        async with LocalCluster(
            day_queries(), nodes=nodes, worker_config=batch_config(),
        ) as cluster:
            await cluster.router.ingest(docs)
            responses, latencies, wall_s = await drive(
                cluster.router, requests
            )
            for response in responses:
                assert response.status == "ok"
            # the covers the cluster serves are real lambda-covers
            sample = responses[-1].result
            verify_cover(sample.instance, sample.solution.posts)
            counters = cluster.router.introspect()["counters"]
            return responses, latencies, wall_s, counters

    fingerprints = {}
    for nodes in NODE_COUNTS:
        responses, latencies, wall_s, counters = run(one_count(nodes))
        for request, response in zip(requests, responses):
            key = (request.labels, request.lam)
            fingerprint = canonical_fingerprint(response.result)
            # every node count serves byte-identical answers: sharding
            # is a placement decision, not a semantic one
            assert fingerprints.setdefault(key, fingerprint) == \
                fingerprint
        row = {
            "nodes": nodes,
            "requests": len(responses),
            "throughput_rps": round(len(responses) / wall_s, 2),
            "p50_ms": round(percentile(latencies, 0.50), 3),
            "p99_ms": round(percentile(latencies, 0.99), 3),
            "seam_requests": counters["seam_requests"],
            "scatter_legs": counters["scatter_legs"],
        }
        rows.append(row)
        cluster_record(
            f"cluster_nodes_{nodes}",
            wall_time_s=wall_s,
            solution_size=len(responses[-1].result.solution.posts),
            instance={
                "workload": "fig13_day",
                "documents": len(docs),
                "labels": NUM_LABELS,
                "nodes": nodes,
                "lam": LAM_S,
            },
            counters={
                "requests": counters["requests"],
                "seam_requests": counters["seam_requests"],
                "scatter_legs": counters["scatter_legs"],
                "resolves": counters["resolves"],
                "errors": counters["errors"],
            },
            throughput_rps=row["throughput_rps"],
            p50_ms=row["p50_ms"],
            p99_ms=row["p99_ms"],
        )

    # multi-node runs must actually scatter: otherwise the node axis
    # measured nothing
    multi = [row for row in rows if row["nodes"] > 1]
    assert all(row["scatter_legs"] > 0 for row in multi)
    cluster_figure("cluster_nodes_vs_throughput", rows)
    report(rows, "Cluster: nodes vs throughput and tail latency")


def test_failover_recovery(cluster_record, cluster_figure):
    docs = day_documents()
    probe = DigestRequest(lam=LAM_S, labels=("q0",))
    background = [
        DigestRequest(lam=LAM_S, labels=labels)
        for labels in (("q1",), ("q2", "q3"), None)
    ]

    async def go():
        async with LocalCluster(
            day_queries(), nodes=3,
            config=ClusterConfig(replication=2, max_missed=1,
                                 hedge_delay=0.05),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            baseline = await router.digest(probe)
            assert baseline.status == "ok"
            expected = canonical_fingerprint(baseline.result)
            for request in background:
                warm = await router.digest(request)
                assert warm.status == "ok"

            victim = router.ring.owner("q0")
            killed_at = time.perf_counter()
            await cluster.kill(victim)

            # keep the router under load until the probe label serves
            # again; the first ok answer marks recovery
            recovery_s = None
            disrupted = 0
            while recovery_s is None:
                response = await router.digest(probe)
                if response.status == "ok":
                    recovery_s = time.perf_counter() - killed_at
                    # the replica's answer is byte-identical: views are
                    # off and both copies ingested the same batch
                    assert canonical_fingerprint(response.result) == \
                        expected
                else:
                    disrupted += 1
                    await asyncio.sleep(0.01)
                assert disrupted < 200, "failover never converged"

            # the rest of the mix keeps serving around the dead node
            for request in background:
                steady = await router.digest(request)
                assert steady.status == "ok"

            # revive + heartbeat: membership flips back up and the
            # node is resynced from its replicas
            revive_at = time.perf_counter()
            await cluster.revive(victim)
            await router.heartbeat_once()
            resync_s = time.perf_counter() - revive_at
            recovered = await router.digest(probe)
            assert recovered.status == "ok"
            assert canonical_fingerprint(recovered.result) == expected

            counters = router.introspect()["counters"]
            return {
                "victim": victim,
                "recovery_s": recovery_s,
                "disrupted_requests": disrupted,
                "resync_s": resync_s,
                "failovers": counters["failovers"],
                "errors": counters["errors"],
                "solution_size": len(baseline.result.solution.posts),
            }

    outcome = run(go())
    assert outcome["failovers"] > 0
    row = {
        "nodes": 3,
        "replication": 2,
        "recovery_ms": round(outcome["recovery_s"] * 1000.0, 3),
        "disrupted_requests": outcome["disrupted_requests"],
        "resync_ms": round(outcome["resync_s"] * 1000.0, 3),
        "failovers": outcome["failovers"],
    }
    cluster_record(
        "cluster_failover",
        wall_time_s=outcome["recovery_s"],
        solution_size=outcome["solution_size"],
        instance={
            "workload": "fig13_day",
            "documents": len(day_documents()),
            "labels": NUM_LABELS,
            "nodes": 3,
            "lam": LAM_S,
        },
        counters={
            "failovers": outcome["failovers"],
            "errors": outcome["errors"],
            "disrupted_requests": outcome["disrupted_requests"],
        },
        recovery_ms=row["recovery_ms"],
        resync_ms=row["resync_ms"],
    )
    cluster_figure("cluster_failover", [row])
    report([row], "Cluster: failover recovery and resync")
