"""Ablation — GreedySC family construction: pure Python vs numpy.

The Figure 13 deviation analysis attributes GreedySC's lambda-trend flip
to pair materialisation dominating at laptop densities.  This bench
quantifies how much the vectorised builder (`repro.core.fastpath`) buys
back, on the pair-heavy end of the sweep where it matters.  Hard
assertion: identical covers; the timing rows document the speed-up.
"""

from repro.core.greedy_sc import greedy_sc
from repro.experiments.common import make_day_instance

from .conftest import report


def test_ablation_engine(benchmark):
    def run():
        rows = []
        for lam_min, scale in ((10.0, 0.01), (60.0, 0.01)):
            instance = make_day_instance(
                seed=0, num_labels=5, lam=lam_min * 60.0,
                scale=scale, duration=21_600.0,
            )
            python = greedy_sc(instance, engine="python")
            vectorised = greedy_sc(instance, engine="numpy")
            assert python.uids == vectorised.uids
            rows.append(
                {
                    "lam_min": lam_min,
                    "posts": len(instance),
                    "python_ms": round(python.elapsed * 1e3, 1),
                    "numpy_ms": round(vectorised.elapsed * 1e3, 1),
                    "speedup": round(
                        python.elapsed / max(vectorised.elapsed, 1e-9), 2
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(rows, "Ablation: GreedySC family builder, python vs numpy")

    for row in rows:
        assert row["python_ms"] > 0 and row["numpy_ms"] > 0
    # on the pair-heavy (large-lambda) end the vectorised builder should
    # not lose; exact speed-ups are hardware-dependent, so assert mildly
    heavy = rows[-1]
    assert heavy["speedup"] >= 0.8
