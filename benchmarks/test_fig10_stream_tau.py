"""Figure 10 — streaming relative error versus tau, per fixed lambda.

Paper shapes: the Scan-based algorithms' error is *stable once tau exceeds
lambda* (they then emit exactly the batch Scan output); the greedy
algorithms reach their best error at tau = lambda, with a local bump when
tau is slightly above 2*lambda (the "in-between posts" effect).
"""

from repro.evaluation.metrics import mean
from repro.experiments import fig10_stream_tau

from .conftest import report

TAU_FACTORS = (0.25, 0.5, 1.0, 1.5, 2.0, 2.2, 2.5, 3.0)


def test_fig10_stream_tau(benchmark):
    rows = benchmark.pedantic(
        lambda: fig10_stream_tau.run(
            seed=0,
            lams=(40.0, 60.0),
            tau_factors=TAU_FACTORS,
            trials=4,
        ),
        rounds=1, iterations=1,
    )
    report(rows, fig10_stream_tau.DESCRIPTION)

    for lam in (40.0, 60.0):
        series = {
            row["tau_over_lam"]: row
            for row in rows
            if row["lam"] == lam
        }
        # Scan-based: identical output for every tau > lambda
        beyond = [series[f]["stream_scan_err"]
                  for f in (1.5, 2.0, 2.2, 2.5, 3.0)]
        assert max(beyond) - min(beyond) < 1e-9
        beyond_plus = [series[f]["stream_scan+_err"]
                       for f in (1.5, 2.0, 2.2, 2.5, 3.0)]
        assert max(beyond_plus) - min(beyond_plus) < 1e-9

    # greedy error at tau = lambda no worse than at the tiny-tau end
    # (the paper's minimum-at-lambda observation)
    at_lam = mean(
        r["stream_greedy_sc_err"] for r in rows
        if r["tau_over_lam"] == 1.0
    )
    tiny = mean(
        r["stream_greedy_sc_err"] for r in rows
        if r["tau_over_lam"] == 0.25
    )
    assert at_lam <= tiny + 0.05
