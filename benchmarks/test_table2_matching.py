"""Table 2 — matching posts per minute for |L| = 2, 5, 20.

Paper artifact: 136 / 308 / 1180 matching posts per minute.  The absolute
numbers are a property of the 1%-of-Twitter firehose; the shape that must
hold on our synthetic stream is monotone growth in |L| with the |L|=5
profile drawing roughly twice the |L|=2 volume (paper ratio 2.26).  The
|L|=20 ratio saturates earlier than the paper's 8.68 because a profile of
20 of the 30 topics of one synthetic broad topic approaches that broad
topic's entire volume — documented in EXPERIMENTS.md.
"""

from repro.experiments import table2_matching

from .conftest import report


def test_table2_matching(benchmark):
    rows = benchmark.pedantic(
        lambda: table2_matching.run(
            seed=0, minutes=2.0, tweets_per_sec=25.0, sets_per_size=10
        ),
        rounds=1, iterations=1,
    )
    report(rows, table2_matching.DESCRIPTION)

    rates = {row["num_labels"]: row["matching_per_min"] for row in rows}
    assert rates[2] < rates[5] < rates[20]
    # |L|=5 ratio in the paper's neighbourhood (2.26): allow wide band
    assert 1.3 <= rates[5] / rates[2] <= 3.5
    # |L|=20 clearly above |L|=5 even with broad-topic saturation
    assert rates[20] / rates[2] >= 2.0
