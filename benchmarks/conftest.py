"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures at a scaled
configuration (see EXPERIMENTS.md for the scaling policy), prints the rows,
and asserts the *shape* the paper reports — who wins, what grows, where the
crossover sits.  ``benchmark.pedantic(..., rounds=1)`` is used because each
experiment is already an aggregate over instances; re-running it five times
would quintuple wall-clock for no statistical gain.

Each ``report`` call also writes its table to ``benchmarks/results/`` so
the regenerated artifacts survive pytest's output capturing — after a
bench run, that directory holds the reproduced paper tables as plain text.
"""

from __future__ import annotations

import pathlib
import re

from repro.evaluation.harness import format_table

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def report(rows, title: str) -> None:
    """Print an experiment's rows and persist them under results/."""
    table = format_table(rows, title=f"== {title} ==")
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(table + "\n")
