"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures at a scaled
configuration (see EXPERIMENTS.md for the scaling policy), prints the rows,
and asserts the *shape* the paper reports — who wins, what grows, where the
crossover sits.  ``benchmark.pedantic(..., rounds=1)`` is used because each
experiment is already an aggregate over instances; re-running it five times
would quintuple wall-clock for no statistical gain.

Each ``report`` call also writes its table to ``benchmarks/results/`` so
the regenerated artifacts survive pytest's output capturing — after a
bench run, that directory holds the reproduced paper tables as plain text.

The run additionally accumulates one bench trajectory
(:class:`repro.observability.bench.BenchTrajectory`): the throughput
benches record per-solver wall time, work counters, and solution size via
the ``bench_record`` fixture, and every ``report`` call attaches its raw
rows as a figure table.  At session end the document is validated and
written to ``benchmarks/results/BENCH_throughput.json`` — the artifact the
CI smoke job uploads and ``python -m repro.observability.bench
--validate`` guards.

``BENCH_SMOKE=1`` shrinks the throughput workload (and relaxes the
overhead gate) so the emission path can run in seconds on a CI runner.
"""

from __future__ import annotations

import os
import pathlib
import re

import pytest

from repro.evaluation.harness import format_table
from repro.observability.bench import BenchTrajectory, validate_bench

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_ARTIFACT = RESULTS_DIR / "BENCH_throughput.json"
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

_TRAJECTORY = BenchTrajectory("throughput")


def report(rows, title: str) -> None:
    """Print an experiment's rows and persist them under results/."""
    table = format_table(rows, title=f"== {title} ==")
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(table + "\n")
    _TRAJECTORY.record_figure(slug, rows)


@pytest.fixture(scope="session")
def bench_record():
    """Record one solver run into the session's bench trajectory."""
    return _TRAJECTORY.record_solver


def pytest_sessionfinish(session, exitstatus):
    # Only the throughput benches produce solver entries; a figure-only
    # run has nothing a BENCH reader requires, so skip emission then.
    if not _TRAJECTORY.solvers:
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    document = _TRAJECTORY.write(BENCH_ARTIFACT)
    validate_bench(BENCH_ARTIFACT)
    print(
        f"\nBENCH trajectory: {BENCH_ARTIFACT} "
        f"({len(document['solvers'])} solver entries, "
        f"{len(document['figures'])} figure tables)"
    )
