"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's tables/figures at a scaled
configuration (see EXPERIMENTS.md for the scaling policy), prints the rows,
and asserts the *shape* the paper reports — who wins, what grows, where the
crossover sits.  ``benchmark.pedantic(..., rounds=1)`` is used because each
experiment is already an aggregate over instances; re-running it five times
would quintuple wall-clock for no statistical gain.

Each ``report`` call also writes its table to ``benchmarks/results/`` so
the regenerated artifacts survive pytest's output capturing — after a
bench run, that directory holds the reproduced paper tables as plain text.

The run additionally accumulates one bench trajectory
(:class:`repro.observability.bench.BenchTrajectory`): the throughput
benches record per-solver wall time, work counters, and solution size via
the ``bench_record`` fixture, and every ``report`` call attaches its raw
rows as a figure table.  At session end the document is validated and
written to ``benchmarks/results/BENCH_throughput.json`` — the artifact the
CI smoke job uploads and ``python -m repro.observability.bench
--validate`` guards.

``BENCH_SMOKE=1`` shrinks the throughput workload (and relaxes the
overhead gate) so the emission path can run in seconds on a CI runner.
"""

from __future__ import annotations

import os
import pathlib
import re

import pytest

from repro.evaluation.harness import format_table
from repro.observability.bench import BenchTrajectory, validate_bench

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
BENCH_ARTIFACT = RESULTS_DIR / "BENCH_throughput.json"
PARALLEL_ARTIFACT = RESULTS_DIR / "BENCH_parallel.json"
SERVICE_ARTIFACT = RESULTS_DIR / "BENCH_service.json"
SLO_ARTIFACT = RESULTS_DIR / "BENCH_slo.json"
INGEST_ARTIFACT = RESULTS_DIR / "BENCH_ingest.json"
INCREMENTAL_ARTIFACT = RESULTS_DIR / "BENCH_incremental.json"
CLUSTER_ARTIFACT = RESULTS_DIR / "BENCH_cluster.json"
OBSERVABILITY_ARTIFACT = RESULTS_DIR / "BENCH_observability.json"
SMOKE = bool(os.environ.get("BENCH_SMOKE"))

_TRAJECTORY = BenchTrajectory("throughput")
_PARALLEL_TRAJECTORY = BenchTrajectory("parallel")
_SERVICE_TRAJECTORY = BenchTrajectory("service")
_SLO_TRAJECTORY = BenchTrajectory("slo")
_INGEST_TRAJECTORY = BenchTrajectory("ingest")
_INCREMENTAL_TRAJECTORY = BenchTrajectory("incremental")
_CLUSTER_TRAJECTORY = BenchTrajectory("cluster")
_OBSERVABILITY_TRAJECTORY = BenchTrajectory("observability")


def report(rows, title: str) -> None:
    """Print an experiment's rows and persist them under results/."""
    table = format_table(rows, title=f"== {title} ==")
    print()
    print(table)
    RESULTS_DIR.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
    (RESULTS_DIR / f"{slug}.txt").write_text(table + "\n")
    _TRAJECTORY.record_figure(slug, rows)


@pytest.fixture(scope="session")
def bench_record():
    """Record one solver run into the session's bench trajectory."""
    return _TRAJECTORY.record_solver


@pytest.fixture(scope="session")
def parallel_record():
    """Record one solver run into the parallel-engine trajectory
    (``BENCH_parallel.json``)."""
    return _PARALLEL_TRAJECTORY.record_solver


@pytest.fixture(scope="session")
def parallel_figure():
    """Attach a comparison table to the parallel trajectory."""
    return _PARALLEL_TRAJECTORY.record_figure


@pytest.fixture(scope="session")
def service_record():
    """Record one serving-layer workload into the service trajectory
    (``BENCH_service.json``)."""
    return _SERVICE_TRAJECTORY.record_solver


@pytest.fixture(scope="session")
def service_figure():
    """Attach a latency/throughput table to the service trajectory."""
    return _SERVICE_TRAJECTORY.record_figure


@pytest.fixture(scope="session")
def slo_record():
    """Record one per-tenant SLO entry into the SLO trajectory
    (``BENCH_slo.json``)."""
    return _SLO_TRAJECTORY.record_solver


@pytest.fixture(scope="session")
def slo_figure():
    """Attach a per-tenant SLO/audit table to the SLO trajectory."""
    return _SLO_TRAJECTORY.record_figure


@pytest.fixture(scope="session")
def ingest_record():
    """Record one durable-ingest workload into the ingest trajectory
    (``BENCH_ingest.json``)."""
    return _INGEST_TRAJECTORY.record_solver


@pytest.fixture(scope="session")
def ingest_figure():
    """Attach a durability/recovery table to the ingest trajectory."""
    return _INGEST_TRAJECTORY.record_figure


@pytest.fixture(scope="session")
def incremental_record():
    """Record one incremental read-path workload into the incremental
    trajectory (``BENCH_incremental.json``)."""
    return _INCREMENTAL_TRAJECTORY.record_solver


@pytest.fixture(scope="session")
def incremental_figure():
    """Attach a view-vs-batch latency or repair-cost table to the
    incremental trajectory."""
    return _INCREMENTAL_TRAJECTORY.record_figure


@pytest.fixture(scope="session")
def cluster_record():
    """Record one sharded-serving workload into the cluster trajectory
    (``BENCH_cluster.json``)."""
    return _CLUSTER_TRAJECTORY.record_solver


@pytest.fixture(scope="session")
def cluster_figure():
    """Attach a nodes-vs-throughput or failover table to the cluster
    trajectory."""
    return _CLUSTER_TRAJECTORY.record_figure


@pytest.fixture(scope="session")
def observability_record():
    """Record one observability-overhead workload into the
    observability trajectory (``BENCH_observability.json``)."""
    return _OBSERVABILITY_TRAJECTORY.record_solver


@pytest.fixture(scope="session")
def observability_figure():
    """Attach an overhead/interval/sampling table to the
    observability trajectory."""
    return _OBSERVABILITY_TRAJECTORY.record_figure


def _emit(trajectory, artifact):
    RESULTS_DIR.mkdir(exist_ok=True)
    document = trajectory.write(artifact)
    validate_bench(artifact)
    print(
        f"\nBENCH trajectory: {artifact} "
        f"({len(document['solvers'])} solver entries, "
        f"{len(document['figures'])} figure tables)"
    )


def pytest_sessionfinish(session, exitstatus):
    # Each trajectory is emitted only when its benches ran; a figure-only
    # run has nothing a BENCH reader requires, so skip emission then.
    if _TRAJECTORY.solvers:
        _emit(_TRAJECTORY, BENCH_ARTIFACT)
    if _PARALLEL_TRAJECTORY.solvers:
        _emit(_PARALLEL_TRAJECTORY, PARALLEL_ARTIFACT)
    if _SERVICE_TRAJECTORY.solvers:
        _emit(_SERVICE_TRAJECTORY, SERVICE_ARTIFACT)
    if _SLO_TRAJECTORY.solvers:
        _emit(_SLO_TRAJECTORY, SLO_ARTIFACT)
    if _INGEST_TRAJECTORY.solvers:
        _emit(_INGEST_TRAJECTORY, INGEST_ARTIFACT)
    if _INCREMENTAL_TRAJECTORY.solvers:
        _emit(_INCREMENTAL_TRAJECTORY, INCREMENTAL_ARTIFACT)
    if _CLUSTER_TRAJECTORY.solvers:
        _emit(_CLUSTER_TRAJECTORY, CLUSTER_ARTIFACT)
    if _OBSERVABILITY_TRAJECTORY.solvers:
        _emit(_OBSERVABILITY_TRAJECTORY, OBSERVABILITY_ARTIFACT)
