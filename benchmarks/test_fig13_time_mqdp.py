"""Figure 13 — MQDP execution time per post versus lambda.

Paper shapes (Section 7.3): Scan/Scan+ are orders of magnitude faster than
GreedySC and essentially flat in lambda; GreedySC *speeds up* with larger
lambda (fewer greedy rounds) and slows down with larger |L|; Scan gets no
slower with larger |L|.
"""

from repro.evaluation.metrics import mean
from repro.experiments import fig13_time_mqdp

from .conftest import report


def test_fig13_time_mqdp(benchmark):
    rows = benchmark.pedantic(
        lambda: fig13_time_mqdp.run(
            seed=0,
            sizes=(2, 5),
            lam_minutes=(5.0, 10.0, 20.0, 30.0),
            scale=0.005,
            duration=21_600.0,
        ),
        rounds=1, iterations=1,
    )
    report(rows, fig13_time_mqdp.DESCRIPTION)

    # Scan at least an order of magnitude faster than GreedySC everywhere
    for row in rows:
        assert row["scan_us_per_post"] * 10 <= row["greedy_sc_us_per_post"]

    # Scan roughly flat in lambda (within 4x across the sweep).  Scan's
    # per-post cost sits near 0.1 us where scheduler jitter dominates, so
    # the ratio check gets an absolute floor of 0.5 us: sub-floor sweeps
    # are flat by any practical definition.
    for size in (2, 5):
        series = [r for r in rows if r["num_labels"] == size]
        scan_times = [r["scan_us_per_post"] for r in series]
        assert max(scan_times) <= 4 * max(min(scan_times), 0.5)

        # GreedySC's lambda trend: the paper reports a sharp speed-up with
        # larger lambda because its cost was dominated by greedy rounds
        # (fewer picks at larger lambda).  At this scaled density the
        # materialisation of within-lambda pairs dominates instead, which
        # grows with lambda — a documented regime deviation
        # (EXPERIMENTS.md).  We assert the cost stays within a small
        # factor across the sweep rather than a direction.
        greedy_times = [r["greedy_sc_us_per_post"] for r in series]
        assert max(greedy_times) <= 5 * max(min(greedy_times), 0.5)

    # GreedySC slower with more labels (mean across lambdas)
    greedy_small = mean(
        r["greedy_sc_us_per_post"] for r in rows if r["num_labels"] == 2
    )
    greedy_large = mean(
        r["greedy_sc_us_per_post"] for r in rows if r["num_labels"] == 5
    )
    assert greedy_large >= greedy_small * 0.9
