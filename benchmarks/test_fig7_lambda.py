"""Figure 7 — relative solution-size error versus lambda (|L| = 2).

Paper shapes: every approximation's error grows with lambda; GreedySC's
error stays below Scan's across the sweep (its improvement over Scan+
peaks around 60% at the largest lambda in the paper).
"""

from repro.experiments import fig7_lambda

from .conftest import report


def test_fig7_lambda(benchmark):
    lams = (10.0, 20.0, 30.0, 45.0, 60.0, 90.0)
    rows = benchmark.pedantic(
        lambda: fig7_lambda.run(seed=0, lams=lams, trials=3),
        rounds=1, iterations=1,
    )
    report(rows, fig7_lambda.DESCRIPTION)

    # errors grow with lambda: compare the sweep's ends
    first, last = rows[0], rows[-1]
    for algorithm in ("scan", "scan+", "greedy_sc"):
        assert last[f"{algorithm}_err"] >= first[f"{algorithm}_err"]

    # GreedySC dominates Scan at every lambda
    for row in rows:
        assert row["greedy_sc_err"] <= row["scan_err"]
    # and Scan+ never loses to plain Scan
    for row in rows:
        assert row["scan+_err"] <= row["scan_err"] + 1e-9
