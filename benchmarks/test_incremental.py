"""Incremental read-path benchmark: maintained-view digests vs batch.

Replays the Figure-13 day workload through a live
:class:`~repro.service.DiversificationService` and measures the three
serving modes on the same query:

* **cold_solve** — a views-off twin pays a full batch solve per digest;
* **view_read** — the views-on service absorbs each ingest chunk as
  deltas and serves digests from the maintained cover
  (``response.view``); the issue's acceptance gate is view p50 at least
  10x better than cold p50 at steady-state ingest;
* **warm_cache** — an epoch-exact repeat, the latency floor a view read
  should sit near.

A second experiment slides a ``view_window`` over the same day and
charts repair cost against ingest rate: per segment of the day, deltas
applied, cover members expired, repair candidates scanned, pairs
re-covered and rebuild flags raised.  Both tables land in
``benchmarks/results/BENCH_incremental.json`` (validated, uploaded by
the CI ``bench-smoke`` job); every view-served cover is re-checked with
the λ-coverage verifier before it counts.
"""

from __future__ import annotations

import asyncio
import time

from repro.core.coverage import uncovered_pairs
from repro.experiments.common import make_day_instance
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.service import DigestRequest, DiversificationService, \
    ServiceConfig

from .conftest import SMOKE, report

SEED = 20140328  # EDBT 2014, same replay seed as the service bench
LAM_S = 300.0  # 5 minutes
NUM_LABELS = 5
SCALE = 0.004 if SMOKE else 0.02
DURATION = 21_600.0 if SMOKE else 86_400.0
SEGMENTS = 6 if SMOKE else 12
READS_PER_SEGMENT = 4 if SMOKE else 8

_DOCS = None


def day_documents():
    """The fig13 day instance, rendered back into matchable documents.

    Each generated post's label set becomes one keyword per label, so
    the service's matcher reprojects exactly the workload's labels."""
    global _DOCS
    if _DOCS is None:
        instance = make_day_instance(
            seed=SEED, num_labels=NUM_LABELS, lam=LAM_S,
            scale=SCALE, duration=DURATION,
        )
        _DOCS = [
            Document(
                post.uid,
                post.value,
                " ".join(sorted(f"kw{label}" for label in post.labels))
                + f" body{post.uid}",
            )
            for post in instance.posts
        ]
    return _DOCS


def make_queries():
    return [
        TopicQuery(f"q{i}", [f"kwq{i}"]) for i in range(NUM_LABELS)
    ]


def build_service(**overrides):
    overrides.setdefault("dedup_distance", None)
    overrides.setdefault("executor", "thread")
    return DiversificationService(
        make_queries(), ServiceConfig(**overrides)
    )


def percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


def run(coro):
    return asyncio.run(coro)


def segments(docs, count):
    size = max(1, len(docs) // count)
    return [docs[i:i + size] for i in range(0, len(docs), size)]


def timed_digest(service, request):
    started = time.perf_counter()
    response = run(service.digest(request))
    return response, time.perf_counter() - started


def test_view_read_vs_cold_solve(incremental_record, incremental_figure):
    """The tentpole's acceptance gate: digest() as a near-O(1) read.

    Both services replay the same day in ingest chunks; after each chunk
    the views-on service answers from its maintained cover while the
    views-off twin re-solves.  The comparison is within one process and
    one workload, so pool and allocator constants cancel."""
    docs = day_documents()
    viewed = build_service(audit_sample=1.0)
    cold = build_service(views=False)
    request = DigestRequest(lam=LAM_S)

    chunks = segments(docs, SEGMENTS)
    # priming pass: first chunk + one digest seeds the view
    viewed.ingest(chunks[0])
    cold.ingest(chunks[0])
    run(viewed.digest(request))
    run(cold.digest(request))

    view_lat, cold_lat, warm_lat = [], [], []
    view_sizes = []
    for chunk in chunks[1:]:
        viewed.ingest(chunk)
        cold.ingest(chunk)
        for _ in range(READS_PER_SEGMENT):
            response, elapsed = timed_digest(viewed, request)
            if response.view:
                view_lat.append(elapsed)
                view_sizes.append(response.result.size)
                assert uncovered_pairs(
                    response.result.instance,
                    response.result.solution.posts,
                ) == []
            elif response.cached:
                # epoch-exact repeat — the latency floor
                warm_lat.append(elapsed)
            # else: a drift-triggered re-solve; it re-seeds the view and
            # the next read is incremental again
        response, elapsed = timed_digest(cold, request)
        assert not response.view
        cold_lat.append(elapsed)

    assert view_lat, "steady-state ingest never served a view"
    assert cold_lat
    view_p50 = percentile(view_lat, 0.50)
    cold_p50 = percentile(cold_lat, 0.50)
    speedup = cold_p50 / view_p50 if view_p50 > 0 else float("inf")
    # views only re-solve when drift crosses the bound; one batch prime
    # plus occasional re-seeds must stay far below one solve per chunk
    assert viewed.solves < cold.solves
    # acceptance gate: view digest p50 at least 10x faster than a cold
    # batch solve on the same corpus trajectory
    assert speedup >= 10.0, (
        f"view p50 {view_p50 * 1e3:.3f}ms vs cold p50 "
        f"{cold_p50 * 1e3:.3f}ms — {speedup:.1f}x < 10x"
    )
    findings = viewed.auditor.audit_pending()
    assert findings and all(f.covered for f in findings)

    instance = {
        "workload": "fig13-day",
        "documents": len(docs),
        "labels": NUM_LABELS,
        "lam_s": LAM_S,
        "duration_s": DURATION,
        "scale": SCALE,
        "seed": SEED,
        "smoke": SMOKE,
    }
    rows = []
    for mode, lat in (
        ("cold_solve", cold_lat),
        ("view_read", view_lat),
        ("warm_cache", warm_lat),
    ):
        if not lat:
            continue
        rows.append({
            "mode": mode,
            "requests": len(lat),
            "p50_ms": round(percentile(lat, 0.50) * 1e3, 4),
            "p95_ms": round(percentile(lat, 0.95) * 1e3, 4),
            "speedup_vs_cold": round(
                cold_p50 / percentile(lat, 0.50), 1
            ) if lat else None,
        })
        incremental_record(
            f"incremental[{mode}]",
            wall_time_s=sum(lat),
            solution_size=max(view_sizes) if view_sizes else 0,
            instance=dict(instance, mode=mode),
            counters={},
            p50_ms=round(percentile(lat, 0.50) * 1e3, 4),
            p95_ms=round(percentile(lat, 0.95) * 1e3, 4),
        )
    report(rows, "Incremental read path: view vs cold vs cache (fig13 day)")
    incremental_figure("read_path_latency", rows)


def test_repair_cost_vs_ingest_rate(incremental_record,
                                    incremental_figure):
    """Window maintenance cost as the day's ingest rate varies.

    The day workload is bursty by construction, so consecutive segments
    carry very different arrival rates; replaying them through a
    ``view_window`` service charts repair work against ingest pressure.
    """
    docs = day_documents()
    window = max(4.0 * LAM_S, DURATION / 8.0)
    service = build_service(view_window=window)
    request = DigestRequest(lam=LAM_S)
    rows = []
    last = None
    wall_started = time.perf_counter()
    for index, chunk in enumerate(segments(docs, SEGMENTS)):
        service.ingest(chunk)
        response = run(service.digest(request))
        assert uncovered_pairs(
            response.result.instance, response.result.solution.posts
        ) == []
        snapshot = service.introspect()["views"]
        (view,) = snapshot["views"]
        ledger = view["ledger"]
        if last is None:
            last = {key: 0 for key in ledger}
        span = chunk[-1].timestamp - chunk[0].timestamp or 1.0
        rows.append({
            "segment": index,
            "docs": len(chunk),
            "ingest_per_min": round(60.0 * len(chunk) / span, 2),
            "inserts": ledger["inserts"] - last["inserts"],
            "selected": ledger["selected_inserts"]
            - last["selected_inserts"],
            "expired_members": ledger["expired_members"]
            - last["expired_members"],
            "repair_candidates": ledger["repair_candidates"]
            - last["repair_candidates"],
            "repaired_pairs": ledger["repaired_pairs"]
            - last["repaired_pairs"],
            "rebuild_flags": ledger["rebuild_flags"]
            - last["rebuild_flags"],
            "cover_size": view["size"],
        })
        last = dict(ledger)
    wall = time.perf_counter() - wall_started

    # the window genuinely slid: members expired and repair ran
    assert service.introspect()["views"]["store"]["expired"] > 0
    report(rows, "Incremental repair cost vs ingest rate (fig13 day)")
    incremental_figure("repair_cost", rows)
    incremental_record(
        "incremental[window-repair]",
        wall_time_s=wall,
        solution_size=rows[-1]["cover_size"],
        instance={
            "workload": "fig13-day",
            "documents": len(docs),
            "labels": NUM_LABELS,
            "lam_s": LAM_S,
            "view_window_s": window,
            "segments": len(rows),
            "seed": SEED,
            "smoke": SMOKE,
        },
        counters={
            "expired": service.introspect()["views"]["store"]["expired"],
        },
    )
