"""The facade's zero-overhead-when-disabled contract, measured.

``_scan_posts`` pays exactly one ``_obs.enabled()`` check per *call* (the
inner loops are byte-identical to the uninstrumented originals via the
counted-twin pattern), so disabled Scan must track a hand-inlined
reference within noise.  The gate is 5% on the min-of-rounds timing —
minima are robust to scheduler preemption, and the two loops are
interleaved so drift (thermal, frequency scaling) hits both sides alike.
``BENCH_SMOKE=1`` relaxes the gate for shared CI runners, where even
minima can wobble past 5%.
"""

import timeit

import pytest

from .conftest import SMOKE

from repro.core.scan import _scan_posts, order_labels, scan_label
from repro.experiments.common import make_effectiveness_instance
from repro.observability import facade

# min-of-ROUNDS over NUMBER-call samples per side
ROUNDS = 5
NUMBER = 10 if SMOKE else 30
MAX_RELATIVE_OVERHEAD = 0.50 if SMOKE else 0.05


def _reference_scan_posts(instance, label_order):
    """The pre-instrumentation Scan body: no facade check at all."""
    picks = []
    for label in label_order:
        picks.extend(scan_label(instance.posting(label), instance.lam))
    return picks


@pytest.fixture(scope="module")
def workload():
    return make_effectiveness_instance(
        seed=0, num_labels=3, lam=30.0, overlap=1.4,
        **({"duration": 60.0} if SMOKE else {}),
    )


def test_disabled_scan_within_overhead_budget(workload):
    facade.disable()
    labels = order_labels(workload)
    assert _scan_posts(workload, labels) == \
        _reference_scan_posts(workload, labels)

    instrumented = timeit.Timer(
        lambda: _scan_posts(workload, labels)
    )
    reference = timeit.Timer(
        lambda: _reference_scan_posts(workload, labels)
    )
    # warm-up, then interleave the samples
    instrumented.timeit(NUMBER)
    reference.timeit(NUMBER)
    instrumented_times, reference_times = [], []
    for _ in range(ROUNDS):
        instrumented_times.append(instrumented.timeit(NUMBER))
        reference_times.append(reference.timeit(NUMBER))

    best_instrumented = min(instrumented_times)
    best_reference = min(reference_times)
    overhead = best_instrumented / best_reference - 1.0
    print(
        f"\ndisabled-scan overhead: {overhead:+.2%} "
        f"(gate {MAX_RELATIVE_OVERHEAD:.0%}, "
        f"{ROUNDS} rounds x {NUMBER} calls)"
    )
    assert overhead <= MAX_RELATIVE_OVERHEAD, (
        f"disabled instrumentation costs {overhead:+.2%} on scan, "
        f"above the {MAX_RELATIVE_OVERHEAD:.0%} budget"
    )
