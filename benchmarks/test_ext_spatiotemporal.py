"""Extension benchmark — spatiotemporal MQDP (the paper's future work).

No paper artifact to match; this bench documents the extension's
behaviour: the greedy box-cover stays near the exact optimum on storm-track
workloads, tightening the geographic radius grows the cover (the digest
gains spatial resolution), and the 1-D special case matches the paper's
GreedySC exactly.
"""

import random

from repro.core.greedy_sc import greedy_sc
from repro.core.instance import Instance
from repro.core.post import Post
from repro.multidim import MultiInstance, MultiPost, exact_box, greedy_box, sweep_box

from .conftest import report


def _storm_reports(rng, hours=10, per_hour=6):
    posts = []
    uid = 0
    for hour in range(hours):
        eye = -90.0 + hour
        for _ in range(per_hour):
            posts.append(
                MultiPost(
                    uid=uid,
                    values=(hour * 3600.0 + rng.uniform(0, 3600.0),
                            eye + rng.gauss(0.0, 0.5)),
                    labels=frozenset({"storm"}),
                )
            )
            uid += 1
    return posts


def test_ext_spatiotemporal(benchmark):
    rng = random.Random(0)
    posts = _storm_reports(rng)

    def run():
        rows = []
        for geo_radius in (360.0, 3.0, 1.5, 0.75):
            instance = MultiInstance(posts, radii=(7200.0, geo_radius))
            greedy = greedy_box(instance)
            sweep = sweep_box(instance)
            exact = exact_box(instance)
            assert instance.is_cover(greedy.posts)
            assert instance.is_cover(sweep.posts)
            rows.append(
                {
                    "geo_radius_deg": geo_radius,
                    "exact_size": exact.size,
                    "greedy_size": greedy.size,
                    "sweep_size": sweep.size,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(rows, "Extension: spatiotemporal box covers vs geo radius")

    sizes = [row["exact_size"] for row in rows]
    assert sizes == sorted(sizes)  # tighter geography -> bigger cover
    for row in rows:
        assert row["greedy_size"] <= row["exact_size"] * 2
        assert row["sweep_size"] >= row["exact_size"]

    # 1-D special case: greedy_box == the paper's GreedySC, pick for pick
    core = Instance(
        [Post(uid=p.uid, value=p.values[0], labels=p.labels)
         for p in posts],
        lam=7200.0,
    )
    flat = MultiInstance(posts, radii=(7200.0, 360.0))
    assert greedy_box(flat).uids == greedy_sc(core).uids
