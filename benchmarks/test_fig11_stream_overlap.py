"""Figure 11 — streaming absolute solution size versus overlap rate.

Paper shapes: the greedy algorithms win (smaller output) at high overlap,
the Scan-based ones are competitive near overlap = 1 — the streaming
mirror of Figure 6's crossover.
"""

from repro.experiments import fig11_stream_overlap

from .conftest import report


def test_fig11_stream_overlap(benchmark):
    rows = benchmark.pedantic(
        lambda: fig11_stream_overlap.run(
            seed=0,
            overlaps=(1.0, 1.3, 1.6),
            trials=4,
        ),
        rounds=1, iterations=1,
    )
    report(rows, fig11_stream_overlap.DESCRIPTION)

    by_overlap = {row["overlap_target"]: row for row in rows}

    # the paper's crossover: Scan wins near overlap = 1 (it is per-label
    # optimal there), the greedy family wins at higher overlap (hub posts
    # cover several labels at once)
    low = by_overlap[1.0]
    assert low["stream_scan_size"] <= low["stream_greedy_sc_size"]
    high = by_overlap[1.6]
    assert high["stream_greedy_sc_size"] <= high["stream_scan_size"]
    # everyone's output shrinks as overlap rises (posts pull double duty)
    for name in ("stream_scan", "stream_greedy_sc"):
        assert (
            by_overlap[1.6][f"{name}_size"]
            < by_overlap[1.0][f"{name}_size"]
        )
