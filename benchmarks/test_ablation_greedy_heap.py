"""Ablation — GreedySC candidate maintenance (Section 7.3's remark).

The authors report replacing a PriorityQueue with a linear rescan because
heap churn lost to the rescan on their data.  This bench times both on the
same instances; the hard assertion is semantic equality (identical covers),
the timing rows document which side wins in this Python setting.
"""

from repro.experiments import ablation_greedy_heap

from .conftest import report


def test_ablation_greedy_heap(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation_greedy_heap.run(
            seed=0,
            sizes=(2, 5),
            lam_minutes=(10.0, 30.0),
            scale=0.005,
            duration=21_600.0,
        ),
        rounds=1, iterations=1,
    )
    report(rows, ablation_greedy_heap.DESCRIPTION)

    for row in rows:
        assert row["rescan_size"] == row["lazy_heap_size"]
        assert row["rescan_ms"] > 0
        assert row["lazy_heap_ms"] > 0
