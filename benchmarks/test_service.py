"""Serving-layer load benchmark: cold, warm and coalesced workloads.

A seeded closed-loop load generator (``CONCURRENCY`` clients, each
waiting for its response before issuing the next request) drives one
:class:`~repro.service.DiversificationService` through three workloads:

* **cold** — every request keys a distinct ``(labels, lambda)`` pair, so
  each one pays a full solver run;
* **warm** — a duplicate-heavy mix over a small key set, served from the
  epoch-keyed cache after one priming pass (the issue's acceptance bar:
  warm p50 at least 5x better than cold p50);
* **coalesced** — bursts of identical concurrent requests, where
  single-flight coalescing collapses each burst onto one solver run.

Each workload records p50/p95 latency and throughput into
``benchmarks/results/BENCH_service.json`` via the ``service_record``
fixture; the CI ``service-smoke`` job runs this file under
``BENCH_SMOKE=1`` and validates the artifact with ``python -m
repro.observability.bench --validate``.
"""

from __future__ import annotations

import asyncio
import random
import statistics
import time

from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.service import DigestRequest, DiversificationService, \
    ServiceConfig

from .conftest import SMOKE, report

SEED = 20140328  # EDBT 2014 (the paper's venue) — fixed for replay

if SMOKE:
    N_DOCS, COLD_KEYS, WARM_KEYS, WARM_REQUESTS = 90, 12, 4, 32
    BURSTS, BURST_SIZE = 4, 8
else:
    N_DOCS, COLD_KEYS, WARM_KEYS, WARM_REQUESTS = 600, 60, 8, 240
    BURSTS, BURST_SIZE = 12, 16
CONCURRENCY = 4

TOPICS = [
    TopicQuery("golf", ["golf", "putt"]),
    TopicQuery("nba", ["nba", "dunk"]),
    TopicQuery("tech", ["cpu", "kernel"]),
    TopicQuery("movies", ["film", "cinema"]),
]
LABEL_SETS = [
    ("golf",), ("nba",), ("tech",), ("movies",),
    ("golf", "nba"), ("tech", "movies"), None,
]


def build_service() -> DiversificationService:
    service = DiversificationService(
        TOPICS,
        ServiceConfig(dedup_distance=None, executor="thread"),
    )
    texts = ("golf putt", "nba dunk", "cpu kernel", "film cinema")
    service.ingest(
        Document(
            i, float(i * 5), f"{texts[i % 4]} doc{i} word{i * 7}"
        )
        for i in range(N_DOCS)
    )
    return service


def percentile(samples, q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


async def closed_loop(service, requests):
    """CONCURRENCY clients each issue the next request as soon as their
    previous one completes; returns per-request latencies in seconds."""
    queue = list(reversed(requests))
    latencies = []
    responses = []

    async def client():
        while queue:
            request = queue.pop()
            started = time.perf_counter()
            response = await service.digest(request)
            latencies.append(time.perf_counter() - started)
            responses.append(response)

    await asyncio.gather(*[client() for _ in range(CONCURRENCY)])
    return latencies, responses


def summarize(name, latencies, wall, responses):
    return {
        "workload": name,
        "requests": len(latencies),
        "p50_ms": round(percentile(latencies, 0.50) * 1e3, 4),
        "p95_ms": round(percentile(latencies, 0.95) * 1e3, 4),
        "throughput_rps": round(len(latencies) / wall, 1),
        "cached": sum(r.cached for r in responses),
        "coalesced": sum(r.coalesced for r in responses),
    }


def record(service_record, name, latencies, wall, responses, service):
    sizes = [r.result.size for r in responses if r.result is not None]
    service_record(
        f"service[{name}]",
        wall_time_s=wall,
        solution_size=max(sizes) if sizes else 0,
        instance={
            "workload": name,
            "documents": N_DOCS,
            "labels": len(TOPICS),
            "concurrency": CONCURRENCY,
            "seed": SEED,
        },
        counters={
            "requests": len(latencies),
            "solves": service.solves,
            "cached": sum(r.cached for r in responses),
            "coalesced": sum(r.coalesced for r in responses),
            "shed": sum(r.status == "shed" for r in responses),
        },
        p50_s=percentile(latencies, 0.50),
        p95_s=percentile(latencies, 0.95),
        throughput_rps=len(latencies) / wall,
    )


def test_service_load(service_record, service_figure):
    rng = random.Random(SEED)
    rows = []

    # -- cold: every request is a distinct key ---------------------------
    service = build_service()
    cold_requests = [
        DigestRequest(
            lam=20.0 + i,
            labels=rng.choice(LABEL_SETS),
        )
        for i in range(COLD_KEYS)
    ]
    started = time.perf_counter()
    cold_lat, cold_resp = asyncio.run(closed_loop(service, cold_requests))
    cold_wall = time.perf_counter() - started
    assert service.solves == COLD_KEYS
    assert all(r.status == "ok" for r in cold_resp)
    record(service_record, "cold", cold_lat, cold_wall, cold_resp, service)
    rows.append(summarize("cold", cold_lat, cold_wall, cold_resp))

    # -- warm: duplicate-heavy mix over WARM_KEYS keys -------------------
    service = build_service()
    keys = [
        DigestRequest(lam=30.0 + i, labels=LABEL_SETS[i % len(LABEL_SETS)])
        for i in range(WARM_KEYS)
    ]
    asyncio.run(closed_loop(service, keys))  # priming pass
    warm_requests = [rng.choice(keys) for _ in range(WARM_REQUESTS)]
    started = time.perf_counter()
    warm_lat, warm_resp = asyncio.run(closed_loop(service, warm_requests))
    warm_wall = time.perf_counter() - started
    assert all(r.cached for r in warm_resp)
    assert service.solves == WARM_KEYS  # priming only
    record(service_record, "warm", warm_lat, warm_wall, warm_resp, service)
    rows.append(summarize("warm", warm_lat, warm_wall, warm_resp))

    # -- coalesced: bursts of identical concurrent requests --------------
    service = build_service()
    burst_lat, burst_resp = [], []

    async def bursts():
        for b in range(BURSTS):
            request = DigestRequest(lam=40.0 + b, labels=None)

            async def timed():
                started = time.perf_counter()
                response = await service.digest(request)
                burst_lat.append(time.perf_counter() - started)
                burst_resp.append(response)

            await asyncio.gather(*[timed() for _ in range(BURST_SIZE)])

    started = time.perf_counter()
    asyncio.run(bursts())
    burst_wall = time.perf_counter() - started
    assert service.solves == BURSTS  # one solve per burst, not per request
    assert sum(r.coalesced for r in burst_resp) == BURSTS * (BURST_SIZE - 1)
    record(
        service_record, "coalesced", burst_lat, burst_wall, burst_resp,
        service,
    )
    rows.append(summarize("coalesced", burst_lat, burst_wall, burst_resp))

    report(rows, "Service load: cold vs warm vs coalesced")
    service_figure("service_load", rows)

    # the issue's acceptance bar: a warm duplicate-heavy workload beats
    # the cold one by at least 5x at the median
    cold_p50 = percentile(cold_lat, 0.50)
    warm_p50 = percentile(warm_lat, 0.50)
    assert warm_p50 * 5 <= cold_p50, (
        f"warm p50 {warm_p50 * 1e3:.3f}ms not 5x better than "
        f"cold p50 {cold_p50 * 1e3:.3f}ms"
    )


def test_overload_sheds_cleanly(service_record):
    """Closed-loop overload: tiny watermarks, zero unhandled exceptions."""
    rng = random.Random(SEED + 1)
    service = DiversificationService(
        TOPICS,
        ServiceConfig(
            dedup_distance=None,
            soft_watermark=1,
            hard_watermark=3,
        ),
    )
    texts = ("golf putt", "nba dunk", "cpu kernel", "film cinema")
    service.ingest(
        Document(i, float(i * 5), f"{texts[i % 4]} doc{i} word{i * 7}")
        for i in range(N_DOCS if SMOKE else 200)
    )
    n = 48 if not SMOKE else 16

    async def flood():
        return await asyncio.gather(
            *[
                service.digest(
                    DigestRequest(lam=50.0 + i, labels=rng.choice(LABEL_SETS))
                )
                for i in range(n)
            ]
        )

    started = time.perf_counter()
    responses = asyncio.run(flood())
    wall = time.perf_counter() - started
    statuses = {r.status for r in responses}
    assert statuses <= {"ok", "degraded", "shed"}
    assert any(r.status == "shed" for r in responses)
    assert any(r.status == "degraded" for r in responses)
    latencies = [r.latency_s for r in responses]
    service_record(
        "service[overload]",
        wall_time_s=wall,
        solution_size=max(
            (r.result.size for r in responses if r.result), default=0
        ),
        instance={
            "workload": "overload",
            "requests": n,
            "soft_watermark": 1,
            "hard_watermark": 3,
            "seed": SEED + 1,
        },
        counters={
            "requests": n,
            "ok": sum(r.status == "ok" for r in responses),
            "degraded": sum(r.status == "degraded" for r in responses),
            "shed": sum(r.status == "shed" for r in responses),
            "solves": service.solves,
        },
        p50_s=percentile(latencies, 0.50),
        p95_s=percentile(latencies, 0.95),
        throughput_rps=n / wall,
    )


def test_multi_tenant_slo(slo_record, slo_figure):
    """Multi-tenant SLO/audit bench: per-tenant latency quantiles and
    audit pass rates into ``BENCH_slo.json``.

    Tenants with distinct traffic mixes (cache-friendly vs cold-heavy)
    drive one service with full audit sampling; the per-tenant SLO
    snapshot and the auditor's verification stats become the artifact
    the ``service-smoke`` CI job validates and uploads.
    """
    from repro.observability import parse_prometheus

    rng = random.Random(SEED + 2)
    service = DiversificationService(
        TOPICS,
        ServiceConfig(dedup_distance=None, audit_sample=1.0,
                      audit_seed=SEED),
    )
    texts = ("golf putt", "nba dunk", "cpu kernel", "film cinema")
    service.ingest(
        Document(i, float(i * 5), f"{texts[i % 4]} doc{i} word{i * 7}")
        for i in range(N_DOCS)
    )
    per_tenant = 8 if SMOKE else 40
    tenants = {
        # cache-friendly: few keys, many repeats
        "dashboard": [
            DigestRequest(lam=30.0 + i % 3, session="dashboard")
            for i in range(per_tenant)
        ],
        # cold-heavy: every request a fresh key
        "analyst": [
            DigestRequest(lam=60.0 + i, session="analyst",
                          labels=rng.choice(LABEL_SETS))
            for i in range(per_tenant)
        ],
    }

    started = time.perf_counter()
    for requests in tenants.values():
        asyncio.run(closed_loop(service, requests))
    wall = time.perf_counter() - started

    findings = service.auditor.audit_pending()
    assert findings and all(f.covered for f in findings)
    snapshot = {
        (s["tenant"], s["algorithm"]): s for s in service.slo.snapshot()
    }
    audit = service.auditor.snapshot()
    assert audit["pass_rate"] == 1.0
    assert audit["sampled"] == 2 * per_tenant

    rows = []
    for tenant in sorted(tenants):
        record_ = snapshot[(tenant, service.config.algorithm)]
        latency = record_["latency"]
        assert record_["lifetime"]["requests"] == per_tenant
        assert record_["burn"]["fast"]["burn_rate"] == 0.0
        rows.append({
            "tenant": tenant,
            "requests": record_["lifetime"]["requests"],
            "p50_ms": round(latency["p50"] * 1e3, 4),
            "p95_ms": round(latency["p95"] * 1e3, 4),
            "p99_ms": round(latency["p99"] * 1e3, 4),
            "cache_hits": record_["cache_hits"],
            "budget": record_["error_budget_remaining"],
        })
        slo_record(
            f"slo[{tenant}]",
            wall_time_s=wall,
            solution_size=0,
            instance={
                "tenant": tenant,
                "documents": N_DOCS,
                "requests": per_tenant,
                "objective": service.config.slo_objective,
                "seed": SEED + 2,
            },
            counters={
                "requests": record_["lifetime"]["requests"],
                "failures": record_["lifetime"]["failures"],
                "cache_hits": record_["cache_hits"],
                "audited": audit["audited"],
                "coverage_violations": audit["coverage_violations"],
            },
            p50_s=latency["p50"],
            p95_s=latency["p95"],
            p99_s=latency["p99"],
            audit_pass_rate=audit["pass_rate"],
            error_budget_remaining=record_["error_budget_remaining"],
        )
    # repeats are absorbed by the cache or the coalescer: one solve per
    # distinct key (3 dashboard lambdas + per_tenant fresh analyst keys)
    assert service.solves == per_tenant + 3
    by_tenant = {r["tenant"]: r for r in rows}
    assert by_tenant["dashboard"]["cache_hits"] >= 1
    assert by_tenant["analyst"]["cache_hits"] == 0

    report(rows, "Per-tenant SLO: latency quantiles and audit")
    slo_figure("tenant_slo", rows)

    # the exposition the deployment would scrape must stay lintable
    samples = parse_prometheus(service.slo_prometheus())
    assert {s["labels"]["tenant"] for s in samples} == set(tenants)
