"""Cluster observability overhead, measured and gated.

Four experiments over the fig13 day workload, all emitted into
``BENCH_observability.json``:

* ``test_warm_digest_overhead_gate`` — the tentpole's acceptance gate:
  with the collector at a 1 s interval, trace sampling at 10 % and the
  profiler off, warm ``digest()`` p50 must regress no more than 5 %
  against an observability-disabled run of the same mix (relaxed under
  ``BENCH_SMOKE`` for shared CI runners).
* ``test_collector_overhead_vs_scrape_interval`` — the cost of one
  collector cycle against a live 3-node fleet, projected as a duty
  cycle at several scrape intervals.
* ``test_trace_sampling_cost`` — warm digest p50 at head-sampling
  rates 0 %, 10 % and 100 % (spans recorded, assembled and persisted).
* ``test_profiler_overhead_100hz`` — the same digest mix with the
  100 Hz wall-clock sampler running in-process versus off.

Workers run with views off; every timed request was served once before
timing starts, so the numbers measure the warm read path the SLOs are
written against.
"""

from __future__ import annotations

import asyncio
import tempfile
import time
from typing import List, Optional

from repro.cluster.harness import LocalCluster
from repro.cluster.router import ClusterConfig
from repro.cluster.worker import default_worker_config
from repro.experiments.common import make_day_instance
from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.observability import facade
from repro.observability.profiling import Profiler
from repro.observability.traces import (
    SamplingPolicy,
    TracePipeline,
    TraceSink,
)
from repro.service import DigestRequest

from .conftest import SMOKE, report

SEED = 20140328
LAM_S = 300.0
NUM_LABELS = 5
SCALE = 0.002 if SMOKE else 0.004
DURATION = 21_600.0 if SMOKE else 43_200.0
PASSES = 3 if SMOKE else 10
ROUNDS = 3 if SMOKE else 8
BLOCK_PASSES = 1 if SMOKE else 2
MAX_P50_REGRESSION = 0.50 if SMOKE else 0.05
COLLECTOR_CYCLES = 3 if SMOKE else 10
SCRAPE_INTERVALS = (0.25, 0.5, 1.0)
SAMPLING_RATES = (0.0, 0.1, 1.0)

LABEL_MIX = (
    ("q0",),
    ("q2",),
    ("q0", "q1"),
    ("q2", "q4"),
    None,
    ("q1", "q3", "q4"),
)

_DAY_DOCS: Optional[List[Document]] = None


def day_queries() -> List[TopicQuery]:
    return [TopicQuery(f"q{i}", [f"kwq{i}"]) for i in range(NUM_LABELS)]


def day_documents() -> List[Document]:
    global _DAY_DOCS
    if _DAY_DOCS is None:
        instance = make_day_instance(
            seed=SEED, num_labels=NUM_LABELS, lam=LAM_S,
            scale=SCALE, duration=DURATION,
        )
        _DAY_DOCS = [
            Document(
                post.uid,
                post.value,
                " ".join(sorted(f"kw{label}" for label in post.labels))
                + f" body{post.uid}",
            )
            for post in instance.posts
        ]
    return _DAY_DOCS


def request_mix() -> List[DigestRequest]:
    return [DigestRequest(lam=LAM_S, labels=labels)
            for labels in LABEL_MIX]


def batch_config():
    return default_worker_config(views=False)


def bench_cluster_config() -> ClusterConfig:
    return ClusterConfig(hedge_delay=0.05, request_timeout=10.0)


def percentile(samples: List[float], q: float) -> float:
    ordered = sorted(samples)
    index = int(round(q * (len(ordered) - 1)))
    return ordered[max(0, min(index, len(ordered) - 1))]


def run(coro):
    return asyncio.run(coro)


async def warm(router, requests) -> None:
    for request in requests:
        response = await router.digest(request)
        assert response.status == "ok"


async def timed_passes(router, requests, passes: int) -> List[float]:
    """Serial warm digests; per-request latency in ms."""
    latencies = []
    for _ in range(passes):
        for request in requests:
            start = time.perf_counter()
            response = await router.digest(request)
            latencies.append((time.perf_counter() - start) * 1000.0)
            assert response.status == "ok"
    return latencies


def instance_block(docs) -> dict:
    return {
        "workload": "fig13_day",
        "documents": len(docs),
        "labels": NUM_LABELS,
        "nodes": 3,
        "lam": LAM_S,
    }


def test_warm_digest_overhead_gate(observability_record,
                                   observability_figure):
    """Interleaved off/on blocks on ONE cluster: a fresh cluster's
    run-to-run variance (ports, allocator state, cache warmth) is
    larger than the overhead under test, so both sides must share the
    same process state and drift must hit them alike.  The gate runs
    on min-of-rounds p50 — minima are robust to scheduler preemption.
    """
    docs = day_documents()
    requests = request_mix()

    async def go(sink_path: str):
        # the 10 % sampling policy applies at every tier: the router's
        # pipeline rate gates router spans, and the workers' services
        # run the same deterministic coin on their own traces (inert
        # during the off blocks — the facade is disabled there)
        pipeline = TracePipeline(
            policy=SamplingPolicy(rate=0.1),
            sink=TraceSink(sink_path),
        )
        async with LocalCluster(
            day_queries(), nodes=3, config=bench_cluster_config(),
            worker_config=default_worker_config(
                views=False, trace_sample=0.1,
            ),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            await warm(router, requests)
            router.enable_collector(interval=1.0)
            # one throwaway round per side before timing starts
            facade.disable()
            await timed_passes(router, requests, 1)
            router.attach_trace_pipeline(pipeline)
            with facade.session():
                await router.collect_once()
                await timed_passes(router, requests, 1)

            off_p50s, on_p50s = [], []
            off_wall = on_wall = 0.0
            total_off = total_on = 0
            for _ in range(ROUNDS):
                router.attach_trace_pipeline(None)
                facade.disable()
                started = time.perf_counter()
                off = await timed_passes(
                    router, requests, BLOCK_PASSES
                )
                off_wall += time.perf_counter() - started
                off_p50s.append(percentile(off, 0.50))
                total_off += len(off)

                router.attach_trace_pipeline(pipeline)
                with facade.session():
                    await router.collect_once()
                    started = time.perf_counter()
                    on = await timed_passes(
                        router, requests, BLOCK_PASSES
                    )
                    on_wall += time.perf_counter() - started
                on_p50s.append(percentile(on, 0.50))
                total_on += len(on)
            snapshot = router.introspect()["traces"]
            fleet = router.health()["fleet"]
            return (off_p50s, on_p50s, off_wall, on_wall,
                    total_off, total_on, snapshot, fleet)

    with tempfile.TemporaryDirectory() as scratch:
        (off_p50s, on_p50s, off_wall, on_wall, total_off, total_on,
         traces, fleet) = run(go(f"{scratch}/traces.jsonl"))

    p50_off = min(off_p50s)
    p50_on = min(on_p50s)
    regression = p50_on / p50_off - 1.0
    row = {
        "rounds": ROUNDS,
        "requests": total_on,
        "p50_off_ms": round(p50_off, 3),
        "p50_on_ms": round(p50_on, 3),
        "regression_pct": round(regression * 100.0, 2),
        "gate_pct": round(MAX_P50_REGRESSION * 100.0, 1),
        "passed": regression <= MAX_P50_REGRESSION,
        "traces_offered": traces["offered"],
        "traces_kept": traces["kept"],
        "collector_cycles": fleet["cycles"],
    }
    observability_record(
        "obs_digest_disabled",
        wall_time_s=off_wall,
        solution_size=total_off,
        instance=instance_block(docs),
        counters={"requests": total_off},
        p50_ms=row["p50_off_ms"],
    )
    observability_record(
        "obs_digest_enabled",
        wall_time_s=on_wall,
        solution_size=total_on,
        instance=instance_block(docs),
        counters={
            "requests": total_on,
            "traces_offered": traces["offered"],
            "traces_kept": traces["kept"],
            "collector_cycles": fleet["cycles"],
        },
        p50_ms=row["p50_on_ms"],
        regression_pct=row["regression_pct"],
        gate_pct=row["gate_pct"],
    )
    observability_figure("obs_warm_digest_overhead_gate", [row])
    report([row], "Observability: warm digest p50 overhead gate")
    assert regression <= MAX_P50_REGRESSION, (
        f"collector@1s + 10% sampling regressed warm digest p50 by "
        f"{regression:+.2%}, above the {MAX_P50_REGRESSION:.0%} gate"
    )


def test_collector_overhead_vs_scrape_interval(observability_record,
                                               observability_figure):
    docs = day_documents()
    requests = request_mix()

    async def go():
        async with LocalCluster(
            day_queries(), nodes=3, config=bench_cluster_config(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            await warm(router, requests)
            router.enable_collector(interval=1.0)
            await router.collect_once()  # first cycle: full snapshots
            started = time.perf_counter()
            for _ in range(COLLECTOR_CYCLES):
                summary = await router.collect_once()
                assert summary["failed"] == []
            return (time.perf_counter() - started) / COLLECTOR_CYCLES

    cycle_s = run(go())
    rows = []
    for interval in SCRAPE_INTERVALS:
        rows.append({
            "interval_s": interval,
            "cycle_ms": round(cycle_s * 1000.0, 3),
            "duty_cycle_pct": round(cycle_s / interval * 100.0, 3),
        })
    observability_record(
        "obs_collector_cycle",
        wall_time_s=cycle_s * COLLECTOR_CYCLES,
        solution_size=COLLECTOR_CYCLES,
        instance=instance_block(docs),
        counters={"cycles": COLLECTOR_CYCLES},
        cycle_ms=rows[0]["cycle_ms"],
    )
    observability_figure("obs_collector_interval", rows)
    report(rows, "Observability: collector cost vs scrape interval")
    # a 1 s collector must not eat a meaningful slice of the fleet
    assert rows[-1]["duty_cycle_pct"] < 50.0


def test_trace_sampling_cost(observability_record,
                             observability_figure):
    docs = day_documents()
    requests = request_mix()

    async def one_rate(rate: float, sink_path: str):
        async with LocalCluster(
            day_queries(), nodes=3, config=bench_cluster_config(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            await warm(router, requests)
            router.attach_trace_pipeline(TracePipeline(
                policy=SamplingPolicy(rate=rate),
                sink=TraceSink(sink_path),
            ))
            with facade.session():
                started = time.perf_counter()
                latencies = await timed_passes(
                    router, requests, PASSES
                )
                wall_s = time.perf_counter() - started
            return latencies, wall_s, router.introspect()["traces"]

    rows = []
    for rate in SAMPLING_RATES:
        with tempfile.TemporaryDirectory() as scratch:
            latencies, wall_s, traces = run(
                one_rate(rate, f"{scratch}/traces.jsonl")
            )
        row = {
            "rate": rate,
            "requests": len(latencies),
            "p50_ms": round(percentile(latencies, 0.50), 3),
            "p99_ms": round(percentile(latencies, 0.99), 3),
            "kept": traces["kept"],
            "skeletons": traces["skeletons"],
        }
        rows.append(row)
        observability_record(
            f"obs_sampling_{rate}",
            wall_time_s=wall_s,
            solution_size=len(latencies),
            instance=instance_block(docs),
            counters={
                "requests": len(latencies),
                "kept": traces["kept"],
            },
            p50_ms=row["p50_ms"],
            p99_ms=row["p99_ms"],
        )
    # full sampling keeps every trace; zero keeps none (all served ok)
    assert rows[0]["kept"] == 0
    assert rows[-1]["kept"] == rows[-1]["requests"]
    observability_figure("obs_trace_sampling", rows)
    report(rows, "Observability: trace sampling cost by rate")


def test_profiler_overhead_100hz(observability_record,
                                 observability_figure):
    docs = day_documents()
    requests = request_mix()

    async def one_side(profiled: bool):
        async with LocalCluster(
            day_queries(), nodes=3, config=bench_cluster_config(),
            worker_config=batch_config(),
        ) as cluster:
            router = cluster.router
            await router.ingest(docs)
            await warm(router, requests)
            profiler = Profiler(hz=100) if profiled else None
            if profiler is not None:
                profiler.start()
            try:
                started = time.perf_counter()
                latencies = await timed_passes(
                    router, requests, PASSES
                )
                wall_s = time.perf_counter() - started
            finally:
                if profiler is not None:
                    profiler.stop()
            samples = profiler.sample_count if profiler else 0
            return latencies, wall_s, samples

    off_latencies, off_wall, _ = run(one_side(False))
    on_latencies, on_wall, samples = run(one_side(True))
    overhead = on_wall / off_wall - 1.0
    row = {
        "hz": 100,
        "samples": samples,
        "wall_off_s": round(off_wall, 4),
        "wall_on_s": round(on_wall, 4),
        "overhead_pct": round(overhead * 100.0, 2),
        "p50_off_ms": round(percentile(off_latencies, 0.50), 3),
        "p50_on_ms": round(percentile(on_latencies, 0.50), 3),
    }
    observability_record(
        "obs_profiler_100hz",
        wall_time_s=on_wall,
        solution_size=len(on_latencies),
        instance=instance_block(docs),
        counters={"requests": len(on_latencies), "samples": samples},
        overhead_pct=row["overhead_pct"],
    )
    observability_figure("obs_profiler_overhead", [row])
    report([row], "Observability: 100 Hz profiler overhead")
