"""Microbenchmarks — raw solver throughput on a reference workload.

Unlike the figure benches (single-shot experiment regeneration), these use
pytest-benchmark's real measurement loop, giving stable per-call numbers
for the solvers a deployment would run per user: Scan, Scan+, GreedySC and
the streaming pass.  The reference workload is a 10-minute window at the
paper's |L|=2 matching rate, scaled as per EXPERIMENTS.md; ``BENCH_SMOKE=1``
shrinks it to a one-minute window so CI can exercise the emission path.

Each bench also performs one *observed* run under a fresh observability
session and records wall time, work counters and solution size into the
session's BENCH trajectory (see conftest) — the per-solver entries of
``benchmarks/results/BENCH_throughput.json``.
"""

import pytest

from .conftest import SMOKE

from repro.core.greedy_sc import greedy_sc
from repro.core.scan import scan, scan_plus
from repro.core.streaming import stream_solve
from repro.experiments.common import make_effectiveness_instance
from repro.observability import facade


@pytest.fixture(scope="module")
def workload():
    return make_effectiveness_instance(
        seed=0, num_labels=3, lam=30.0, overlap=1.4,
        **({"duration": 60.0} if SMOKE else {}),
    )


def _observed_run(bench_record, workload, solver, run, **extra):
    """One instrumented run, recorded into the BENCH trajectory."""
    with facade.session() as bundle:
        result = run()
    bench_record(
        solver,
        wall_time_s=result.elapsed,
        solution_size=result.size,
        instance={
            "posts": len(workload.posts),
            "labels": len(workload.labels),
            "lam": workload.lam,
            "smoke": SMOKE,
        },
        counters=bundle.registry.counters(),
        **extra,
    )
    return result


def test_throughput_scan(benchmark, workload, bench_record):
    observed = _observed_run(
        bench_record, workload, "scan", lambda: scan(workload)
    )
    solution = benchmark(lambda: scan(workload))
    assert solution.size > 0
    assert solution.uids == observed.uids


def test_throughput_scan_plus(benchmark, workload, bench_record):
    observed = _observed_run(
        bench_record, workload, "scan_plus", lambda: scan_plus(workload)
    )
    solution = benchmark(lambda: scan_plus(workload))
    assert solution.size > 0
    assert solution.uids == observed.uids


def test_throughput_greedy_sc(benchmark, workload, bench_record):
    observed = _observed_run(
        bench_record, workload, "greedy_sc", lambda: greedy_sc(workload)
    )
    solution = benchmark(lambda: greedy_sc(workload))
    assert solution.size > 0
    assert solution.uids == observed.uids


def test_throughput_stream_scan(benchmark, workload, bench_record):
    _observed_run(
        bench_record, workload, "stream_scan",
        lambda: stream_solve("stream_scan", workload, tau=15.0),
        tau=15.0,
    )
    result = benchmark(
        lambda: stream_solve("stream_scan", workload, tau=15.0)
    )
    assert result.size > 0


def test_throughput_stream_greedy(benchmark, workload, bench_record):
    _observed_run(
        bench_record, workload, "stream_greedy_sc",
        lambda: stream_solve("stream_greedy_sc", workload, tau=15.0),
        tau=15.0,
    )
    result = benchmark(
        lambda: stream_solve("stream_greedy_sc", workload, tau=15.0)
    )
    assert result.size > 0


def test_throughput_instant(benchmark, workload, bench_record):
    _observed_run(
        bench_record, workload, "instant",
        lambda: stream_solve("instant", workload, tau=0.0),
        tau=0.0,
    )
    result = benchmark(
        lambda: stream_solve("instant", workload, tau=0.0)
    )
    assert result.size > 0
