"""Microbenchmarks — raw solver throughput on a reference workload.

Unlike the figure benches (single-shot experiment regeneration), these use
pytest-benchmark's real measurement loop, giving stable per-call numbers
for the solvers a deployment would run per user: Scan, Scan+, GreedySC and
the streaming pass.  The reference workload is a 10-minute window at the
paper's |L|=2 matching rate, scaled as per EXPERIMENTS.md.
"""

import pytest

from repro.core.greedy_sc import greedy_sc
from repro.core.scan import scan, scan_plus
from repro.core.streaming import stream_solve
from repro.experiments.common import make_effectiveness_instance


@pytest.fixture(scope="module")
def workload():
    return make_effectiveness_instance(
        seed=0, num_labels=3, lam=30.0, overlap=1.4
    )


def test_throughput_scan(benchmark, workload):
    solution = benchmark(lambda: scan(workload))
    assert solution.size > 0


def test_throughput_scan_plus(benchmark, workload):
    solution = benchmark(lambda: scan_plus(workload))
    assert solution.size > 0


def test_throughput_greedy_sc(benchmark, workload):
    solution = benchmark(lambda: greedy_sc(workload))
    assert solution.size > 0


def test_throughput_stream_scan(benchmark, workload):
    result = benchmark(
        lambda: stream_solve("stream_scan", workload, tau=15.0)
    )
    assert result.size > 0


def test_throughput_stream_greedy(benchmark, workload):
    result = benchmark(
        lambda: stream_solve("stream_greedy_sc", workload, tau=15.0)
    )
    assert result.size > 0


def test_throughput_instant(benchmark, workload):
    result = benchmark(
        lambda: stream_solve("instant", workload, tau=0.0)
    )
    assert result.size > 0
