"""Ablation — fixed versus proportional lambda (Section 6).

On a two-regime stream (dense burst, sparse tail), the variable lambda of
Equation (2) must shift a larger share of the output into the dense region
than the fixed lambda does — that is the proportional-diversity claim —
while still representing the sparse tail (no region starves).
"""

from repro.evaluation.metrics import mean
from repro.experiments import ablation_proportional

from .conftest import report


def test_ablation_proportional(benchmark):
    rows = benchmark.pedantic(
        lambda: ablation_proportional.run(seed=0, trials=4),
        rounds=1, iterations=1,
    )
    report(rows, ablation_proportional.DESCRIPTION)

    fixed_share = mean(r["fixed_dense_share"] for r in rows)
    variable_share = mean(r["variable_dense_share"] for r in rows)
    input_share = mean(r["input_dense_share"] for r in rows)

    # proportionality: variable lambda tracks the input distribution more
    # closely than fixed lambda does
    assert variable_share > fixed_share
    assert abs(variable_share - input_share) <= abs(
        fixed_share - input_share
    )
    # but rare perspectives stay represented (smooth, not winner-take-all)
    assert variable_share < 1.0
