"""Figure 9 — streaming relative error versus lambda, per fixed tau.

Paper shapes: errors generally increase with lambda (more coverage
combinations make the offline optimum harder to match), and
StreamGreedySC+ tracks at or slightly below StreamGreedySC.
"""

from repro.evaluation.metrics import mean
from repro.experiments import fig9_stream_lambda

from .conftest import report


def test_fig9_stream_lambda(benchmark):
    rows = benchmark.pedantic(
        lambda: fig9_stream_lambda.run(
            seed=0,
            taus=(30.0, 60.0, 90.0),
            lams=(30.0, 60.0, 90.0, 120.0),
            trials=4,
        ),
        rounds=1, iterations=1,
    )
    report(rows, fig9_stream_lambda.DESCRIPTION)

    # StreamGreedySC+ at or below StreamGreedySC on average per tau
    for tau in (30.0, 60.0, 90.0):
        series = [r for r in rows if r["tau"] == tau]
        plus = mean(r["stream_greedy_sc+_err"] for r in series)
        plain = mean(r["stream_greedy_sc_err"] for r in series)
        assert plus <= plain + 0.05

    # errors grow with lambda on average across taus (sweep endpoints)
    for name in ("stream_scan+", "stream_greedy_sc"):
        low = mean(
            r[f"{name}_err"] for r in rows if r["lam"] == 30.0
        )
        high = mean(
            r[f"{name}_err"] for r in rows if r["lam"] == 120.0
        )
        assert high >= low - 0.1
