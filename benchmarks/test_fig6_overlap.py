"""Figure 6 — relative error and absolute size versus overlap rate.

Paper shapes: (a-c) GreedySC's error sits below Scan/Scan+ except when the
overlap rate approaches 1, where Scan's per-label optimality makes it
exact; (d) absolute sizes fall as overlap grows.
"""

from repro.experiments import fig6_overlap

from .conftest import report


def test_fig6_overlap(benchmark):
    rows = benchmark.pedantic(
        lambda: fig6_overlap.run(
            seed=0,
            overlaps=(1.0, 1.3, 1.6, 2.0),
            trials=3,
            lam=30.0,
        ),
        rounds=1, iterations=1,
    )
    report(rows, fig6_overlap.DESCRIPTION)

    by_overlap = {row["overlap_target"]: row for row in rows}

    # overlap == 1: Scan is optimal (per-label optimality => global)
    assert by_overlap[1.0]["scan_err"] == 0.0
    assert by_overlap[1.0]["scan+_err"] == 0.0

    # away from overlap 1, GreedySC beats Scan
    for overlap in (1.3, 1.6, 2.0):
        row = by_overlap[overlap]
        assert row["greedy_sc_err"] <= row["scan_err"]

    # absolute sizes shrink as overlap grows (Fig 6d)
    assert (
        by_overlap[2.0]["greedy_sc_size"]
        < by_overlap[1.0]["greedy_sc_size"]
    )
    assert by_overlap[2.0]["scan+_size"] < by_overlap[1.0]["scan+_size"]
