"""The sharded parallel engine versus the serial solvers.

Runs the Figure-13 day-long workload (``make_day_instance``, 24 h of
bursty arrivals) through the serial solvers and their
:mod:`repro.engine` counterparts, and emits ``BENCH_parallel.json``
recording wall times, engine counters, parity mode and the speedups.

The headline comparison is GreedySC: the day workload is gap-free, so
the engine falls back to lambda-halo sharding — each shard's greedy
rescan pays quadratically less than the monolithic run, which is why the
sharded solver wins even on a single core (the CI runner has one).  Scan
and Scan+ are benched in their exact-parity configuration (``split:
auto``) where the contract is identical picks, not speed.

``BENCH_SMOKE=1`` shrinks the workload and drops the speedup gate (at
smoke scale the process-pool constant dominates); the artifact is still
emitted and validated, which is what the CI smoke job checks.
"""

from __future__ import annotations

import time

from repro.core.coverage import is_cover
from repro.core.greedy_sc import greedy_sc
from repro.core.scan import scan, scan_plus
from repro.engine import (
    parallel_greedy_sc,
    parallel_scan,
    parallel_scan_plus,
)
from repro.experiments.common import make_day_instance
from repro.observability import facade

from .conftest import SMOKE, report

LAM_S = 300.0  # 5 minutes, the sweep point with the densest pick load
NUM_LABELS = 5
SCALE = 0.004 if SMOKE else 0.02
DURATION = 21_600.0 if SMOKE else 86_400.0
WORKERS = (1, 2) if SMOKE else (1, 2, 4)
MAX_SHARDS = 16 if SMOKE else 48

_INSTANCE = None


def day_instance():
    global _INSTANCE
    if _INSTANCE is None:
        _INSTANCE = make_day_instance(
            seed=0, num_labels=NUM_LABELS, lam=LAM_S,
            scale=SCALE, duration=DURATION,
        )
    return _INSTANCE


def timed(solve, *args, **kwargs):
    """One observed solver run: (solution, wall seconds, counters)."""
    with facade.session() as bundle:
        start = time.perf_counter()
        solution = solve(*args, **kwargs)
        wall = time.perf_counter() - start
    return solution, wall, bundle.registry.counters()


def describe(instance) -> dict:
    return {
        "workload": "fig13-day",
        "posts": len(instance),
        "labels": len(instance.labels),
        "lam_s": instance.lam,
        "duration_s": DURATION,
        "scale": SCALE,
        "smoke": SMOKE,
    }


def test_parallel_greedy_sc_speedup(parallel_record, parallel_figure):
    """Sharded GreedySC (halo split, process workers) vs serial."""
    instance = day_instance()
    serial, serial_wall, serial_counters = timed(greedy_sc, instance)
    parallel_record(
        "greedy_sc", wall_time_s=serial_wall,
        solution_size=serial.size, instance=describe(instance),
        counters=serial_counters, executor="none", workers=0,
        split="serial", parity="baseline", speedup_vs_serial=1.0,
    )

    rows = [{
        "solver": "greedy_sc", "executor": "none", "workers": 0,
        "wall_ms": round(serial_wall * 1e3, 1), "size": serial.size,
        "speedup": 1.0,
    }]
    speedups = {}
    for workers in WORKERS:
        solution, wall, counters = timed(
            parallel_greedy_sc, instance, split="halo",
            executor="process", workers=workers, max_shards=MAX_SHARDS,
        )
        assert is_cover(instance, solution.posts)
        speedup = serial_wall / wall
        speedups[workers] = speedup
        parallel_record(
            "parallel_greedy_sc", wall_time_s=wall,
            solution_size=solution.size, instance=describe(instance),
            counters=counters, executor="process", workers=workers,
            max_shards=MAX_SHARDS, split="halo", parity="verified",
            size_delta=solution.size - serial.size,
            speedup_vs_serial=round(speedup, 3),
        )
        rows.append({
            "solver": "parallel_greedy_sc", "executor": "process",
            "workers": workers, "wall_ms": round(wall * 1e3, 1),
            "size": solution.size, "speedup": round(speedup, 2),
        })
        # halo seams may add picks but must never explode the cover
        assert solution.size <= serial.size * 1.25 + MAX_SHARDS

    report(rows, "Parallel GreedySC vs serial (fig13 day workload)")
    parallel_figure("parallel_greedy_sc_speedup", rows)

    if not SMOKE:
        # the acceptance gate: >= 2x wall-time win at 4 process workers
        assert speedups[4] >= 2.0, (
            f"sharded GreedySC speedup {speedups[4]:.2f}x < 2x "
            f"(serial {serial_wall * 1e3:.0f} ms)"
        )


def test_parallel_scan_parity_and_time(parallel_record, parallel_figure):
    """Sharded vectorised Scan: exact parity, timings recorded."""
    instance = day_instance()
    serial, serial_wall, serial_counters = timed(scan, instance)
    parallel_record(
        "scan", wall_time_s=serial_wall, solution_size=serial.size,
        instance=describe(instance), counters=serial_counters,
        executor="none", workers=0, split="serial",
        parity="baseline", speedup_vs_serial=1.0,
    )
    rows = [{
        "solver": "scan", "executor": "none", "workers": 0,
        "wall_ms": round(serial_wall * 1e3, 2), "size": serial.size,
    }]
    configs = [("serial", 1)] + [
        ("process", w) for w in WORKERS if w > 1
    ]
    for executor, workers in configs:
        solution, wall, counters = timed(
            parallel_scan, instance, executor=executor,
            workers=workers, max_shards=MAX_SHARDS,
        )
        assert solution.uids == serial.uids  # pick-for-pick
        parallel_record(
            "parallel_scan", wall_time_s=wall,
            solution_size=solution.size, instance=describe(instance),
            counters=counters, executor=executor, workers=workers,
            max_shards=MAX_SHARDS, split="auto", parity="exact",
            speedup_vs_serial=round(serial_wall / wall, 3),
        )
        rows.append({
            "solver": "parallel_scan", "executor": executor,
            "workers": workers, "wall_ms": round(wall * 1e3, 2),
            "size": solution.size,
        })
    report(rows, "Parallel Scan vs serial (fig13 day workload)")
    parallel_figure("parallel_scan_parity", rows)


def test_parallel_scan_plus_parity_and_time(
    parallel_record, parallel_figure
):
    """Sharded Scan+: exact parity under auto split, halo verified."""
    instance = day_instance()
    serial, serial_wall, serial_counters = timed(scan_plus, instance)
    parallel_record(
        "scan_plus", wall_time_s=serial_wall,
        solution_size=serial.size, instance=describe(instance),
        counters=serial_counters, executor="none", workers=0,
        split="serial", parity="baseline", speedup_vs_serial=1.0,
    )
    rows = [{
        "solver": "scan_plus", "executor": "none", "workers": 0,
        "wall_ms": round(serial_wall * 1e3, 2), "size": serial.size,
    }]

    solution, wall, counters = timed(
        parallel_scan_plus, instance, max_shards=MAX_SHARDS,
    )
    assert solution.uids == serial.uids  # auto split: exact parity
    parallel_record(
        "parallel_scan_plus", wall_time_s=wall,
        solution_size=solution.size, instance=describe(instance),
        counters=counters, executor="serial", workers=1,
        max_shards=MAX_SHARDS, split="auto", parity="exact",
        speedup_vs_serial=round(serial_wall / wall, 3),
    )
    rows.append({
        "solver": "parallel_scan_plus", "executor": "serial",
        "workers": 1, "wall_ms": round(wall * 1e3, 2),
        "size": solution.size,
    })

    halo_workers = max(WORKERS)
    solution, wall, counters = timed(
        parallel_scan_plus, instance, split="halo",
        executor="process", workers=halo_workers,
        max_shards=MAX_SHARDS,
    )
    assert is_cover(instance, solution.posts)
    parallel_record(
        "parallel_scan_plus", wall_time_s=wall,
        solution_size=solution.size, instance=describe(instance),
        counters=counters, executor="process", workers=halo_workers,
        max_shards=MAX_SHARDS, split="halo", parity="verified",
        size_delta=solution.size - serial.size,
        speedup_vs_serial=round(serial_wall / wall, 3),
    )
    rows.append({
        "solver": "parallel_scan_plus (halo)", "executor": "process",
        "workers": halo_workers, "wall_ms": round(wall * 1e3, 2),
        "size": solution.size,
    })
    report(rows, "Parallel Scan+ vs serial (fig13 day workload)")
    parallel_figure("parallel_scan_plus_parity", rows)
