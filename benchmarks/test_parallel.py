"""The sharded parallel engine versus the serial solvers.

Runs the Figure-13 day-long workload (``make_day_instance``, 24 h of
bursty arrivals) through the serial solvers and their
:mod:`repro.engine` counterparts, and emits ``BENCH_parallel.json``
recording wall times, engine counters, parity mode and the speedups.

The headline comparison is GreedySC: the day workload is gap-free, so
the engine falls back to lambda-halo sharding — each shard's greedy
rescan pays quadratically less than the monolithic run, which is why the
sharded solver wins even on a single core (the CI runner has one).  Scan
and Scan+ are benched in their exact-parity configuration (``split:
auto``) where the contract is identical picks, not speed.

``BENCH_SMOKE=1`` shrinks the workload and drops the speedup gate (at
smoke scale the process-pool constant dominates); the artifact is still
emitted and validated, which is what the CI smoke job checks.
"""

from __future__ import annotations

import pickle
import time

from repro.core.coverage import is_cover
from repro.core.greedy_sc import greedy_sc
from repro.core.scan import scan, scan_plus
from repro.engine import (
    ProcessExecutor,
    parallel_greedy_sc,
    parallel_scan,
    parallel_scan_plus,
    shared_snapshot,
    snapshot,
)
from repro.engine.sharding import plan_halo_shards
from repro.experiments.common import make_day_instance
from repro.observability import facade

from .conftest import SMOKE, report

LAM_S = 300.0  # 5 minutes, the sweep point with the densest pick load
NUM_LABELS = 5
SCALE = 0.004 if SMOKE else 0.02
DURATION = 21_600.0 if SMOKE else 86_400.0
WORKERS = (1, 2) if SMOKE else (1, 2, 4)
MAX_SHARDS = 16 if SMOKE else 48

_INSTANCE = None


def day_instance():
    global _INSTANCE
    if _INSTANCE is None:
        _INSTANCE = make_day_instance(
            seed=0, num_labels=NUM_LABELS, lam=LAM_S,
            scale=SCALE, duration=DURATION,
        )
    return _INSTANCE


def timed(solve, *args, **kwargs):
    """One observed solver run: (solution, wall seconds, counters)."""
    with facade.session() as bundle:
        start = time.perf_counter()
        solution = solve(*args, **kwargs)
        wall = time.perf_counter() - start
    return solution, wall, bundle.registry.counters()


def describe(instance) -> dict:
    return {
        "workload": "fig13-day",
        "posts": len(instance),
        "labels": len(instance.labels),
        "lam_s": instance.lam,
        "duration_s": DURATION,
        "scale": SCALE,
        "smoke": SMOKE,
    }


def test_parallel_greedy_sc_speedup(parallel_record, parallel_figure):
    """Sharded GreedySC (halo split, process workers) vs serial.

    Each worker count runs twice on ONE persistent executor: the cold
    call pays pool spin-up, the warm call is what a service holding the
    executor observes.  The gap between them is the per-call overhead
    the persistent-pool fix removed, and the warm walls drive the
    ``scaling_efficiency`` figure.
    """
    instance = day_instance()
    # two baseline runs, best-of: the CI box is shared and a single
    # sample can swing tens of percent — every wall here is a min-of-2
    serial, serial_wall, serial_counters = timed(greedy_sc, instance)
    _again, serial_again, _c = timed(greedy_sc, instance)
    serial_wall = min(serial_wall, serial_again)
    parallel_record(
        "greedy_sc", wall_time_s=serial_wall,
        solution_size=serial.size, instance=describe(instance),
        counters=serial_counters, executor="none", workers=0,
        split="serial", parity="baseline", speedup_vs_serial=1.0,
    )

    rows = [{
        "solver": "greedy_sc", "executor": "none", "workers": 0,
        "wall_ms": round(serial_wall * 1e3, 1), "size": serial.size,
        "speedup": 1.0,
    }]
    efficiency_rows = []
    speedups = {}
    warm_walls = {}
    for workers in WORKERS:
        with ProcessExecutor(workers) as executor:
            cold, cold_wall, _cold_counters = timed(
                parallel_greedy_sc, instance, split="halo",
                executor=executor, max_shards=MAX_SHARDS,
            )
            solution, wall, counters = timed(
                parallel_greedy_sc, instance, split="halo",
                executor=executor, max_shards=MAX_SHARDS,
            )
            _warm2, wall2, _c2 = timed(
                parallel_greedy_sc, instance, split="halo",
                executor=executor, max_shards=MAX_SHARDS,
            )
            wall = min(wall, wall2)
        assert is_cover(instance, solution.posts)
        assert solution.size == cold.size  # warm != different answer
        speedup = serial_wall / wall
        speedups[workers] = speedup
        warm_walls[workers] = wall
        parallel_record(
            "parallel_greedy_sc", wall_time_s=wall,
            solution_size=solution.size, instance=describe(instance),
            counters=counters, executor="process", workers=workers,
            max_shards=MAX_SHARDS, split="halo", parity="verified",
            size_delta=solution.size - serial.size,
            speedup_vs_serial=round(speedup, 3),
            cold_wall_time_s=cold_wall,
            pool_overhead_ms=round((cold_wall - wall) * 1e3, 2),
        )
        rows.append({
            "solver": "parallel_greedy_sc", "executor": "process",
            "workers": workers, "wall_ms": round(wall * 1e3, 1),
            "size": solution.size, "speedup": round(speedup, 2),
        })
        efficiency_rows.append({
            "workers": workers,
            "wall_ms": round(wall * 1e3, 1),
            "cold_ms": round(cold_wall * 1e3, 1),
            "speedup": round(speedup, 3),
            "efficiency": round(speedup / max(workers, 1), 3),
        })
        # halo seams may add picks but must never explode the cover
        assert solution.size <= serial.size * 1.25 + MAX_SHARDS

    if not SMOKE:
        # the before/after overhead measurement: the same 4-worker solve
        # with the OLD lifecycle (string spec = fresh pool per call,
        # also min-of-2)
        _f1, fresh_a, _c1 = timed(
            parallel_greedy_sc, instance, split="halo",
            executor="process", workers=max(WORKERS),
            max_shards=MAX_SHARDS,
        )
        _f2, fresh_b, _c2 = timed(
            parallel_greedy_sc, instance, split="halo",
            executor="process", workers=max(WORKERS),
            max_shards=MAX_SHARDS,
        )
        fresh_wall = min(fresh_a, fresh_b)
        efficiency_rows.append({
            "workers": max(WORKERS),
            "wall_ms": round(fresh_wall * 1e3, 1),
            "cold_ms": round(fresh_wall * 1e3, 1),
            "speedup": round(serial_wall / fresh_wall, 3),
            "efficiency": "fresh-pool-per-call reference",
        })

    report(rows, "Parallel GreedySC vs serial (fig13 day workload)")
    parallel_figure("parallel_greedy_sc_speedup", rows)
    report(
        efficiency_rows,
        "GreedySC scaling efficiency (warm pools, fig13 day workload)",
    )
    parallel_figure("scaling_efficiency", efficiency_rows)

    if not SMOKE:
        # acceptance gates: >= 2x at 4 warm workers, and warm walls may
        # not regress from 2 to 4 workers (the old flat-from-2 plateau).
        # The warm-beats-fresh comparison is gated in
        # test_process_executor_reuse_beats_fresh, whose interleaved
        # multi-call totals are robust to machine drift; the fresh
        # reference row recorded above is informational.
        assert speedups[4] >= 2.0, (
            f"sharded GreedySC speedup {speedups[4]:.2f}x < 2x "
            f"(serial {serial_wall * 1e3:.0f} ms)"
        )
        assert warm_walls[4] <= warm_walls[2] * 1.25, (
            f"scaling regressed 2 -> 4 workers: "
            f"{warm_walls[2] * 1e3:.0f} ms -> {warm_walls[4] * 1e3:.0f} ms"
        )


def test_process_executor_reuse_beats_fresh(
    parallel_record, parallel_figure
):
    """Warm persistent pool vs fresh-pool-per-call, plus the payload
    bytes each task ships (the two overheads behind the old plateau).

    The timed calls are interleaved (warm, fresh, warm, fresh, ...) so
    that machine drift on a shared runner lands on both sides equally —
    back-to-back pairs are what makes this gate stable where a
    single-solve comparison is not.  Runs at smoke scale too — this is
    the regression gate CI's bench-smoke job enforces.
    """
    instance = day_instance()
    calls = 3
    workers = min(2, max(WORKERS))

    warm_total = fresh_total = 0.0
    with ProcessExecutor(workers) as executor:
        parallel_greedy_sc(  # warm the pool (and the shm snapshot)
            instance, split="halo", executor=executor,
            max_shards=MAX_SHARDS,
        )
        for _ in range(calls):
            start = time.perf_counter()
            parallel_greedy_sc(
                instance, split="halo", executor=executor,
                max_shards=MAX_SHARDS,
            )
            warm_total += time.perf_counter() - start
            start = time.perf_counter()
            # the string spec makes the engine build AND close a pool
            # per call — exactly the old per-solve lifecycle
            parallel_greedy_sc(
                instance, split="halo", executor="process",
                workers=workers, max_shards=MAX_SHARDS,
            )
            fresh_total += time.perf_counter() - start

    # per-task bytes: a pickled ShardPayload vs a shared-memory tuple
    snap = snapshot(instance)
    plan = plan_halo_shards(snap, MAX_SHARDS)
    payload_bytes = sum(
        len(pickle.dumps(snap.payload(s.halo_start, s.halo_end)))
        for s in plan.shards
    )
    shared = shared_snapshot(instance)
    shm_bytes = (
        None if shared is None else sum(
            len(pickle.dumps(
                (shared.name, s.halo_start, s.halo_end, "rescan", "auto")
            ))
            for s in plan.shards
        )
    )

    rows = [
        {
            "pool": "fresh per call", "calls": calls,
            "total_ms": round(fresh_total * 1e3, 1),
            "per_call_ms": round(fresh_total / calls * 1e3, 1),
        },
        {
            "pool": "warm (reused)", "calls": calls,
            "total_ms": round(warm_total * 1e3, 1),
            "per_call_ms": round(warm_total / calls * 1e3, 1),
        },
        {
            "pool": "task bytes: pickled payloads", "calls": len(plan),
            "total_ms": payload_bytes, "per_call_ms": round(
                payload_bytes / len(plan)
            ),
        },
        {
            "pool": "task bytes: shm tuples", "calls": len(plan),
            "total_ms": shm_bytes,
            "per_call_ms": None if shm_bytes is None else round(
                shm_bytes / len(plan)
            ),
        },
    ]
    report(rows, "Warm pool vs fresh pool per call (GreedySC, halo)")
    parallel_figure("parallel_overhead", rows)
    parallel_record(
        "parallel_greedy_sc", wall_time_s=warm_total / calls,
        solution_size=0, instance=describe(instance),
        executor="process", workers=workers, split="halo",
        parity="overhead-probe", mode="warm-pool",
        fresh_wall_time_s=fresh_total / calls,
        payload_bytes_per_solve=payload_bytes,
        shm_bytes_per_solve=shm_bytes,
    )

    # the gate: reuse must beat rebuilding the pool every call
    assert warm_total < fresh_total, (
        f"warm pool {warm_total * 1e3:.0f} ms not faster than "
        f"fresh-per-call {fresh_total * 1e3:.0f} ms over {calls} calls"
    )
    if shm_bytes is not None:
        # shm tasks must be orders of magnitude lighter than payloads
        assert shm_bytes * 10 < payload_bytes


def test_parallel_scan_parity_and_time(parallel_record, parallel_figure):
    """Sharded vectorised Scan: exact parity, timings recorded."""
    instance = day_instance()
    serial, serial_wall, serial_counters = timed(scan, instance)
    parallel_record(
        "scan", wall_time_s=serial_wall, solution_size=serial.size,
        instance=describe(instance), counters=serial_counters,
        executor="none", workers=0, split="serial",
        parity="baseline", speedup_vs_serial=1.0,
    )
    rows = [{
        "solver": "scan", "executor": "none", "workers": 0,
        "wall_ms": round(serial_wall * 1e3, 2), "size": serial.size,
    }]
    configs = [("serial", 1)] + [
        ("process", w) for w in WORKERS if w > 1
    ]
    for executor, workers in configs:
        solution, wall, counters = timed(
            parallel_scan, instance, executor=executor,
            workers=workers, max_shards=MAX_SHARDS,
        )
        assert solution.uids == serial.uids  # pick-for-pick
        parallel_record(
            "parallel_scan", wall_time_s=wall,
            solution_size=solution.size, instance=describe(instance),
            counters=counters, executor=executor, workers=workers,
            max_shards=MAX_SHARDS, split="auto", parity="exact",
            speedup_vs_serial=round(serial_wall / wall, 3),
        )
        rows.append({
            "solver": "parallel_scan", "executor": executor,
            "workers": workers, "wall_ms": round(wall * 1e3, 2),
            "size": solution.size,
        })
    report(rows, "Parallel Scan vs serial (fig13 day workload)")
    parallel_figure("parallel_scan_parity", rows)


def test_parallel_scan_plus_parity_and_time(
    parallel_record, parallel_figure
):
    """Sharded Scan+: exact parity under auto split, halo verified."""
    instance = day_instance()
    serial, serial_wall, serial_counters = timed(scan_plus, instance)
    parallel_record(
        "scan_plus", wall_time_s=serial_wall,
        solution_size=serial.size, instance=describe(instance),
        counters=serial_counters, executor="none", workers=0,
        split="serial", parity="baseline", speedup_vs_serial=1.0,
    )
    rows = [{
        "solver": "scan_plus", "executor": "none", "workers": 0,
        "wall_ms": round(serial_wall * 1e3, 2), "size": serial.size,
    }]

    solution, wall, counters = timed(
        parallel_scan_plus, instance, max_shards=MAX_SHARDS,
    )
    assert solution.uids == serial.uids  # auto split: exact parity
    parallel_record(
        "parallel_scan_plus", wall_time_s=wall,
        solution_size=solution.size, instance=describe(instance),
        counters=counters, executor="serial", workers=1,
        max_shards=MAX_SHARDS, split="auto", parity="exact",
        speedup_vs_serial=round(serial_wall / wall, 3),
    )
    rows.append({
        "solver": "parallel_scan_plus", "executor": "serial",
        "workers": 1, "wall_ms": round(wall * 1e3, 2),
        "size": solution.size,
    })

    halo_workers = max(WORKERS)
    solution, wall, counters = timed(
        parallel_scan_plus, instance, split="halo",
        executor="process", workers=halo_workers,
        max_shards=MAX_SHARDS,
    )
    assert is_cover(instance, solution.posts)
    parallel_record(
        "parallel_scan_plus", wall_time_s=wall,
        solution_size=solution.size, instance=describe(instance),
        counters=counters, executor="process", workers=halo_workers,
        max_shards=MAX_SHARDS, split="halo", parity="verified",
        size_delta=solution.size - serial.size,
        speedup_vs_serial=round(serial_wall / wall, 3),
    )
    rows.append({
        "solver": "parallel_scan_plus (halo)", "executor": "process",
        "workers": halo_workers, "wall_ms": round(wall * 1e3, 2),
        "size": solution.size,
    })
    report(rows, "Parallel Scan+ vs serial (fig13 day workload)")
    parallel_figure("parallel_scan_plus_parity", rows)
