"""Figure 8 — absolute solution sizes on a (scaled) day of posts vs |L|.

Paper shapes: Scan's output grows linearly in |L| (it pays per label);
GreedySC is the smallest everywhere and its advantage widens with |L|.
The run is scaled per EXPERIMENTS.md (rate x0.005, 6-hour window).
"""

from repro.experiments import fig8_daylong

from .conftest import report


def test_fig8_daylong(benchmark):
    rows = benchmark.pedantic(
        lambda: fig8_daylong.run(
            seed=0,
            sizes=(2, 5, 10),
            lam_minutes=(10.0, 30.0),
            scale=0.005,
            duration=21_600.0,
        ),
        rounds=1, iterations=1,
    )
    report(rows, fig8_daylong.DESCRIPTION)

    for lam_min in (10.0, 30.0):
        series = [r for r in rows if r["lam_min"] == lam_min]
        # GreedySC smallest (up to one pick of noise at these scaled
        # sizes), Scan largest, Scan+ in between
        for row in series:
            assert row["greedy_sc_size"] <= row["scan+_size"] + 1
            assert row["greedy_sc_size"] <= row["scan_size"]
            assert row["scan+_size"] <= row["scan_size"]
        # Scan ~linear in |L|: 5x labels -> between 3x and 7x output
        ratio = series[-1]["scan_size"] / series[0]["scan_size"]
        assert 3.0 <= ratio <= 7.0
        # GreedySC's advantage widens with |L| in absolute terms (its
        # ratio over Scan is roughly constant at this scaled density)
        gap_small = series[0]["scan_size"] - series[0]["greedy_sc_size"]
        gap_large = series[-1]["scan_size"] - series[-1]["greedy_sc_size"]
        assert gap_large > gap_small
    # larger lambda -> smaller outputs across the board
    small_lam = [r for r in rows if r["lam_min"] == 10.0]
    large_lam = [r for r in rows if r["lam_min"] == 30.0]
    for narrow, wide in zip(small_lam, large_lam):
        assert wide["scan_size"] < narrow["scan_size"]
