"""Figure 14 — streaming execution time per post versus lambda (fixed tau).

Paper shapes: StreamScan/StreamScan+ timing is stable across lambda; the
windowed greedy algorithms generally get cheaper per post as lambda grows
(fewer set-cover invocations, smaller outputs).
"""

from repro.evaluation.metrics import mean
from repro.experiments import fig14_time_stream_lambda

from .conftest import report


def test_fig14_time_stream_lambda(benchmark):
    rows = benchmark.pedantic(
        lambda: fig14_time_stream_lambda.run(
            seed=0,
            sizes=(2, 5),
            lam_minutes=(5.0, 10.0, 20.0, 30.0),
            tau=300.0,
            scale=0.005,
            duration=21_600.0,
        ),
        rounds=1, iterations=1,
    )
    report(rows, fig14_time_stream_lambda.DESCRIPTION)

    for size in (2, 5):
        series = [r for r in rows if r["num_labels"] == size]
        # StreamScan flat in lambda (within 5x across the sweep)
        times = [r["stream_scan_us_per_post"] for r in series]
        assert max(times) <= 5 * max(min(times), 0.5)
        # greedy not more expensive at the largest lambda than the smallest
        assert (
            series[-1]["stream_greedy_sc_us_per_post"]
            <= series[0]["stream_greedy_sc_us_per_post"] * 1.5
        )
        # scan-based cheaper than greedy-based on average
        assert mean(
            r["stream_scan_us_per_post"] for r in series
        ) <= mean(
            r["stream_greedy_sc_us_per_post"] for r in series
        )
