"""Durable ingest benchmark: what exactly-once delivery costs.

Three questions, one ``BENCH_ingest.json`` artifact:

* **durable vs in-memory** — the same document stream fed straight into
  a supervised pipeline versus appended to the WAL and drained through
  the full durable path (idempotent receiver, resequencer, offset
  commits).  The corpus digests must be identical — durability buys
  crash safety, never a different corpus.
* **recovery time vs log size** — ``kill -9`` after N uncommitted
  appends, then measure resurrect + full replay.  Replay is linear in
  the log, which is the argument for commit intervals.
* **fsync-interval tradeoff** — append throughput at fsync-every-record,
  batched fsync, and OS-page-cache-only, quantifying the classic
  durability/throughput dial.

The CI ``ingest-smoke`` job runs this file under ``BENCH_SMOKE=1`` and
validates the artifact with ``python -m repro.observability.bench
--validate``.
"""

from __future__ import annotations

import time

from repro.index.inverted_index import Document
from repro.index.query import TopicQuery
from repro.ingest import IngestConfig, IngestPipeline, IngestTarget, \
    corpus_digest
from repro.pipeline import DiversificationPipeline
from repro.resilience.policies import SanitizationPolicy
from repro.resilience.supervisor import ResilienceConfig

from .conftest import SMOKE, report

SEED = 20140328  # EDBT 2014 (the paper's venue) — fixed for replay

if SMOKE:
    N_DOCS = 150
    LOG_SIZES = (50, 150)
    FSYNC_INTERVALS = (1, 16, None)
else:
    N_DOCS = 1500
    LOG_SIZES = (250, 750, 1500)
    FSYNC_INTERVALS = (1, 8, 64, None)

TOPICS = [
    TopicQuery("golf", ["golf", "putt"]),
    TopicQuery("nba", ["nba", "dunk"]),
    TopicQuery("tech", ["cpu", "kernel"]),
]
TEXTS = ("golf putt", "nba dunk", "cpu kernel")


def make_docs(n):
    return [
        Document(
            i, float(i),
            f"{TEXTS[i % 3]} doc{i} word{i * 7} tail{i * 13}",
        )
        for i in range(n)
    ]


def make_pipeline() -> DiversificationPipeline:
    return DiversificationPipeline(
        TOPICS,
        lam=60.0,
        stream_algorithm="stream_scan+",
        dedup_distance=None,
        resilience=ResilienceConfig(policy=SanitizationPolicy()),
    )


def make_ingest(directory, **config) -> IngestPipeline:
    return IngestPipeline(
        IngestTarget.for_pipeline(make_pipeline()),
        directory,
        IngestConfig(**config),
    )


def test_durable_vs_inmemory_throughput(tmp_path, ingest_record):
    docs = make_docs(N_DOCS)

    # in-memory baseline: straight through the supervised feed
    plain = make_pipeline()
    started = time.perf_counter()
    for doc in docs:
        plain.feed(doc)
    plain.supervisor.flush()
    memory_s = time.perf_counter() - started
    memory_digest = corpus_digest(plain.supervisor.journal)

    # the durable path: WAL append + drain + commit
    ingest = make_ingest(tmp_path, fsync_interval=1)
    started = time.perf_counter()
    for doc in docs:
        ingest.append(doc)
    ingest.drain()
    ingest.flush()
    durable_s = time.perf_counter() - started

    # durability must not change the corpus
    assert ingest.corpus_digest() == memory_digest
    assert ingest.duplicate_applies() == 0

    rows = [
        {
            "mode": "in-memory",
            "wall_s": round(memory_s, 4),
            "docs_per_s": round(N_DOCS / memory_s, 1),
        },
        {
            "mode": "durable (fsync=1)",
            "wall_s": round(durable_s, 4),
            "docs_per_s": round(N_DOCS / durable_s, 1),
        },
    ]
    report(rows, "Ingest: durable vs in-memory throughput")
    for row in rows:
        ingest_record(
            f"ingest-{row['mode'].split()[0]}",
            wall_time_s=row["wall_s"],
            solution_size=N_DOCS,
            instance={"n_docs": N_DOCS, "mode": row["mode"]},
            counters={"applied": N_DOCS},
            docs_per_s=row["docs_per_s"],
        )


def test_recovery_time_vs_log_size(tmp_path, ingest_record,
                                   ingest_figure):
    rows = []
    for size in LOG_SIZES:
        docs = make_docs(size)
        workdir = tmp_path / f"log{size}"

        # the victim appends everything but never commits an offset —
        # the worst-case replay
        victim = make_ingest(workdir)
        for doc in docs:
            victim.append(doc)
        victim.close()
        log_bytes = victim.wal.size_bytes()

        # baseline digest for the same stream
        reference = make_ingest(tmp_path / f"ref{size}")
        for doc in docs:
            reference.append(doc)
        reference.drain()
        reference.flush()

        started = time.perf_counter()
        revived = make_ingest(workdir)
        revived.recover()
        revived.drain()
        revived.flush()
        recovery_s = time.perf_counter() - started

        assert revived.corpus_digest() == reference.corpus_digest()
        assert revived.duplicate_applies() == 0
        assert revived.applied == size

        rows.append({
            "log_records": size,
            "log_bytes": log_bytes,
            "recovery_s": round(recovery_s, 4),
            "records_per_s": round(size / recovery_s, 1),
        })
        ingest_record(
            f"recovery-{size}",
            wall_time_s=recovery_s,
            solution_size=size,
            instance={"n_docs": size, "log_bytes": log_bytes},
            counters={"applied": size},
            records_per_s=rows[-1]["records_per_s"],
        )
    report(rows, "Ingest: recovery time vs log size")
    ingest_figure("recovery_vs_log_size", rows)
    # replay is linear-ish: more log never recovers *faster* by 2x
    assert rows[-1]["recovery_s"] >= rows[0]["recovery_s"] * 0.5


def test_fsync_interval_tradeoff(tmp_path, ingest_record,
                                 ingest_figure):
    docs = make_docs(N_DOCS)
    rows = []
    throughput = {}
    digests = set()
    for interval in FSYNC_INTERVALS:
        label = "none" if interval is None else str(interval)
        ingest = make_ingest(
            tmp_path / f"fsync-{label}", fsync_interval=interval
        )
        started = time.perf_counter()
        for doc in docs:
            ingest.append(doc)
        ingest.sync()  # harden the batched tail before the clock stops
        append_s = time.perf_counter() - started
        ingest.drain()
        ingest.flush()
        digests.add(ingest.corpus_digest())
        throughput[interval] = N_DOCS / append_s
        rows.append({
            "fsync_interval": label,
            "append_s": round(append_s, 4),
            "appends_per_s": round(throughput[interval], 1),
        })
        ingest_record(
            f"fsync-{label}",
            wall_time_s=append_s,
            solution_size=N_DOCS,
            instance={"n_docs": N_DOCS, "fsync_interval": label},
            counters={"appended": N_DOCS},
            appends_per_s=rows[-1]["appends_per_s"],
        )
    report(rows, "Ingest: fsync interval tradeoff")
    ingest_figure("fsync_tradeoff", rows)
    # the digest is identical under every durability setting
    assert len(digests) == 1
    # batching can only shed fsync work; it must not cost throughput
    assert throughput[FSYNC_INTERVALS[-1]] >= throughput[1] * 0.5
